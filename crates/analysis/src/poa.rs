//! Price-of-Anarchy bracketing.
//!
//! `PoA = C(worst NE) / C(OPT)` is not directly computable (OPT is
//! NP-hard, and the *worst* equilibrium is elusive), so experiments report
//! a bracket:
//!
//! * `poa_lower = C(NE) / C(best baseline)` — a certified lower bound on
//!   the instance's PoA contribution, because the baseline's cost
//!   upper-bounds OPT;
//! * `poa_upper = C(NE) / LB(OPT)` — an upper estimate from the universal
//!   lower bound `αn + n(n−1)`.
//!
//! The true ratio for the tested equilibrium lies in between.

use sp_constructions::baselines;
use sp_core::poa::opt_lower_bound;
use sp_core::{CoreError, Game, GameSession, StrategyProfile};

/// The bracketed Price-of-Anarchy estimate for one equilibrium profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PoaBracket {
    /// Social cost of the (equilibrium) profile.
    pub ne_cost: f64,
    /// Cheapest baseline cost (OPT upper bound) and its name.
    pub opt_upper: f64,
    /// Name of the baseline achieving `opt_upper`.
    pub opt_upper_name: String,
    /// Universal OPT lower bound `αn + n(n−1)`.
    pub opt_lower: f64,
}

impl PoaBracket {
    /// Certified lower bound on the PoA contribution: `C(NE)/C(baseline)`.
    #[must_use]
    pub fn poa_lower(&self) -> f64 {
        self.ne_cost / self.opt_upper
    }

    /// Upper estimate `C(NE)/LB(OPT)`.
    #[must_use]
    pub fn poa_upper(&self) -> f64 {
        if self.opt_lower == 0.0 {
            1.0
        } else {
            self.ne_cost / self.opt_lower
        }
    }
}

/// Computes Price-of-Anarchy brackets for equilibrium profiles of a game.
///
/// # Example
///
/// ```
/// use sp_analysis::poa::PoaEstimator;
/// use sp_core::{Game, StrategyProfile};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0]).unwrap(), 1.0).unwrap();
/// let est = PoaEstimator::new(&game);
/// let chain = StrategyProfile::from_links(3, &[(0,1),(1,0),(1,2),(2,1)]).unwrap();
/// let bracket = est.bracket(&chain).unwrap();
/// assert!(bracket.poa_lower() <= bracket.poa_upper() + 1e-12);
/// ```
#[derive(Debug)]
pub struct PoaEstimator<'g> {
    game: &'g Game,
    opt_upper: f64,
    opt_upper_name: String,
    opt_lower: f64,
}

impl<'g> PoaEstimator<'g> {
    /// Prepares the baselines for `game`.
    ///
    /// # Panics
    ///
    /// Panics if the game has no peers.
    #[must_use]
    pub fn new(game: &'g Game) -> Self {
        let best = baselines::best_baseline(game);
        PoaEstimator {
            game,
            opt_upper: best.cost.total(),
            opt_upper_name: best.name,
            opt_lower: opt_lower_bound(game),
        }
    }

    /// The cheapest baseline name and cost used as the OPT upper bound.
    #[must_use]
    pub fn opt_upper(&self) -> (&str, f64) {
        (&self.opt_upper_name, self.opt_upper)
    }

    /// Brackets the PoA contribution of `profile`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProfileSizeMismatch`] on size disagreement.
    pub fn bracket(&self, profile: &StrategyProfile) -> Result<PoaBracket, CoreError> {
        let mut session = GameSession::from_refs(self.game, profile)?;
        Ok(self.bracket_session(&mut session))
    }

    /// Brackets the PoA contribution of a live session's current profile,
    /// reusing whatever overlay distances the session already cached
    /// (e.g. from the dynamics run that produced the equilibrium).
    #[must_use]
    pub fn bracket_session(&self, session: &mut GameSession) -> PoaBracket {
        PoaBracket {
            ne_cost: session.social_cost().total(),
            opt_upper: self.opt_upper,
            opt_upper_name: self.opt_upper_name.clone(),
            opt_lower: self.opt_lower,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    fn game() -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap(), 2.0).unwrap()
    }

    #[test]
    fn bracket_orders_correctly() {
        let g = game();
        let est = PoaEstimator::new(&g);
        let chain =
            StrategyProfile::from_links(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
                .unwrap();
        let b = est.bracket(&chain).unwrap();
        assert!(b.poa_lower() <= b.poa_upper());
        // The chain *is* the best baseline on a line, so lower bound is 1.
        assert!((b.poa_lower() - 1.0).abs() < 1e-9);
        assert!(b.poa_upper() >= 1.0);
    }

    #[test]
    fn estimator_reports_baseline() {
        let g = game();
        let est = PoaEstimator::new(&g);
        let (name, cost) = est.opt_upper();
        assert!(!name.is_empty());
        assert!(cost.is_finite());
        assert!(cost >= sp_core::poa::opt_lower_bound(&g) - 1e-9);
    }

    #[test]
    fn degenerate_lower_bound_handled() {
        let single = Game::from_space(&LineSpace::new(vec![0.0]).unwrap(), 1.0).unwrap();
        let est = PoaEstimator::new(&single);
        let b = est.bracket(&StrategyProfile::empty(1)).unwrap();
        assert_eq!(b.poa_upper(), 1.0);
    }
}
