//! Column-aligned table rendering (text / Markdown / CSV).

use std::fmt;

/// A simple column-aligned table used for experiment output.
///
/// Renders as fixed-width text ([`fmt::Display`]), GitHub Markdown
/// ([`Table::to_markdown`]), or CSV ([`Table::to_csv`]).
///
/// # Example
///
/// ```
/// use sp_analysis::Table;
///
/// let mut t = Table::new(vec!["n", "PoA"]);
/// t.push_row(vec!["8".into(), "1.31".into()]);
/// let text = t.to_string();
/// assert!(text.contains("PoA"));
/// assert!(t.to_csv().starts_with("n,PoA"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when there are no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// GitHub-flavoured Markdown rendering.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push_str("\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering (naive quoting: commas in cells are replaced by
    /// semicolons — experiment output never needs more).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let clean = |s: &String| s.replace(',', ";");
        let mut out = self.headers.iter().map(clean).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(clean).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{h:>width$}", width = w[i])?;
        }
        writeln!(f)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = w[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a float compactly for tables (3 significant decimals, `inf`
/// for infinities).
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "inf".to_owned()
        } else {
            "-inf".to_owned()
        }
    } else if v == 0.0 || (v.abs() >= 0.01 && v.abs() < 100_000.0) {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_alignment() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.push_row(vec!["123456".into(), "x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("123456"));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(vec!["1".into()]);
        let md = t.to_markdown();
        assert_eq!(md, "| x |\n|---|\n| 1 |\n");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(vec!["a,b".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\na;b,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(0.0), "0.000");
        assert!(fmt_f64(1.0e9).contains('e'));
        assert!(fmt_f64(0.0001).contains('e'));
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.headers(), &["x".to_owned()]);
    }
}
