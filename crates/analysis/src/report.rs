//! Serialisable experiment reports.

use std::fmt;

use sp_json::{json, JsonError, Value};

use crate::Table;

/// A titled table inside a [`Report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedTable {
    /// Section name (e.g. `"PoA sweep"`).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl NamedTable {
    /// Wraps a [`Table`] with a name.
    #[must_use]
    pub fn from_table(name: &str, table: &Table) -> Self {
        NamedTable {
            name: name.to_owned(),
            headers: table.headers().to_vec(),
            rows: table.rows().to_vec(),
        }
    }

    /// Rebuilds the displayable [`Table`].
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(self.headers.clone());
        for row in &self.rows {
            t.push_row(row.clone());
        }
        t
    }
}

/// A machine- and human-readable experiment report.
///
/// # Example
///
/// ```
/// use sp_analysis::{Report, Table};
///
/// let mut t = Table::new(vec!["n", "cost"]);
/// t.push_row(vec!["4".into(), "10".into()]);
/// let mut r = Report::new("E2", "Lemma 4.3 cost scaling");
/// r.push_note("alpha = 3.4");
/// r.push_table("costs", &t);
/// assert!(r.to_json().contains("\"E2\""));
/// assert!(r.to_string().contains("Lemma 4.3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Experiment identifier (`"E1"` … `"E9"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Free-form notes (parameters, verdicts).
    pub notes: Vec<String>,
    /// Result tables.
    pub tables: Vec<NamedTable>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            notes: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Appends a note line.
    pub fn push_note<S: Into<String>>(&mut self, note: S) {
        self.notes.push(note.into());
    }

    /// Appends a named table.
    pub fn push_table(&mut self, name: &str, table: &Table) {
        self.tables.push(NamedTable::from_table(name, table));
    }

    /// Serialises to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let tables: Vec<Value> = self
            .tables
            .iter()
            .map(|t| {
                json!({
                    "name": t.name.as_str(),
                    "headers": t.headers.clone(),
                    "rows": Value::Array(
                        t.rows.iter().map(|r| Value::from(r.clone())).collect(),
                    ),
                })
            })
            .collect();
        json!({
            "id": self.id.as_str(),
            "title": self.title.as_str(),
            "notes": self.notes.clone(),
            "tables": Value::Array(tables),
        })
        .to_string_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`JsonError`] for malformed input, or a
    /// synthetic one when a required field is missing or mistyped.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let v: Value = s.parse()?;
        let field_err = |what: &str| JsonError {
            message: format!("report: {what}"),
            offset: 0,
        };
        let str_field = |v: &Value, key: &str| -> Result<String, JsonError> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| field_err(&format!("missing string field '{key}'")))
        };
        let str_array = |v: &Value, key: &str| -> Result<Vec<String>, JsonError> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| field_err(&format!("missing array field '{key}'")))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| field_err(&format!("non-string entry in '{key}'")))
                })
                .collect()
        };
        let mut tables = Vec::new();
        for t in v
            .get("tables")
            .and_then(Value::as_array)
            .ok_or_else(|| field_err("missing array field 'tables'"))?
        {
            let rows = t
                .get("rows")
                .and_then(Value::as_array)
                .ok_or_else(|| field_err("missing array field 'rows'"))?
                .iter()
                .map(|row| {
                    row.as_array()
                        .ok_or_else(|| field_err("non-array row"))?
                        .iter()
                        .map(|cell| {
                            cell.as_str()
                                .map(str::to_owned)
                                .ok_or_else(|| field_err("non-string cell"))
                        })
                        .collect::<Result<Vec<String>, JsonError>>()
                })
                .collect::<Result<Vec<Vec<String>>, JsonError>>()?;
            tables.push(NamedTable {
                name: str_field(t, "name")?,
                headers: str_array(t, "headers")?,
                rows,
            });
        }
        Ok(Report {
            id: str_field(&v, "id")?,
            title: str_field(&v, "title")?,
            notes: str_array(&v, "notes")?,
            tables,
        })
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        for note in &self.notes {
            writeln!(f, "  {note}")?;
        }
        for t in &self.tables {
            writeln!(f, "\n[{}]", t.name)?;
            write!(f, "{}", t.to_table())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut t = Table::new(vec!["k", "v"]);
        t.push_row(vec!["a".into(), "1".into()]);
        let mut r = Report::new("EX", "example");
        r.push_note("note-1");
        r.push_table("tbl", &t);
        r
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn display_contains_everything() {
        let s = sample().to_string();
        assert!(s.contains("EX"));
        assert!(s.contains("note-1"));
        assert!(s.contains("[tbl]"));
        assert!(s.contains('v'));
    }

    #[test]
    fn named_table_roundtrip() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(vec!["9".into()]);
        let nt = NamedTable::from_table("n", &t);
        assert_eq!(nt.to_table(), t);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Report::from_json("{nope").is_err());
    }
}
