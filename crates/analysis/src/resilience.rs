//! Failure injection: how robust is a topology to a peer crashing?
//!
//! The paper's cost model charges maintenance because links must survive
//! churn (footnote 1: "the maintenance of a link may involve periodic
//! pings"). This module quantifies the flip side: when a peer abruptly
//! disappears, how much lookup performance do the survivors lose before
//! anyone rewires? Selfish equilibria, optimized for individual cost,
//! can concentrate transit on few peers and fail much harder than
//! collaborative designs with the same link budget.

use sp_core::{CoreError, Game, StrategyProfile};
use sp_dynamics::churn::{project_profile, subgame};
use sp_graph::apsp;

/// The immediate impact of one peer's failure (before any rewiring).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureImpact {
    /// The failed peer.
    pub removed: usize,
    /// Ordered survivor pairs that lost connectivity entirely.
    pub disconnected_pairs: usize,
    /// Mean stretch among still-connected survivor pairs
    /// (`1.0` when no pairs remain).
    pub mean_stretch: f64,
    /// Max stretch among still-connected survivor pairs.
    pub max_stretch: f64,
}

/// Computes the impact of removing `removed` from a topology: survivors
/// keep exactly their remaining links (no rewiring), and stretches are
/// re-measured in the surviving sub-metric.
///
/// # Errors
///
/// Returns [`CoreError::PeerOutOfBounds`] /
/// [`CoreError::ProfileSizeMismatch`] for malformed inputs.
pub fn single_failure_impact(
    game: &Game,
    profile: &StrategyProfile,
    removed: usize,
) -> Result<FailureImpact, CoreError> {
    let n = game.n();
    if removed >= n {
        return Err(CoreError::PeerOutOfBounds { peer: removed, n });
    }
    if profile.n() != n {
        return Err(CoreError::ProfileSizeMismatch {
            expected: n,
            actual: profile.n(),
        });
    }
    let alive: Vec<usize> = (0..n).filter(|&i| i != removed).collect();
    let sub = subgame(game, &alive);
    let sub_profile = project_profile(profile, &alive);
    let overlay = sp_core::topology(&sub, &sub_profile)?;
    let dist = apsp(&overlay);
    let m = alive.len();
    let mut disconnected = 0usize;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    let mut max = 1.0f64;
    for i in 0..m {
        for j in 0..m {
            if i == j {
                continue;
            }
            if dist[(i, j)].is_finite() {
                let stretch = dist[(i, j)] / sub.distance(i, j);
                sum += stretch;
                max = max.max(stretch);
                count += 1;
            } else {
                disconnected += 1;
            }
        }
    }
    Ok(FailureImpact {
        removed,
        disconnected_pairs: disconnected,
        mean_stretch: if count == 0 { 1.0 } else { sum / count as f64 },
        max_stretch: if count == 0 { 1.0 } else { max },
    })
}

/// Aggregated single-failure behaviour of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceSummary {
    /// Impacts, one per removed peer.
    pub impacts: Vec<FailureImpact>,
}

impl ResilienceSummary {
    /// Fraction of failures that disconnect no survivor pair.
    #[must_use]
    pub fn robust_fraction(&self) -> f64 {
        if self.impacts.is_empty() {
            return 1.0;
        }
        self.impacts
            .iter()
            .filter(|f| f.disconnected_pairs == 0)
            .count() as f64
            / self.impacts.len() as f64
    }

    /// Worst number of disconnected pairs over all failures.
    #[must_use]
    pub fn worst_disconnections(&self) -> usize {
        self.impacts
            .iter()
            .map(|f| f.disconnected_pairs)
            .max()
            .unwrap_or(0)
    }

    /// Mean over failures of the survivors' mean stretch.
    #[must_use]
    pub fn mean_mean_stretch(&self) -> f64 {
        if self.impacts.is_empty() {
            return 1.0;
        }
        self.impacts.iter().map(|f| f.mean_stretch).sum::<f64>() / self.impacts.len() as f64
    }
}

/// Computes the impact of every single-peer failure.
///
/// # Errors
///
/// Propagates errors from [`single_failure_impact`].
pub fn failure_sweep(
    game: &Game,
    profile: &StrategyProfile,
) -> Result<ResilienceSummary, CoreError> {
    let impacts = (0..game.n())
        .map(|r| single_failure_impact(game, profile, r))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ResilienceSummary { impacts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    fn game() -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap(), 1.0).unwrap()
    }

    #[test]
    fn star_center_failure_disconnects_everything() {
        let g = game();
        let star =
            StrategyProfile::from_links(4, &[(0, 1), (1, 0), (0, 2), (2, 0), (0, 3), (3, 0)])
                .unwrap();
        let center = single_failure_impact(&g, &star, 0).unwrap();
        assert_eq!(center.disconnected_pairs, 6); // all survivor pairs
        let leaf = single_failure_impact(&g, &star, 3).unwrap();
        assert_eq!(leaf.disconnected_pairs, 0);
        // Survivors 1, 2 still route through centre 0 at the line's end:
        // 1 -> 0 -> 2 has length 3 against direct distance 1.
        assert_eq!(leaf.max_stretch, 3.0);
        let summary = failure_sweep(&g, &star).unwrap();
        assert_eq!(summary.worst_disconnections(), 6);
        assert!((summary.robust_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_tolerates_any_single_failure() {
        let g = game();
        let summary = failure_sweep(&g, &StrategyProfile::complete(4)).unwrap();
        assert_eq!(summary.worst_disconnections(), 0);
        assert_eq!(summary.robust_fraction(), 1.0);
        assert_eq!(summary.mean_mean_stretch(), 1.0);
    }

    #[test]
    fn chain_interior_failure_splits_the_line() {
        let g = game();
        let chain =
            StrategyProfile::from_links(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
                .unwrap();
        let mid = single_failure_impact(&g, &chain, 1).unwrap();
        // Survivors 0 | 2, 3: the pairs (0,2), (2,0), (0,3), (3,0) break.
        assert_eq!(mid.disconnected_pairs, 4);
        let end = single_failure_impact(&g, &chain, 0).unwrap();
        assert_eq!(end.disconnected_pairs, 0);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let g = game();
        assert!(single_failure_impact(&g, &StrategyProfile::complete(4), 9).is_err());
        assert!(single_failure_impact(&g, &StrategyProfile::complete(3), 0).is_err());
    }

    #[test]
    fn empty_summary_degenerates_gracefully() {
        let s = ResilienceSummary { impacts: vec![] };
        assert_eq!(s.robust_fraction(), 1.0);
        assert_eq!(s.worst_disconnections(), 0);
        assert_eq!(s.mean_mean_stretch(), 1.0);
    }
}
