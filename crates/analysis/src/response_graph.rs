//! The best-response graph: the full state-space view of the dynamics.
//!
//! Nodes are strategy profiles; for each profile and each peer with a
//! strictly improving exact best response there is an edge to the profile
//! where that peer has switched. Structure of this graph answers the
//! paper's Section 5 questions globally rather than per-trajectory:
//!
//! * **sinks** are exactly the pure Nash equilibria;
//! * the game is **weakly acyclic** iff every profile has a path to a
//!   sink (best-response dynamics *can* always stabilise with the right
//!   activations);
//! * a game with **no sink** (Theorem 5.1's `I_k`) traps the dynamics in
//!   best-response cycles from *every* starting profile, under *every*
//!   activation order.
//!
//! Tractable for `n ≤ 5` (the `I_1` graph has `2^20` nodes).

use sp_core::{CoreError, Game, StrategyProfile};

use crate::fast::FastGame;

/// The compiled best-response graph of a tiny game.
#[derive(Debug, Clone)]
pub struct ResponseGraph {
    fast: FastGame,
    /// CSR adjacency over profile codes.
    offsets: Vec<u32>,
    edges: Vec<u32>,
    sinks: Vec<u32>,
}

impl ResponseGraph {
    /// Builds the graph with exact best responses and relative tolerance
    /// `tolerance` for "strictly improving".
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InstanceTooLarge`] for more than
    /// [`crate::fast::FAST_LIMIT`] peers.
    pub fn build(game: &Game, tolerance: f64) -> Result<Self, CoreError> {
        let fast = FastGame::new(game)?;
        let total = fast.profile_count();
        assert!(
            total <= u64::from(u32::MAX),
            "profile space exceeds u32 codes"
        );
        let cbits = fast.bits_per_peer();
        let n = fast.n();
        let mut offsets = Vec::with_capacity(total as usize + 1);
        let mut edges: Vec<u32> = Vec::new();
        let mut sinks = Vec::new();
        offsets.push(0u32);
        for code in 0..total {
            let masks = fast.unpack(code);
            let mut any = false;
            for peer in 0..n {
                let (best_mask, best, current) = fast.best_response(&masks, peer);
                let improving = if current.is_infinite() {
                    best.is_finite()
                } else {
                    best < current - tolerance * (1.0 + current.abs())
                };
                if improving {
                    any = true;
                    let mut next = masks;
                    next[peer] = best_mask;
                    let next_code = fast.pack(&next);
                    edges.push(next_code as u32);
                } else {
                    let _ = cbits;
                }
            }
            if !any {
                sinks.push(code as u32);
            }
            offsets.push(edges.len() as u32);
        }
        Ok(ResponseGraph {
            fast,
            offsets,
            edges,
            sinks,
        })
    }

    /// Number of profiles (nodes).
    #[must_use]
    pub fn profile_count(&self) -> u64 {
        self.fast.profile_count()
    }

    /// Number of best-response moves (edges).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The pure Nash equilibria, as profile codes.
    #[must_use]
    pub fn sink_codes(&self) -> &[u32] {
        &self.sinks
    }

    /// The pure Nash equilibria, decoded.
    #[must_use]
    pub fn equilibria(&self) -> Vec<StrategyProfile> {
        self.sinks
            .iter()
            .map(|&c| self.fast.decode(u64::from(c)))
            .collect()
    }

    /// Number of pure Nash equilibria.
    #[must_use]
    pub fn equilibrium_count(&self) -> usize {
        self.sinks.len()
    }

    /// Out-neighbours (profiles reachable by one improving best
    /// response) of a profile code.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range.
    #[must_use]
    pub fn successors(&self, code: u32) -> &[u32] {
        let lo = self.offsets[code as usize] as usize;
        let hi = self.offsets[code as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Fraction of profiles from which *some* best-response path reaches
    /// a Nash equilibrium (1.0 = weakly acyclic under best response).
    ///
    /// Computed by backward reachability from the sinks.
    #[must_use]
    pub fn sink_reachable_fraction(&self) -> f64 {
        let total = self.profile_count() as usize;
        if total == 0 {
            return 1.0;
        }
        // Build reverse adjacency counts via bucket sort.
        let mut indegree_offsets = vec![0u32; total + 1];
        for &to in &self.edges {
            indegree_offsets[to as usize + 1] += 1;
        }
        for i in 0..total {
            indegree_offsets[i + 1] += indegree_offsets[i];
        }
        let mut rev = vec![0u32; self.edges.len()];
        let mut cursor = indegree_offsets.clone();
        for from in 0..total {
            for &to in self.successors(from as u32) {
                rev[cursor[to as usize] as usize] = from as u32;
                cursor[to as usize] += 1;
            }
        }
        // BFS backwards from all sinks.
        let mut reach = vec![false; total];
        let mut stack: Vec<u32> = self.sinks.clone();
        for &s in &self.sinks {
            reach[s as usize] = true;
        }
        while let Some(v) = stack.pop() {
            let lo = indegree_offsets[v as usize] as usize;
            let hi = indegree_offsets[v as usize + 1] as usize;
            for &u in &rev[lo..hi] {
                if !reach[u as usize] {
                    reach[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        reach.iter().filter(|&&r| r).count() as f64 / total as f64
    }

    /// Returns `true` if the game is weakly acyclic under best response:
    /// from every profile some best-response path reaches an equilibrium.
    ///
    /// Games without equilibria (Theorem 5.1) are trivially *not* weakly
    /// acyclic.
    #[must_use]
    pub fn is_weakly_acyclic(&self) -> bool {
        (self.sink_reachable_fraction() - 1.0).abs() < f64::EPSILON
    }

    /// Returns `true` if some best-response cycle exists (a profile that
    /// can reach itself again). Detected as a non-trivial SCC via
    /// iterative Tarjan over the CSR adjacency.
    #[must_use]
    pub fn has_best_response_cycle(&self) -> bool {
        // Kosaraju-style check would need the full reverse graph again;
        // instead run an iterative colouring DFS detecting back edges.
        let total = self.profile_count() as usize;
        // 0 = white, 1 = grey (on stack), 2 = black.
        let mut color = vec![0u8; total];
        for start in 0..total {
            if color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(u32, usize)> = vec![(start as u32, 0)];
            color[start] = 1;
            while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
                let succ = self.successors(v);
                if *idx < succ.len() {
                    let w = succ[*idx];
                    *idx += 1;
                    match color[w as usize] {
                        0 => {
                            color[w as usize] = 1;
                            stack.push((w, 0));
                        }
                        1 => return true, // back edge: cycle
                        _ => {}
                    }
                } else {
                    color[v as usize] = 2;
                    stack.pop();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::{is_nash, NashTest};
    use sp_metric::LineSpace;

    fn line_game(n: usize, alpha: f64) -> Game {
        let pos: Vec<f64> = (0..n).map(|i| i as f64).collect();
        Game::from_space(&LineSpace::new(pos).unwrap(), alpha).unwrap()
    }

    #[test]
    fn sinks_are_exactly_the_nash_equilibria() {
        let g = line_game(3, 1.0);
        let rg = ResponseGraph::build(&g, 1e-9).unwrap();
        assert!(rg.equilibrium_count() > 0);
        for profile in rg.equilibria() {
            assert!(is_nash(&g, &profile, &NashTest::exact()).unwrap().is_nash());
        }
        // And non-sinks are not equilibria: spot check a few codes.
        let sinks: std::collections::HashSet<u32> = rg.sink_codes().iter().copied().collect();
        let fast = FastGame::new(&g).unwrap();
        for code in (0..rg.profile_count() as u32).step_by(7) {
            if !sinks.contains(&code) {
                let profile = fast.decode(u64::from(code));
                assert!(!is_nash(&g, &profile, &NashTest::exact()).unwrap().is_nash());
            }
        }
    }

    #[test]
    fn line_games_are_weakly_acyclic() {
        let g = line_game(3, 1.0);
        let rg = ResponseGraph::build(&g, 1e-9).unwrap();
        assert!(rg.is_weakly_acyclic());
        assert!((rg.sink_reachable_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn successors_strictly_improve() {
        let g = line_game(4, 0.8);
        let rg = ResponseGraph::build(&g, 1e-9).unwrap();
        let fast = FastGame::new(&g).unwrap();
        for code in (0..rg.profile_count() as u32).step_by(53) {
            let masks = fast.unpack(u64::from(code));
            for &next in rg.successors(code) {
                // Exactly one peer changed.
                let next_masks = fast.unpack(u64::from(next));
                let changed: Vec<usize> = (0..4).filter(|&i| masks[i] != next_masks[i]).collect();
                assert_eq!(changed.len(), 1, "one peer per edge");
            }
        }
        assert!(rg.edge_count() > 0);
    }

    #[test]
    fn sinks_have_no_successors() {
        let g = line_game(3, 2.0);
        let rg = ResponseGraph::build(&g, 1e-9).unwrap();
        for &s in rg.sink_codes() {
            assert!(rg.successors(s).is_empty());
        }
    }

    #[test]
    fn rejects_oversized_games() {
        let g = line_game(6, 1.0);
        assert!(ResponseGraph::build(&g, 1e-9).is_err());
    }
}
