//! Experiment harness for the selfish-peers reproduction.
//!
//! * [`exhaustive`] — a fast exhaustive Nash-equilibrium scanner for tiny
//!   games (used to *prove* Theorem 5.1's non-existence claim on the
//!   `I_1` instance by checking all `2^20` profiles);
//! * [`poa`] — Price-of-Anarchy bracketing (OPT is NP-hard, so the ratio
//!   is sandwiched between `C(NE)/C(best baseline)` and
//!   `C(NE)/LB(OPT)`);
//! * [`table`] — fixed-width / Markdown / CSV table rendering for
//!   experiment output;
//! * [`report`] — serialisable experiment reports (`--json` output);
//! * [`experiments`] — the nine experiments E1–E9 of `EXPERIMENTS.md`,
//!   each regenerating one of the paper's figures/claims.

#![forbid(unsafe_code)]
// Index loops over small fixed-size numeric tables are clearer than
// iterator chains in this codebase's shortest-path/game kernels.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod exhaustive;
pub mod experiments;
pub mod fast;
pub mod poa;
pub mod report;
pub mod resilience;
pub mod response_graph;
pub mod table;

pub use report::{NamedTable, Report};
pub use table::Table;
