//! Exhaustive Nash-equilibrium scanning for tiny games.
//!
//! Theorem 5.1 claims certain instances admit **no** pure Nash
//! equilibrium. For `n = 5` (the `I_1` instance) the full strategy space
//! has `(2^4)^5 = 2^20 ≈ 10^6` profiles — small enough to check them all
//! and turn the theorem into a machine-verified certificate.
//!
//! Built on [`crate::fast::FastGame`], which avoids the general-purpose
//! machinery (no per-profile allocation, stack-matrix shortest paths).

use sp_core::{CoreError, Game, StrategyProfile};

use crate::fast::FastGame;

/// Maximum peer count for the exhaustive scan (the state space is
/// `2^{n(n-1)}`).
pub const EXHAUSTIVE_LIMIT: usize = crate::fast::FAST_LIMIT;

/// Outcome of an exhaustive scan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExhaustiveResult {
    /// No profile is a Nash equilibrium — the game provably has no pure
    /// equilibrium (Theorem 5.1 witnessed).
    NoEquilibrium {
        /// Number of profiles examined (the full space).
        profiles_checked: u64,
    },
    /// A Nash equilibrium exists; the lexicographically first one found.
    FoundEquilibrium {
        /// The equilibrium profile.
        profile: StrategyProfile,
        /// Profiles examined before it was found.
        profiles_checked: u64,
    },
}

impl ExhaustiveResult {
    /// Returns `true` when the scan proved no equilibrium exists.
    #[must_use]
    pub fn proves_no_equilibrium(&self) -> bool {
        matches!(self, ExhaustiveResult::NoEquilibrium { .. })
    }
}

/// Exhaustively decides whether `game` has any pure Nash equilibrium.
///
/// `tolerance` is the relative improvement threshold (a deviation must
/// beat the current cost by more than `tolerance · (1 + |cost|)` to
/// disqualify a profile); `1e-9` matches [`sp_core::NashTest::exact`].
///
/// # Errors
///
/// Returns [`CoreError::InstanceTooLarge`] for games with more than
/// [`EXHAUSTIVE_LIMIT`] peers.
///
/// # Example
///
/// ```
/// use sp_analysis::exhaustive::exhaustive_nash_scan;
/// use sp_core::Game;
/// use sp_metric::LineSpace;
///
/// // Two peers always have the mutual-link equilibrium.
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0]).unwrap(), 1.0).unwrap();
/// let result = exhaustive_nash_scan(&game, 1e-9).unwrap();
/// assert!(!result.proves_no_equilibrium());
/// ```
pub fn exhaustive_nash_scan(game: &Game, tolerance: f64) -> Result<ExhaustiveResult, CoreError> {
    let n = game.n();
    if n <= 1 {
        // The empty strategy is trivially an equilibrium.
        return Ok(ExhaustiveResult::FoundEquilibrium {
            profile: StrategyProfile::empty(n),
            profiles_checked: 1,
        });
    }
    let fast = FastGame::new(game)?;
    let total = fast.profile_count();
    let mut checked = 0u64;
    for code in 0..total {
        checked += 1;
        let masks = fast.unpack(code);
        if fast.is_nash(&masks, tolerance) {
            return Ok(ExhaustiveResult::FoundEquilibrium {
                profile: fast.decode(code),
                profiles_checked: checked,
            });
        }
    }
    Ok(ExhaustiveResult::NoEquilibrium {
        profiles_checked: checked,
    })
}

/// Cross-checks the fast scanner against the general-purpose machinery on
/// one profile (used by tests).
#[must_use]
pub fn agrees_with_reference(game: &Game, profile: &StrategyProfile) -> bool {
    use sp_core::{is_nash, NashTest};
    let n = game.n();
    if n > EXHAUSTIVE_LIMIT || n <= 1 {
        return true;
    }
    let fast = FastGame::new(game).expect("size checked");
    let masks = fast.unpack(fast.encode(profile));
    let fast_verdict = fast.is_nash(&masks, 1e-9);
    let slow = is_nash(game, profile, &NashTest::exact())
        .expect("valid inputs")
        .is_nash();
    fast_verdict == slow
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    fn line_game(positions: Vec<f64>, alpha: f64) -> Game {
        Game::from_space(&LineSpace::new(positions).unwrap(), alpha).unwrap()
    }

    #[test]
    fn two_peers_always_have_equilibrium() {
        let game = line_game(vec![0.0, 1.0], 2.0);
        let r = exhaustive_nash_scan(&game, 1e-9).unwrap();
        match r {
            ExhaustiveResult::FoundEquilibrium { profile, .. } => {
                assert_eq!(profile.link_count(), 2);
            }
            ExhaustiveResult::NoEquilibrium { .. } => panic!("two-peer games have equilibria"),
        }
    }

    #[test]
    fn line_games_have_equilibria() {
        for n in 3..=4 {
            let pos: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let game = line_game(pos, 1.0);
            let r = exhaustive_nash_scan(&game, 1e-9).unwrap();
            assert!(!r.proves_no_equilibrium(), "n={n} lines always stabilise");
        }
    }

    #[test]
    fn found_equilibria_verify_against_reference() {
        let game = line_game(vec![0.0, 1.0, 2.5, 3.5], 0.7);
        if let ExhaustiveResult::FoundEquilibrium { profile, .. } =
            exhaustive_nash_scan(&game, 1e-9).unwrap()
        {
            assert!(agrees_with_reference(&game, &profile));
            let report = sp_core::is_nash(&game, &profile, &sp_core::NashTest::exact()).unwrap();
            assert!(report.is_nash(), "fast scanner found a fake equilibrium");
        } else {
            panic!("line games have equilibria");
        }
    }

    #[test]
    fn fast_checker_agrees_on_random_profiles() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        let space = sp_metric::generators::uniform_square(5, 10.0, &mut rng);
        let game = Game::from_space(&space, 1.5).unwrap();
        for _ in 0..40 {
            let links: Vec<(usize, usize)> = (0..5)
                .flat_map(|i| (0..5).filter(move |&j| j != i).map(move |j| (i, j)))
                .filter(|_| rng.random_range(0.0..1.0) < 0.3)
                .collect();
            let profile = StrategyProfile::from_links(5, &links).unwrap();
            assert!(agrees_with_reference(&game, &profile));
        }
    }

    #[test]
    fn oversized_games_are_rejected() {
        let pos: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let game = line_game(pos, 1.0);
        assert!(matches!(
            exhaustive_nash_scan(&game, 1e-9),
            Err(CoreError::InstanceTooLarge { n: 6, limit: 5 })
        ));
    }

    #[test]
    fn single_peer_trivial_equilibrium() {
        let game = line_game(vec![0.0], 1.0);
        let r = exhaustive_nash_scan(&game, 1e-9).unwrap();
        assert!(!r.proves_no_equilibrium());
    }
}
