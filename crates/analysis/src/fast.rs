//! Compact fixed-size game representation for exhaustive state-space
//! work (`n ≤ 5`): strategies as bitmasks, shortest paths on stack
//! matrices, exact best responses by subset enumeration.
//!
//! Shared by the exhaustive Nash scanner and the best-response graph
//! analyser; cross-validated against the general-purpose `sp-core`
//! machinery by tests.

use sp_core::{CoreError, Game, StrategyProfile};

/// Maximum peer count (the profile space is `2^{n(n-1)}`).
pub const FAST_LIMIT: usize = 5;

pub(crate) const MAXN: usize = FAST_LIMIT;

/// A game compiled into flat arrays for exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct FastGame {
    n: usize,
    alpha: f64,
    d: [[f64; MAXN]; MAXN],
    /// candidates[i][k] = the k-th possible link target of peer i.
    candidates: [[usize; MAXN - 1]; MAXN],
}

impl FastGame {
    /// Compiles a game.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InstanceTooLarge`] for more than
    /// [`FAST_LIMIT`] peers.
    pub fn new(game: &Game) -> Result<Self, CoreError> {
        let n = game.n();
        if n > FAST_LIMIT {
            return Err(CoreError::InstanceTooLarge {
                n,
                limit: FAST_LIMIT,
            });
        }
        let mut d = [[0.0f64; MAXN]; MAXN];
        for i in 0..n {
            for j in 0..n {
                d[i][j] = game.distance(i, j);
            }
        }
        let mut candidates = [[0usize; MAXN - 1]; MAXN];
        for (i, row) in candidates.iter_mut().enumerate().take(n) {
            let mut k = 0;
            for j in 0..n {
                if j != i {
                    row[k] = j;
                    k += 1;
                }
            }
        }
        Ok(FastGame {
            n,
            alpha: game.alpha(),
            d,
            candidates,
        })
    }

    /// Number of peers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Strategy bits per peer.
    #[must_use]
    pub fn bits_per_peer(&self) -> usize {
        self.n - 1
    }

    /// Total number of strategy profiles, `2^{n(n-1)}`.
    #[must_use]
    pub fn profile_count(&self) -> u64 {
        1u64 << (self.n * (self.n - 1))
    }

    /// Splits a profile code into per-peer strategy masks.
    #[must_use]
    pub fn unpack(&self, code: u64) -> [u32; MAXN] {
        let cbits = self.bits_per_peer();
        let mut masks = [0u32; MAXN];
        for (i, m) in masks.iter_mut().enumerate().take(self.n) {
            *m = ((code >> (cbits * i)) & ((1 << cbits) - 1)) as u32;
        }
        masks
    }

    /// Packs per-peer masks into a profile code.
    #[must_use]
    pub fn pack(&self, masks: &[u32; MAXN]) -> u64 {
        let cbits = self.bits_per_peer();
        let mut code = 0u64;
        for i in 0..self.n {
            code |= u64::from(masks[i]) << (cbits * i);
        }
        code
    }

    /// Decodes a profile code into a [`StrategyProfile`].
    #[must_use]
    pub fn decode(&self, code: u64) -> StrategyProfile {
        let masks = self.unpack(code);
        let mut links = Vec::new();
        for i in 0..self.n {
            for k in 0..self.bits_per_peer() {
                if masks[i] & (1 << k) != 0 {
                    links.push((i, self.candidates[i][k]));
                }
            }
        }
        StrategyProfile::from_links(self.n, &links).expect("masks encode valid links")
    }

    /// Encodes a [`StrategyProfile`] into its code.
    ///
    /// # Panics
    ///
    /// Panics if the profile size does not match.
    #[must_use]
    pub fn encode(&self, profile: &StrategyProfile) -> u64 {
        assert_eq!(profile.n(), self.n, "profile size mismatch");
        let mut masks = [0u32; MAXN];
        for i in 0..self.n {
            for k in 0..self.bits_per_peer() {
                if profile.has_link(i.into(), self.candidates[i][k].into()) {
                    masks[i] |= 1 << k;
                }
            }
        }
        self.pack(&masks)
    }

    /// Residual distances `D[v][j]` in `G_{-i}` (peer `i`'s out-links
    /// removed) via Floyd–Warshall on the stack.
    fn residual_distances(&self, masks: &[u32; MAXN], i: usize) -> [[f64; MAXN]; MAXN] {
        let n = self.n;
        let cbits = self.bits_per_peer();
        let mut dd = [[f64::INFINITY; MAXN]; MAXN];
        for (v, row) in dd.iter_mut().enumerate().take(n) {
            row[v] = 0.0;
        }
        for u in 0..n {
            if u == i {
                continue;
            }
            for k in 0..cbits {
                if masks[u] & (1 << k) != 0 {
                    let v = self.candidates[u][k];
                    if self.d[u][v] < dd[u][v] {
                        dd[u][v] = self.d[u][v];
                    }
                }
            }
        }
        for m in 0..n {
            for a in 0..n {
                let dam = dd[a][m];
                if dam.is_infinite() {
                    continue;
                }
                for b in 0..n {
                    let via = dam + dd[m][b];
                    if via < dd[a][b] {
                        dd[a][b] = via;
                    }
                }
            }
        }
        dd
    }

    /// Exact best response of `peer` against `masks`: returns
    /// `(best_mask, best_cost, current_cost)`. Ties prefer fewer links,
    /// then the smaller mask — fully deterministic.
    #[must_use]
    pub fn best_response(&self, masks: &[u32; MAXN], peer: usize) -> (u32, f64, f64) {
        let n = self.n;
        let cbits = self.bits_per_peer();
        let dd = self.residual_distances(masks, peer);
        // assign[client][facility]
        let mut assign = [[f64::INFINITY; MAXN - 1]; MAXN - 1];
        for k in 0..cbits {
            let v = self.candidates[peer][k];
            for (jj, arow) in assign.iter_mut().enumerate().take(cbits) {
                let j = self.candidates[peer][jj];
                arow[k] = (self.d[peer][v] + dd[v][j]) / self.d[peer][j];
            }
        }
        let _ = n;
        let eval = |mask: u32| -> f64 {
            let mut cost = self.alpha * f64::from(mask.count_ones());
            for arow in assign.iter().take(cbits) {
                let mut best = f64::INFINITY;
                let mut m = mask;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if arow[k] < best {
                        best = arow[k];
                    }
                }
                cost += best;
                if cost.is_infinite() {
                    return f64::INFINITY;
                }
            }
            cost
        };
        let current = eval(masks[peer]);
        let mut best_mask = masks[peer];
        let mut best_cost = current;
        let mut best_pop = masks[peer].count_ones();
        for mask in 0u32..(1 << cbits) {
            if mask == masks[peer] {
                continue;
            }
            let c = eval(mask);
            let pop = mask.count_ones();
            let better = c < best_cost
                || (c == best_cost && (pop < best_pop || (pop == best_pop && mask < best_mask)));
            if better {
                best_cost = c;
                best_mask = mask;
                best_pop = pop;
            }
        }
        (best_mask, best_cost, current)
    }

    /// Is the profile a Nash equilibrium (relative tolerance as in
    /// `sp-core`)?
    #[must_use]
    pub fn is_nash(&self, masks: &[u32; MAXN], tolerance: f64) -> bool {
        for i in 0..self.n {
            let (_, best, current) = self.best_response(masks, i);
            if best.is_finite() {
                if current.is_infinite() {
                    return false;
                }
                if best < current - tolerance * (1.0 + current.abs()) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::{best_response as slow_br, BestResponseMethod, PeerId};
    use sp_metric::LineSpace;

    fn game() -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.5, 4.0]).unwrap(), 1.2).unwrap()
    }

    #[test]
    fn codec_roundtrip() {
        let fg = FastGame::new(&game()).unwrap();
        for code in [0u64, 1, 100, fg.profile_count() - 1] {
            let profile = fg.decode(code);
            assert_eq!(fg.encode(&profile), code);
        }
    }

    #[test]
    fn fast_best_response_matches_general_machinery() {
        let g = game();
        let fg = FastGame::new(&g).unwrap();
        for code in (0..fg.profile_count()).step_by(97) {
            let masks = fg.unpack(code);
            let profile = fg.decode(code);
            for peer in 0..4 {
                let (_, fast_cost, fast_cur) = fg.best_response(&masks, peer);
                let br =
                    slow_br(&g, &profile, PeerId::new(peer), BestResponseMethod::Exact).unwrap();
                assert!(
                    (fast_cost - br.cost).abs() < 1e-9
                        || (fast_cost.is_infinite() && br.cost.is_infinite()),
                    "code {code} peer {peer}: fast {fast_cost} vs slow {}",
                    br.cost
                );
                assert!(
                    (fast_cur - br.current_cost).abs() < 1e-9
                        || (fast_cur.is_infinite() && br.current_cost.is_infinite())
                );
            }
        }
    }

    #[test]
    fn rejects_large_games() {
        let pos: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let g = Game::from_space(&LineSpace::new(pos).unwrap(), 1.0).unwrap();
        assert!(FastGame::new(&g).is_err());
    }
}
