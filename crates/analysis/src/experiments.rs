//! The experiments of `EXPERIMENTS.md` (E1–E16), one per paper
//! figure/theorem plus extensions. Each function returns a [`Report`]
//! whose tables the `sp-bench` binaries print; `quick` trims the sweeps
//! for smoke tests.

use rand::prelude::*;
use sp_constructions::baselines;
use sp_constructions::fabrikant::FabrikantGame;
use sp_constructions::line::LineLowerBound;
use sp_constructions::no_ne::{CandidateState, Cluster, NoEquilibriumInstance};
use sp_core::{nash_gap, BestResponseMethod, Game, GameSession, NashTest, StrategyProfile};
use sp_dynamics::{DynamicsConfig, DynamicsRunner, ResponseRule, Schedule, Termination};
use sp_metric::generators;

use crate::exhaustive::{exhaustive_nash_scan, ExhaustiveResult};
use crate::poa::PoaEstimator;
use crate::table::fmt_f64;
use crate::{Report, Table};

/// E1 — Lemma 4.2: the Figure 1 profile is a Nash equilibrium for
/// `α ≥ 3.4` (verified with exact best responses).
#[must_use]
pub fn exp_fig1_nash(quick: bool) -> Report {
    let mut report = Report::new(
        "E1",
        "Lemma 4.2: Figure 1 line construction is Nash for α ≥ 3.4",
    );
    report.push_note("exact best responses via branch-and-bound facility location");
    let sizes: &[usize] = if quick {
        &[4, 6, 8]
    } else {
        &[4, 6, 8, 10, 12, 14]
    };
    let alphas = [2.5, 3.0, 3.4, 4.0, 6.0, 10.0];
    let mut t = Table::new(vec!["n", "alpha", "guaranteed", "is_nash", "max_gain"]);
    for &n in sizes {
        for alpha in alphas {
            let lb = LineLowerBound::new(n, alpha).expect("parameters in range");
            let game = lb.game();
            let profile = lb.equilibrium_profile();
            let gap = nash_gap(&game, &profile, BestResponseMethod::Exact).expect("sizes match");
            t.push_row(vec![
                n.to_string(),
                fmt_f64(alpha),
                lb.nash_guaranteed().to_string(),
                (gap <= 1e-9).to_string(),
                fmt_f64(gap),
            ]);
        }
    }
    report.push_table("nash verification", &t);
    report.push_note(
        "expected shape: is_nash = true whenever guaranteed = true (α ≥ 3.4); \
         below the threshold stability may or may not persist",
    );
    report
}

/// E2 — Lemma 4.3: the Figure 1 equilibrium has social cost `Θ(αn²)`.
#[must_use]
pub fn exp_fig1_cost(quick: bool) -> Report {
    let mut report = Report::new("E2", "Lemma 4.3: equilibrium social cost is Θ(αn²)");
    let sizes: &[usize] = if quick {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64, 128, 256]
    };
    let mut t = Table::new(vec!["alpha", "n", "C_E", "C_S", "C", "C/(αn²)"]);
    for alpha in [3.4, 10.0] {
        for &n in sizes {
            let Ok(lb) = LineLowerBound::new(n, alpha) else {
                continue; // positions would overflow f64
            };
            let c = lb.equilibrium_cost();
            t.push_row(vec![
                fmt_f64(alpha),
                n.to_string(),
                fmt_f64(c.link_cost),
                fmt_f64(c.stretch_cost),
                fmt_f64(c.total()),
                fmt_f64(c.total() / (alpha * (n * n) as f64)),
            ]);
        }
    }
    report.push_table("cost scaling", &t);
    report.push_note("expected shape: the C/(αn²) column settles to a constant (Θ(αn²))");
    report
}

/// E3 — Theorem 4.4 (headline): Price of Anarchy of the Figure 1 family
/// is `Θ(min(α, n))`.
#[must_use]
pub fn exp_fig1_poa(quick: bool) -> Report {
    let mut report = Report::new("E3", "Theorem 4.4: Price of Anarchy grows as Θ(min(α, n))");
    let sizes: &[usize] = if quick {
        &[11, 21, 41]
    } else {
        &[11, 21, 41, 81, 161]
    };
    let alphas: &[f64] = if quick {
        &[3.4, 10.0, 25.0]
    } else {
        &[3.4, 10.0, 25.0, 50.0, 100.0]
    };
    let mut t = Table::new(vec![
        "n",
        "alpha",
        "C(G)",
        "C(G~)",
        "PoA_lb",
        "min(α,n)",
        "PoA_lb/min(α,n)",
    ]);
    for &n in sizes {
        for &alpha in alphas {
            let Ok(lb) = LineLowerBound::new(n, alpha) else {
                continue; // α^(n-1) overflows
            };
            let ne = lb.equilibrium_cost().total();
            let reference = lb.reference_cost().total();
            let poa = ne / reference;
            let bound = alpha.min(n as f64);
            t.push_row(vec![
                n.to_string(),
                fmt_f64(alpha),
                fmt_f64(ne),
                fmt_f64(reference),
                fmt_f64(poa),
                fmt_f64(bound),
                fmt_f64(poa / bound),
            ]);
        }
    }
    report.push_table("PoA sweep", &t);
    report.push_note(
        "expected shape: PoA_lb grows with α until α ≈ n and the normalized \
         column stays within a constant band (the paper's Θ(min(α, n)))",
    );
    report
}

/// E4 — Theorem 4.1: equilibria reached by best-response dynamics on
/// arbitrary metrics respect the `α + 1` stretch bound and the
/// `O(min(α, n))` PoA upper bound.
#[must_use]
pub fn exp_upper_bound(quick: bool, seed: u64) -> Report {
    let mut report = Report::new(
        "E4",
        "Theorem 4.1: max stretch ≤ α+1 in equilibria; PoA within O(min(α,n))",
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: &[usize] = if quick { &[8] } else { &[8, 12, 16] };
    let alphas: &[f64] = if quick {
        &[2.0, 8.0]
    } else {
        &[0.5, 2.0, 8.0, 32.0]
    };
    let mut t = Table::new(vec![
        "metric",
        "n",
        "alpha",
        "converged",
        "max_stretch",
        "α+1",
        "nash",
        "PoA_lb",
        "PoA_ub",
        "min(α,n)",
    ]);
    for &n in sizes {
        for &alpha in alphas {
            let metrics: Vec<(&str, Game)> = vec![
                (
                    "uniform-2d",
                    Game::from_space(&generators::uniform_square(n, 100.0, &mut rng), alpha)
                        .expect("valid"),
                ),
                (
                    "clustered",
                    Game::from_space(
                        &generators::ClusteredPoints::new(3, n.div_ceil(3))
                            .area_side(100.0)
                            .cluster_radius(2.0)
                            .build(&mut rng),
                        alpha,
                    )
                    .expect("valid"),
                ),
                (
                    "bounded-ratio",
                    Game::from_space(
                        &generators::random_bounded_ratio_metric(n, 1.0, 2.0, &mut rng),
                        alpha,
                    )
                    .expect("valid"),
                ),
            ];
            for (name, game) in metrics {
                let n_eff = game.n();
                let mut session = GameSession::new(game.clone(), StrategyProfile::empty(n_eff))
                    .expect("sizes match");
                let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
                let out = runner.run_session(&mut session);
                let converged = matches!(out.termination, Termination::Converged { .. });
                // All post-run measurements share the dynamics session's
                // cached overlay distances.
                let ms = session.max_stretch();
                let nash = converged
                    && session
                        .is_nash(&NashTest::exact())
                        .expect("valid")
                        .is_nash();
                let est = PoaEstimator::new(&game);
                let bracket = est.bracket_session(&mut session);
                t.push_row(vec![
                    name.to_owned(),
                    n_eff.to_string(),
                    fmt_f64(alpha),
                    converged.to_string(),
                    fmt_f64(ms),
                    fmt_f64(alpha + 1.0),
                    nash.to_string(),
                    fmt_f64(bracket.poa_lower()),
                    fmt_f64(bracket.poa_upper()),
                    fmt_f64(alpha.min(n_eff as f64)),
                ]);
            }
        }
    }
    report.push_table("equilibria on arbitrary metrics", &t);
    report.push_note(
        "expected shape: max_stretch never exceeds α+1 when nash = true, and \
         PoA_lb stays below (a constant times) min(α, n)",
    );
    report
}

/// E5 — Theorem 5.1: the instance `I_k` admits no pure Nash equilibrium;
/// best-response dynamics provably cycles.
#[must_use]
pub fn exp_no_ne(quick: bool) -> Report {
    let mut report = Report::new(
        "E5",
        "Theorem 5.1: I_k has no pure Nash equilibrium (dynamics cycles)",
    );
    // Part 1: exhaustive certificate for k = 1.
    if quick {
        report.push_note("(--quick: exhaustive 2^20 certificate skipped)");
    } else {
        let inst = NoEquilibriumInstance::paper(1);
        match exhaustive_nash_scan(inst.game(), 1e-9).expect("n = 5 within limit") {
            ExhaustiveResult::NoEquilibrium { profiles_checked } => {
                report.push_note(format!(
                    "k=1: CERTIFIED no pure Nash equilibrium (all {profiles_checked} profiles checked)"
                ));
            }
            ExhaustiveResult::FoundEquilibrium {
                profile,
                profiles_checked,
            } => {
                report.push_note(format!(
                    "k=1: UNEXPECTED equilibrium after {profiles_checked} profiles: {profile}"
                ));
            }
        }
    }
    // Part 2: dynamics cycling for k = 1, 2, 3.
    let ks: &[usize] = if quick { &[1] } else { &[1, 2, 3] };
    let mut t = Table::new(vec![
        "k",
        "n",
        "alpha",
        "start",
        "termination",
        "steps",
        "period",
        "moves_in_cycle",
    ]);
    for &k in ks {
        let inst = NoEquilibriumInstance::paper(k);
        let n = inst.n();
        let starts: Vec<(&str, StrategyProfile)> = vec![
            ("empty", StrategyProfile::empty(n)),
            ("complete", StrategyProfile::complete(n)),
            ("candidate-S1", inst.candidate_profile(CandidateState::S1)),
        ];
        for (name, start) in starts {
            let mut runner = DynamicsRunner::new(
                inst.game(),
                DynamicsConfig {
                    max_rounds: 400,
                    ..DynamicsConfig::default()
                },
            );
            let out = runner.run(start);
            let (term, period, mic) = match out.termination {
                Termination::Converged { .. } => ("CONVERGED (unexpected)", 0, 0),
                Termination::Cycle {
                    period_steps,
                    moves_in_cycle,
                    ..
                } => ("cycle", period_steps, moves_in_cycle),
                Termination::RoundLimit => ("round-limit", 0, 0),
            };
            t.push_row(vec![
                k.to_string(),
                n.to_string(),
                fmt_f64(inst.game().alpha()),
                name.to_owned(),
                term.to_owned(),
                out.steps.to_string(),
                period.to_string(),
                mic.to_string(),
            ]);
        }
    }
    report.push_table("round-robin exact best-response dynamics", &t);
    report.push_note("expected shape: every run ends in a provable cycle, never convergence");
    report
}

/// E6 — Figure 3: each of the six candidate topologies admits an
/// improving deviation by a bottom-cluster peer, and following those
/// deviations reproduces the improvement cycle `1 → 3 → 4 → 2 → 1`.
#[must_use]
pub fn exp_fig3_candidates() -> Report {
    let mut report = Report::new("E6", "Figure 3: all six candidate topologies are unstable");
    let inst = NoEquilibriumInstance::paper(1);
    let game = inst.game();
    let mut t = Table::new(vec![
        "case",
        "Π1 links",
        "Π2 link",
        "deviator",
        "old_cost",
        "new_cost",
        "next_state",
        "top_stable",
    ]);
    let mut transitions: Vec<(usize, Option<usize>)> = Vec::new();
    for s in CandidateState::ALL {
        let profile = inst.candidate_profile(s);
        // The paper's case analysis: which bottom-cluster peer improves?
        let bottoms = [
            inst.representative(Cluster::Bottom1),
            inst.representative(Cluster::Bottom2),
        ];
        let mut best: Option<(sp_core::PeerId, sp_core::LinkSet, f64, f64)> = None;
        for &p in &bottoms {
            let br = sp_core::best_response(game, &profile, p, BestResponseMethod::Exact)
                .expect("valid inputs");
            if br.improves(1e-9) {
                let better = match &best {
                    None => true,
                    Some((_, _, old, new)) => br.improvement() > old - new,
                };
                if better {
                    best = Some((p, br.links.clone(), br.current_cost, br.cost));
                }
            }
        }
        // Are the top clusters already playing best responses?
        let top_stable = [Cluster::TopA, Cluster::TopB, Cluster::TopC]
            .iter()
            .all(|&c| {
                let p = inst.representative(c);
                !sp_core::best_response(game, &profile, p, BestResponseMethod::Exact)
                    .expect("valid inputs")
                    .improves(1e-9)
            });
        match best {
            None => {
                transitions.push((s.case_number(), None));
                t.push_row(vec![
                    s.case_number().to_string(),
                    describe_pi1(s),
                    inst_cluster_label(s.pi2_link()),
                    "NONE".to_owned(),
                    String::new(),
                    String::new(),
                    String::new(),
                    top_stable.to_string(),
                ]);
            }
            Some((peer, links, old, new)) => {
                let next = profile.with_strategy(peer, links).expect("valid deviation");
                let next_case = inst.classify(&next).map(CandidateState::case_number);
                transitions.push((s.case_number(), next_case));
                t.push_row(vec![
                    s.case_number().to_string(),
                    describe_pi1(s),
                    inst_cluster_label(s.pi2_link()),
                    inst.cluster_of(peer).label().to_owned(),
                    fmt_f64(old),
                    fmt_f64(new),
                    next_case.map_or_else(|| "outside family".to_owned(), |c| format!("case {c}")),
                    top_stable.to_string(),
                ]);
            }
        }
    }
    report.push_table("candidate instability (bottom-cluster case analysis)", &t);
    // Walk the induced transition map from case 1 and print the loop.
    let mut path = vec![1usize];
    let mut cur = 1usize;
    for _ in 0..8 {
        let Some(&(_, Some(next))) = transitions.iter().find(|&&(c, _)| c == cur) else {
            break;
        };
        path.push(next);
        cur = next;
        if path[1..].contains(&1) || path.iter().filter(|&&x| x == cur).count() > 1 {
            break;
        }
    }
    report.push_note(format!(
        "improvement walk from case 1: {}",
        path.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" -> ")
    ));
    report.push_note(
        "expected shape: no candidate stable, top clusters content in the cycling \
         states, and the walk loops (the paper's 1 -> 3 -> 4 -> 2 -> 1)",
    );
    report
}

fn describe_pi1(s: CandidateState) -> String {
    match s.pi1_extra() {
        None => "{Πa}".to_owned(),
        Some(c) => format!("{{Πa, {}}}", c.label()),
    }
}

fn inst_cluster_label(c: Cluster) -> String {
    c.label().to_owned()
}

/// E7 — extension: convergence statistics of the dynamics on random
/// instances, across schedules and response rules.
#[must_use]
pub fn exp_convergence(quick: bool, seed: u64) -> Report {
    let mut report = Report::new("E7", "Convergence statistics on random 2-D instances");
    let sizes: &[usize] = if quick { &[8] } else { &[8, 12, 16] };
    let alphas: &[f64] = if quick { &[4.0] } else { &[1.0, 4.0, 16.0] };
    let runs = if quick { 3 } else { 10 };
    let mut t = Table::new(vec![
        "n",
        "alpha",
        "schedule",
        "rule",
        "runs",
        "converged",
        "mean_steps",
    ]);
    for &n in sizes {
        for &alpha in alphas {
            for (sched_name, schedule) in [
                ("round-robin", Schedule::RoundRobin),
                ("random-perm", Schedule::RandomPermutation { seed }),
                ("uniform", Schedule::UniformRandom { seed }),
            ] {
                for (rule_name, rule) in [
                    ("best", ResponseRule::BestResponse),
                    ("better", ResponseRule::BetterResponse),
                ] {
                    let mut stats = sp_dynamics::stats::ConvergenceStats::default();
                    let mut rng = StdRng::seed_from_u64(seed ^ (n as u64) << 8 ^ alpha as u64);
                    for _ in 0..runs {
                        let space = generators::uniform_square(n, 100.0, &mut rng);
                        let game = Game::from_space(&space, alpha).expect("valid");
                        let config = DynamicsConfig {
                            rule,
                            schedule: schedule.clone(),
                            max_rounds: 300,
                            ..DynamicsConfig::default()
                        };
                        let mut runner = DynamicsRunner::new(&game, config);
                        let out = runner.run(StrategyProfile::empty(n));
                        stats.record(&out);
                    }
                    t.push_row(vec![
                        n.to_string(),
                        fmt_f64(alpha),
                        sched_name.to_owned(),
                        rule_name.to_owned(),
                        stats.runs.to_string(),
                        stats.converged.to_string(),
                        stats.mean_steps().map_or_else(|| "-".to_owned(), fmt_f64),
                    ]);
                }
            }
        }
    }
    report.push_table("convergence", &t);
    report.push_note(
        "expected shape: random Euclidean instances converge essentially always \
         (the paper's non-convergence needs the engineered I_k geometry)",
    );
    report
}

/// E8 — related-work baseline: the Fabrikant et al. hop-count game vs
/// this paper's stretch game on identical peer sets.
#[must_use]
pub fn exp_fabrikant(quick: bool, seed: u64) -> Report {
    let mut report = Report::new(
        "E8",
        "Fabrikant et al. (hop count, undirected) vs selfish-peers (stretch, directed)",
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: &[usize] = if quick { &[6] } else { &[6, 8, 10] };
    let alphas: &[f64] = if quick { &[1.5] } else { &[0.5, 1.5, 3.0] };
    let mut t = Table::new(vec![
        "game",
        "n",
        "alpha",
        "converged",
        "links",
        "max_out_degree",
        "social_cost",
    ]);
    for &n in sizes {
        for &alpha in alphas {
            // Fabrikant game (metric-free).
            let fab = FabrikantGame::new(n, alpha).expect("valid alpha");
            let (fp, fconv) = fab
                .best_response_dynamics(StrategyProfile::empty(n), 100)
                .expect("valid profile");
            let ftopo = {
                let mut g = sp_graph::DiGraph::new(n);
                for (a, b) in fp.links() {
                    g.add_edge(a.index(), b.index(), 1.0);
                }
                g
            };
            t.push_row(vec![
                "fabrikant".to_owned(),
                n.to_string(),
                fmt_f64(alpha),
                fconv.to_string(),
                fp.link_count().to_string(),
                ftopo.max_out_degree().to_string(),
                fmt_f64(fab.social_cost(&fp).expect("valid")),
            ]);
            // Stretch game on a uniform square of the same size.
            let space = generators::uniform_square(n, 100.0, &mut rng);
            let game = Game::from_space(&space, alpha).expect("valid");
            let mut session =
                GameSession::new(game.clone(), StrategyProfile::empty(n)).expect("sizes match");
            let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
            let out = runner.run_session(&mut session);
            let topo = sp_core::topology(&game, &out.profile).expect("sizes match");
            t.push_row(vec![
                "stretch".to_owned(),
                n.to_string(),
                fmt_f64(alpha),
                matches!(out.termination, Termination::Converged { .. }).to_string(),
                out.profile.link_count().to_string(),
                topo.max_out_degree().to_string(),
                fmt_f64(session.social_cost().total()),
            ]);
        }
    }
    report.push_table("equilibria compared", &t);
    report.push_note(
        "expected shape: the hop-count game collapses to sparse tree/star-like \
         equilibria as α grows; the stretch game keeps locality-driven links",
    );
    report
}

/// E9 — footnote 2: baseline overlay quality; the `√n`-hub overlay wins
/// around `α = √n`.
#[must_use]
pub fn exp_baselines(quick: bool) -> Report {
    let mut report = Report::new(
        "E9",
        "Baseline overlays: who wins at which α (footnote 2, Tulip)",
    );
    let sizes: &[usize] = if quick { &[16, 64] } else { &[16, 64, 256] };
    let mut t = Table::new(vec![
        "n",
        "alpha",
        "winner",
        "complete",
        "star",
        "chain",
        "mst",
        "hub(√n)",
    ]);
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(1000 + n as u64);
        let space = generators::uniform_square(n, 100.0, &mut rng);
        for alpha in [0.05, 1.0, (n as f64).sqrt(), n as f64] {
            let game = Game::from_space(&space, alpha).expect("valid");
            let all = baselines::all_baselines(&game);
            let find = |prefix: &str| -> f64 {
                all.iter()
                    .find(|b| b.name.starts_with(prefix))
                    .map_or(f64::NAN, |b| b.cost.total())
            };
            t.push_row(vec![
                n.to_string(),
                fmt_f64(alpha),
                all[0].name.clone(),
                fmt_f64(find("complete")),
                fmt_f64(find("star")),
                fmt_f64(find("nn-chain")),
                fmt_f64(find("mst")),
                fmt_f64(find("hub")),
            ]);
        }
    }
    report.push_table("baseline social costs", &t);
    report.push_note(
        "expected shape: complete wins only as α → 0; sparse overlays (MST, \
         star, hub) take over quickly, and the √n-hub overlay stays within a \
         small factor of the best around α ≈ √n (footnote 2's regime)",
    );
    report
}

/// Representative peer of a cluster, used by E6 narrative output.
#[must_use]
pub fn representative_of(inst: &NoEquilibriumInstance, c: Cluster) -> sp_core::PeerId {
    inst.representative(c)
}

/// E10 — extension: ε-stability of the no-equilibrium instance. With a
/// large enough indifference threshold (peers ignore small gains), even
/// `I_1` settles — quantifying "how far from stable" Theorem 5.1's
/// instance really is.
#[must_use]
pub fn exp_epsilon_stability(quick: bool) -> Report {
    let mut report = Report::new(
        "E10",
        "ε-stability: the I_1 oscillation dies once peers ignore small gains",
    );
    let inst = NoEquilibriumInstance::paper(1);
    let tolerances: &[f64] = if quick {
        &[1e-9, 0.01, 0.1]
    } else {
        &[1e-9, 1e-4, 1e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1]
    };
    let mut t = Table::new(vec!["tolerance", "termination", "steps", "residual_gap"]);
    for &tol in tolerances {
        let config = DynamicsConfig {
            tolerance: tol,
            max_rounds: 300,
            ..DynamicsConfig::default()
        };
        let mut session =
            GameSession::new(inst.game().clone(), StrategyProfile::empty(5)).expect("sizes match");
        let mut runner = DynamicsRunner::new(inst.game(), config);
        let out = runner.run_session(&mut session);
        let term = match out.termination {
            Termination::Converged { .. } => "converged",
            Termination::Cycle { .. } => "cycle",
            Termination::RoundLimit => "round-limit",
        };
        // How much could any peer still gain at the final profile?
        let gap = session
            .nash_gap(BestResponseMethod::Exact)
            .expect("sizes match");
        t.push_row(vec![
            fmt_f64(tol),
            term.to_owned(),
            out.steps.to_string(),
            fmt_f64(gap),
        ]);
    }
    report.push_table("tolerance sweep on I_1", &t);
    report.push_note(
        "expected shape: cycles at (near-)exact tolerances, convergence to an \
         ε-equilibrium once the threshold exceeds the smallest move in the loop",
    );
    report
}

/// E11 — extension: how α shapes equilibrium topologies — degree,
/// diameter, betweenness concentration, clustering.
#[must_use]
pub fn exp_topology_shape(quick: bool, seed: u64) -> Report {
    use sp_graph::measures;
    let mut report = Report::new("E11", "Equilibrium topology shape across the α spectrum");
    let n = if quick { 10 } else { 16 };
    let alphas: &[f64] = if quick {
        &[0.5, 8.0]
    } else {
        &[0.25, 1.0, 4.0, 16.0, 64.0]
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let space = generators::uniform_square(n, 100.0, &mut rng);
    let mut t = Table::new(vec![
        "alpha",
        "links",
        "deg_max",
        "deg_mean",
        "diameter_w",
        "max_betweenness",
        "clustering",
        "mean_stretch",
    ]);
    for &alpha in alphas {
        let game = Game::from_space(&space, alpha).expect("valid");
        let mut session =
            GameSession::new(game.clone(), StrategyProfile::empty(n)).expect("sizes match");
        let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
        let out = runner.run_session(&mut session);
        if !matches!(out.termination, Termination::Converged { .. }) {
            t.push_row(vec![
                fmt_f64(alpha),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "did not converge".into(),
            ]);
            continue;
        }
        let topo = sp_core::topology(&game, &out.profile).expect("sizes match");
        let deg = measures::degree_stats(&topo).expect("non-empty");
        let bc = measures::betweenness_centrality(&topo);
        let max_bc = bc.iter().copied().fold(0.0f64, f64::max);
        let sc = session.social_cost();
        let mean_stretch = sc.stretch_cost / (n * (n - 1)) as f64;
        t.push_row(vec![
            fmt_f64(alpha),
            out.profile.link_count().to_string(),
            deg.max.to_string(),
            fmt_f64(deg.mean),
            fmt_f64(measures::diameter(&topo)),
            fmt_f64(max_bc),
            fmt_f64(measures::clustering_coefficient(&topo)),
            fmt_f64(mean_stretch),
        ]);
    }
    report.push_table("topology measures at equilibrium", &t);
    report.push_note(
        "expected shape: growing α prunes links (degree falls), lengthens \
         detours (diameter and mean stretch rise), and concentrates transit \
         on few peers (max betweenness rises)",
    );
    report
}

/// E12 — extension: failure injection — equilibria vs collaborative
/// baselines under single-peer crashes.
#[must_use]
pub fn exp_resilience(quick: bool, seed: u64) -> Report {
    use crate::resilience::failure_sweep;
    let mut report = Report::new(
        "E12",
        "Single-failure resilience: selfish equilibria vs collaborative overlays",
    );
    let n = if quick { 10 } else { 14 };
    let alpha = 4.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let space = generators::uniform_square(n, 100.0, &mut rng);
    let game = Game::from_space(&space, alpha).expect("valid");
    let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
    let out = runner.run(StrategyProfile::empty(n));

    let mut entries: Vec<(String, StrategyProfile)> = vec![
        ("equilibrium".to_owned(), out.profile.clone()),
        ("complete".to_owned(), StrategyProfile::complete(n)),
    ];
    for b in baselines::all_baselines(&game) {
        entries.push((b.name.clone(), b.profile));
    }
    let mut t = Table::new(vec![
        "topology",
        "links",
        "robust_frac",
        "worst_disconn",
        "mean_stretch_after",
    ]);
    for (name, profile) in entries {
        if name == "complete" && t.rows().iter().any(|r| r[0] == "complete") {
            continue; // complete appears in baselines too
        }
        let summary = failure_sweep(&game, &profile).expect("sizes match");
        t.push_row(vec![
            name,
            profile.link_count().to_string(),
            fmt_f64(summary.robust_fraction()),
            summary.worst_disconnections().to_string(),
            fmt_f64(summary.mean_mean_stretch()),
        ]);
    }
    report.push_table("single-failure sweep", &t);
    report.push_note(
        "expected shape: trees (mst, chain, star) lose many pairs on interior \
         failures; equilibria sit between trees and the complete graph — \
         redundancy bought for selfish reasons still helps survival",
    );
    report
}

/// E13 — extension: simultaneous-move dynamics vs the sequential
/// dynamics used everywhere else.
#[must_use]
pub fn exp_simultaneous(quick: bool, seed: u64) -> Report {
    use sp_dynamics::simultaneous::{run_simultaneous, SimultaneousConfig};
    let mut report = Report::new(
        "E13",
        "Update timing: simultaneous vs sequential best responses",
    );
    let sizes: &[usize] = if quick { &[6] } else { &[6, 8, 10, 12] };
    let runs = if quick { 3 } else { 10 };
    let mut t = Table::new(vec![
        "n",
        "runs",
        "seq_converged",
        "sim_converged",
        "sim_cycles",
    ]);
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(seed ^ (n as u64) << 4);
        let mut seq_c = 0;
        let mut sim_c = 0;
        let mut sim_cycle = 0;
        for _ in 0..runs {
            let space = generators::uniform_square(n, 100.0, &mut rng);
            let game = Game::from_space(&space, 4.0).expect("valid");
            let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
            if matches!(
                runner.run(StrategyProfile::empty(n)).termination,
                Termination::Converged { .. }
            ) {
                seq_c += 1;
            }
            let sim = run_simultaneous(
                &game,
                StrategyProfile::empty(n),
                &SimultaneousConfig::default(),
            );
            match sim.termination {
                Termination::Converged { .. } => sim_c += 1,
                Termination::Cycle { .. } => sim_cycle += 1,
                Termination::RoundLimit => {}
            }
        }
        t.push_row(vec![
            n.to_string(),
            runs.to_string(),
            seq_c.to_string(),
            sim_c.to_string(),
            sim_cycle.to_string(),
        ]);
    }
    // And on the engineered instance both fail, for the strategic reason.
    let inst = NoEquilibriumInstance::paper(1);
    let sim = run_simultaneous(
        inst.game(),
        StrategyProfile::empty(5),
        &SimultaneousConfig::default(),
    );
    report.push_note(format!(
        "I_1 under simultaneous updates: {:?} (no equilibrium exists, so no \
         update timing can stabilise it)",
        match sim.termination {
            Termination::Converged { .. } => "converged (impossible!)",
            Termination::Cycle { .. } => "cycle",
            Termination::RoundLimit => "round-limit",
        }
    ));
    report.push_table("random instances", &t);
    report.push_note(
        "expected shape: sequential updates converge essentially always; \
         simultaneous updates sometimes coordination-cycle even where \
         equilibria exist — the paper's Theorem 5.1 instability is the \
         stronger, timing-independent phenomenon",
    );
    report
}

/// E14 — extension: greedy routability of selfish equilibria. The
/// equilibria optimise *shortest-path* stretch; can a stateless greedy
/// router (forward to the neighbour closest to the target) actually use
/// them?
#[must_use]
pub fn exp_greedy_routing(quick: bool, seed: u64) -> Report {
    use sp_sim::{workload, LookupSimulator, Routing, SimConfig};
    let mut report = Report::new(
        "E14",
        "Greedy routability: stateless routing over selfish equilibria vs baselines",
    );
    let n = if quick { 10 } else { 16 };
    let alphas: &[f64] = if quick { &[4.0] } else { &[1.0, 4.0, 16.0] };
    let mut rng = StdRng::seed_from_u64(seed);
    let space = generators::uniform_square(n, 100.0, &mut rng);
    let pairs = workload::all_pairs(n);
    let mut t = Table::new(vec![
        "alpha",
        "topology",
        "greedy_success",
        "greedy_stretch",
        "sp_stretch",
    ]);
    for &alpha in alphas {
        let game = Game::from_space(&space, alpha).expect("valid");
        let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
        let out = runner.run(StrategyProfile::empty(n));
        let mut entries: Vec<(String, StrategyProfile)> =
            vec![("equilibrium".to_owned(), out.profile.clone())];
        for b in baselines::all_baselines(&game) {
            entries.push((b.name.clone(), b.profile));
        }
        for (name, profile) in entries {
            let greedy = LookupSimulator::new(
                &game,
                &profile,
                SimConfig {
                    routing: Routing::GreedyMetric,
                    ..SimConfig::default()
                },
            )
            .expect("sizes match");
            let sp =
                LookupSimulator::new(&game, &profile, SimConfig::default()).expect("sizes match");
            let gs = greedy.run_workload(&pairs);
            let ss = sp.run_workload(&pairs);
            t.push_row(vec![
                fmt_f64(alpha),
                name,
                fmt_f64(gs.success_rate()),
                gs.mean_stretch(&game).map_or_else(|| "-".into(), fmt_f64),
                ss.mean_stretch(&game).map_or_else(|| "-".into(), fmt_f64),
            ]);
        }
    }
    report.push_table("greedy vs shortest-path routing", &t);
    report.push_note(
        "expected shape: equilibria route greedily fairly well (locality-driven \
         links double as greedy progress), while star/hub topologies lose many \
         lookups at local minima near the periphery",
    );
    report
}

/// E15 — extension: the best-response graph. Sinks are equilibria; weak
/// acyclicity means the dynamics can always stabilise with the right
/// activation order. Random tiny games vs the engineered `I_1`.
#[must_use]
pub fn exp_response_graph(quick: bool, seed: u64) -> Report {
    use crate::response_graph::ResponseGraph;
    let mut report = Report::new(
        "E15",
        "Best-response graph structure: equilibria, weak acyclicity, cycles",
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = if quick { 4 } else { 12 };
    let mut t = Table::new(vec![
        "instance",
        "profiles",
        "edges",
        "equilibria",
        "sink_reachable",
        "weakly_acyclic",
        "br_cycle",
    ]);
    for s in 0..samples {
        let space = generators::uniform_square(4, 50.0, &mut rng);
        let alpha = [0.5, 1.0, 2.0, 6.0][s % 4];
        let game = Game::from_space(&space, alpha).expect("valid");
        let rg = ResponseGraph::build(&game, 1e-9).expect("n = 4 within limit");
        t.push_row(vec![
            format!("random-4 (α={alpha})"),
            rg.profile_count().to_string(),
            rg.edge_count().to_string(),
            rg.equilibrium_count().to_string(),
            fmt_f64(rg.sink_reachable_fraction()),
            rg.is_weakly_acyclic().to_string(),
            rg.has_best_response_cycle().to_string(),
        ]);
    }
    if quick {
        report.push_note("(--quick: the 2^20-node I_1 response graph skipped)");
    } else {
        let inst = NoEquilibriumInstance::paper(1);
        let rg = ResponseGraph::build(inst.game(), 1e-9).expect("n = 5 within limit");
        t.push_row(vec![
            "I_1 (Thm 5.1)".to_owned(),
            rg.profile_count().to_string(),
            rg.edge_count().to_string(),
            rg.equilibrium_count().to_string(),
            fmt_f64(rg.sink_reachable_fraction()),
            rg.is_weakly_acyclic().to_string(),
            rg.has_best_response_cycle().to_string(),
        ]);
    }
    report.push_table("best-response graphs", &t);
    report.push_note(
        "expected shape: random games have several equilibria and are weakly \
         acyclic (often with benign cycles elsewhere in the graph); I_1 has 0 \
         equilibria, sink-reachability 0, and is all cycle",
    );
    report
}

/// E16 — extension: churn. Peers leave and rejoin a converged system;
/// the survivors re-settle either with sequential activations
/// ([`sp_dynamics::churn::ChurnSimulator::settle`]) or with sharded
/// simultaneous rounds
/// ([`sp_dynamics::churn::ChurnSimulator::settle_rounds`], the parallel
/// round engine). Quantifies the re-stabilisation work per event and
/// checks the two settle engines land on the same topology.
#[must_use]
pub fn exp_churn(quick: bool, seed: u64) -> Report {
    use sp_dynamics::churn::ChurnSimulator;
    use sp_dynamics::simultaneous::SimultaneousConfig;

    let mut report = Report::new(
        "E16",
        "Churn: re-stabilisation work per departure/arrival, sequential vs sharded-round settles",
    );
    let n = if quick { 8 } else { 14 };
    let alpha = 4.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let space = generators::uniform_square(n, 100.0, &mut rng);
    let universe = Game::from_space(&space, alpha).expect("valid");

    // Two simulators fed the identical event script: one settles with
    // sequential activations, one with (forced 2-shard) simultaneous
    // rounds — the engines must agree on every settled topology.
    let mut seq_sim = ChurnSimulator::new(&universe);
    let mut par_sim = ChurnSimulator::new(&universe);
    let seq_config = DynamicsConfig::default();
    // Simultaneous rounds coordination-cycle from *cold* starts (E13:
    // everyone builds a full out-star at once, then everyone drops it),
    // so both simulators bootstrap sequentially; the round engine takes
    // over for the incremental re-settles after each churn event, where
    // the surviving overlay is near-equilibrium. An ε-indifference
    // threshold (E10) damps the residual coordination flapping.
    let par_config = SimultaneousConfig {
        parallelism: Some(2),
        max_rounds: 400,
        tolerance: 0.05,
        ..SimultaneousConfig::default()
    };

    let events = if quick { 4 } else { 8 };
    let mut script: Vec<Option<usize>> = vec![None]; // initial settle
    let mut gone: Vec<usize> = Vec::new();
    for k in 0..events {
        // Alternate departures and rejoins over a seeded index stream.
        if k % 2 == 0 || gone.is_empty() {
            let mut pick = ((seed as usize).wrapping_add(3 * k + 1)) % n;
            while gone.contains(&pick) {
                pick = (pick + 1) % n;
            }
            gone.push(pick);
            script.push(Some(pick));
        } else {
            script.push(None);
        }
    }

    let mut t = Table::new(vec![
        "event",
        "alive",
        "seq_steps",
        "seq_moves",
        "rounds_steps",
        "rounds_moves",
        "both_converged",
    ]);
    let mut rejoin_queue: Vec<usize> = Vec::new();
    let (mut seq_converged, mut par_converged) = (0usize, 0usize);
    for (k, ev) in script.iter().enumerate() {
        let label = match ev {
            None if k == 0 => "bootstrap".to_owned(),
            None => {
                let peer = rejoin_queue.remove(0);
                seq_sim.join(peer).expect("scripted rejoin is dead");
                par_sim.join(peer).expect("scripted rejoin is dead");
                format!("join {peer}")
            }
            Some(peer) => {
                seq_sim.leave(*peer).expect("scripted leaver is alive");
                par_sim.leave(*peer).expect("scripted leaver is alive");
                rejoin_queue.push(*peer);
                format!("leave {peer}")
            }
        };
        let seq = seq_sim.settle(&seq_config);
        let par = if k == 0 {
            par_sim.settle(&seq_config)
        } else {
            par_sim.settle_rounds(&par_config)
        };
        seq_converged += usize::from(seq.converged);
        par_converged += usize::from(par.converged);
        t.push_row(vec![
            label,
            seq.alive.len().to_string(),
            seq.steps.to_string(),
            seq.moves.to_string(),
            par.steps.to_string(),
            par.moves.to_string(),
            (seq.converged && par.converged).to_string(),
        ]);
    }
    report.push_table("churn events", &t);

    let seq_stats = seq_sim.session_stats();
    let par_stats = par_sim.session_stats();
    report.push_note(format!(
        "every churn event commits as one batch: {} batches / {} moves \
         (sequential-settle sim), {} / {} (round-settle sim)",
        seq_stats.batch_applies,
        seq_stats.batch_moves,
        par_stats.batch_applies,
        par_stats.batch_moves,
    ));
    report.push_note(format!(
        "events settled: {seq_converged}/{} sequentially, {par_converged}/{} \
         with simultaneous rounds",
        script.len(),
        script.len(),
    ));
    report.push_note(
        "expected shape: sequential settles converge throughout; round-based \
         settles converge after *departures* (the survivors are near \
         equilibrium, so few peers respond and they rarely conflict) but an \
         *arrival* re-triggers the E13 coordination failure — the joiner and \
         the incumbents all react to each other in lockstep and flap. Update \
         timing matters exactly when many peers want to react to the same \
         change.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_quick_produces_expected_columns() {
        let r = exp_fig1_nash(true);
        assert_eq!(r.id, "E1");
        assert_eq!(r.tables.len(), 1);
        let t = &r.tables[0];
        assert_eq!(t.headers.len(), 5);
        assert!(!t.rows.is_empty());
        // Every guaranteed row must verify as Nash.
        for row in &t.rows {
            if row[2] == "true" {
                assert_eq!(row[3], "true", "guaranteed row not Nash: {row:?}");
            }
        }
    }

    #[test]
    fn e2_quick_ratio_column_is_stable() {
        let r = exp_fig1_cost(true);
        let t = &r.tables[0];
        let ratios: Vec<f64> = t
            .rows
            .iter()
            .filter(|row| row[0] == "3.400")
            .map(|row| row[5].parse::<f64>().unwrap())
            .collect();
        assert!(ratios.len() >= 3);
        let lo = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().copied().fold(0.0, f64::max);
        assert!(hi / lo < 4.0, "Θ(αn²) ratios too unstable: {ratios:?}");
    }

    #[test]
    fn e3_quick_poa_grows() {
        let r = exp_fig1_poa(true);
        let t = &r.tables[0];
        // For n = 41, PoA at α = 25 must exceed PoA at α = 3.4.
        let poa = |alpha: &str| -> f64 {
            t.rows
                .iter()
                .find(|row| row[0] == "41" && row[1] == alpha)
                .map(|row| row[4].parse().unwrap())
                .expect("row present")
        };
        assert!(poa("25.000") > poa("3.400"));
    }

    #[test]
    fn e7_quick_everything_converges() {
        let r = exp_convergence(true, 7);
        for row in &r.tables[0].rows {
            assert_eq!(row[4], row[5], "random instances should converge: {row:?}");
        }
    }

    #[test]
    fn e9_quick_regimes() {
        let r = exp_baselines(true);
        let t = &r.tables[0];
        // α → 0: complete wins (stretch-dominated).
        let tiny_alpha = t
            .rows
            .iter()
            .find(|row| row[0] == "64" && row[1] == "0.050")
            .unwrap();
        assert_eq!(tiny_alpha[2], "complete");
        // α = n: a sparse topology wins (maintenance-dominated).
        let big_alpha = t
            .rows
            .iter()
            .find(|row| row[0] == "64" && row[1] == "64.000")
            .unwrap();
        assert_ne!(big_alpha[2], "complete");
        // Around α = √n the √n-hub overlay is within 2x of the best.
        let mid = t
            .rows
            .iter()
            .find(|row| row[0] == "64" && row[1] == "8.000")
            .unwrap();
        let best: f64 = mid[3..]
            .iter()
            .map(|c| c.parse::<f64>().unwrap())
            .fold(f64::INFINITY, f64::min);
        let hub: f64 = mid[7].parse().unwrap();
        assert!(
            hub <= 2.0 * best,
            "hub {hub} not competitive with best {best}"
        );
    }
}
