//! Property tests tying the analysis layers together: the response graph,
//! the exhaustive scanner, and the general-purpose equilibrium machinery
//! must tell one consistent story on random tiny games.

use proptest::prelude::*;
use rand::prelude::*;
use sp_analysis::exhaustive::{exhaustive_nash_scan, ExhaustiveResult};
use sp_analysis::fast::FastGame;
use sp_analysis::resilience::failure_sweep;
use sp_analysis::response_graph::ResponseGraph;
use sp_core::{is_nash, Game, NashTest, StrategyProfile};
use sp_metric::generators;

fn arb_tiny_game() -> impl Strategy<Value = Game> {
    (3usize..=4, 0u64..10_000, 0.3f64..8.0).prop_map(|(n, seed, alpha)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = generators::uniform_square(n, 20.0, &mut rng);
        Game::from_space(&space, alpha).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn response_graph_sinks_match_exhaustive_scan(game in arb_tiny_game()) {
        let rg = ResponseGraph::build(&game, 1e-9).unwrap();
        let scan = exhaustive_nash_scan(&game, 1e-9).unwrap();
        match scan {
            ExhaustiveResult::NoEquilibrium { .. } => {
                prop_assert_eq!(rg.equilibrium_count(), 0);
            }
            ExhaustiveResult::FoundEquilibrium { .. } => {
                prop_assert!(rg.equilibrium_count() > 0);
            }
        }
        // Every sink verifies with the general machinery.
        for profile in rg.equilibria() {
            prop_assert!(is_nash(&game, &profile, &NashTest::exact()).unwrap().is_nash());
        }
    }

    #[test]
    fn response_graph_edges_strictly_reduce_the_movers_cost(game in arb_tiny_game()) {
        let rg = ResponseGraph::build(&game, 1e-9).unwrap();
        let fast = FastGame::new(&game).unwrap();
        // Sample some profiles and verify edge semantics via peer costs.
        for code in (0..rg.profile_count() as u32).step_by(131) {
            let profile = fast.decode(u64::from(code));
            for &next_code in rg.successors(code) {
                let next = fast.decode(u64::from(next_code));
                let mover = (0..game.n())
                    .find(|&i| {
                        profile.strategy(i.into()) != next.strategy(i.into())
                    })
                    .expect("edge changes a peer");
                let before =
                    sp_core::peer_cost(&game, &profile, mover.into()).unwrap();
                let after = sp_core::peer_cost(&game, &next, mover.into()).unwrap();
                prop_assert!(
                    after < before || (before.is_infinite() && after.is_finite()),
                    "edge does not improve mover {mover}: {before} -> {after}"
                );
            }
        }
    }

    #[test]
    fn sink_reachability_is_total_when_acyclic(game in arb_tiny_game()) {
        let rg = ResponseGraph::build(&game, 1e-9).unwrap();
        if !rg.has_best_response_cycle() && rg.equilibrium_count() > 0 {
            // An acyclic finite graph whose sinks are the equilibria:
            // every path must end in a sink.
            prop_assert!(rg.is_weakly_acyclic());
        }
    }

    #[test]
    fn failure_sweep_is_consistent_with_connectivity(game in arb_tiny_game()) {
        // On the complete profile no failure disconnects anything.
        let summary = failure_sweep(&game, &StrategyProfile::complete(game.n())).unwrap();
        prop_assert_eq!(summary.worst_disconnections(), 0);
        prop_assert_eq!(summary.robust_fraction(), 1.0);
        // Stretches of survivors remain exactly 1 (they keep direct links).
        prop_assert!((summary.mean_mean_stretch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_is_nash_matches_reference_on_random_profiles(
        game in arb_tiny_game(),
        mask_seed in 0u64..1_000_000,
    ) {
        let fast = FastGame::new(&game).unwrap();
        let code = mask_seed % fast.profile_count();
        let profile = fast.decode(code);
        let fast_verdict = fast.is_nash(&fast.unpack(code), 1e-9);
        let slow_verdict =
            is_nash(&game, &profile, &NashTest::exact()).unwrap().is_nash();
        prop_assert_eq!(fast_verdict, slow_verdict);
    }
}
