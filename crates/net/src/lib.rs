//! A minimal, dependency-free readiness API over Linux `epoll`.
//!
//! `sp-serve`'s reactor needs exactly four things from the OS: watch
//! many sockets at once ([`Poller::wait`]), change what each is watched
//! for ([`Poller::register`]/[`Poller::modify`]), be woken from another
//! thread when a worker finishes a job ([`WakeHandle::wake`], an
//! `eventfd`), and nothing else. This crate provides those four things
//! behind a safe API and keeps every `unsafe` FFI call inside the
//! private `sys` module, where each call site carries a `SAFETY:`
//! argument.
//!
//! The crate only compiles its substance on Linux; other platforms get
//! the types but every constructor returns [`std::io::ErrorKind::Unsupported`],
//! and `sp-serve` falls back to its thread-per-connection model there.
//!
//! No allocation happens per event: callers pass a reusable event
//! buffer to [`Poller::wait`].

// Confining `unsafe` to `sys` is enforced with `deny` rather than the
// usual workspace `forbid`: `forbid` cannot be overridden by the
// module-level `allow` that `sys` needs for its FFI block. The sp-lint
// `forbid-unsafe` check knows about this exemption.
#![deny(unsafe_code)]

mod sys;

pub use sys::{Event, Interest, Poller, WakeHandle};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_listener_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.is_empty(), "nothing pending before a connect");

        let _client = TcpStream::connect(addr).unwrap();
        poller.wait(&mut events, Some(2_000)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_switches_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (peer, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        // A fresh socket with empty send buffer is immediately writable.
        poller
            .register(stream.as_raw_fd(), 1, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(2_000)).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Switch to read interest: silent until the peer writes.
        poller
            .modify(stream.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.is_empty());
        let mut peer = peer;
        peer.write_all(b"x").unwrap();
        poller.wait(&mut events, Some(2_000)).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
    }

    #[test]
    fn wake_handle_crosses_threads() {
        let poller = Poller::new().unwrap();
        let wake = std::sync::Arc::new(WakeHandle::new().unwrap());
        poller
            .register(wake.raw_fd(), 0, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.is_empty());

        let remote = std::sync::Arc::clone(&wake);
        let handle = std::thread::spawn(move || remote.wake().unwrap());
        poller.wait(&mut events, Some(2_000)).unwrap();
        handle.join().unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);

        // Drain resets the level-triggered readiness.
        wake.drain();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.is_empty());

        // Waking twice then draining once still clears (the counter
        // aggregates), which is exactly the coalescing the reactor
        // counts on.
        wake.wake().unwrap();
        wake.wake().unwrap();
        wake.drain();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.is_empty());
    }
}
