//! The FFI floor: every `unsafe` call in the crate lives here.
//!
//! Only four kernel facilities are touched — `epoll_create1` /
//! `epoll_ctl` / `epoll_wait`, and `eventfd` plus `read`/`write`/
//! `close` on the descriptors this module itself created. The symbols
//! come from libc, which std already links; no external crate is
//! involved.

#![allow(unsafe_code)]

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Readiness for reading (includes peer hang-up).
    pub readable: bool,
    /// Readiness for writing.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Ready for reading (or has pending hang-up/error state that a
    /// read will surface).
    pub readable: bool,
    /// Ready for writing.
    pub writable: bool,
    /// Peer closed or error condition (`EPOLLHUP`/`EPOLLERR`/
    /// `EPOLLRDHUP`).
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod ffi {
    use std::ffi::{c_int, c_uint, c_void};

    /// Mirrors the kernel's `struct epoll_event`. On x86-64 the kernel
    /// ABI packs the struct (no padding between `events` and `data`);
    /// elsewhere natural alignment matches the kernel layout.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0x80000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_NONBLOCK: c_int = 0x800;
    pub const EFD_CLOEXEC: c_int = 0x80000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

#[cfg(target_os = "linux")]
pub use linux::{Poller, WakeHandle};

#[cfg(target_os = "linux")]
mod linux {
    use super::ffi::{
        close, epoll_create1, epoll_ctl, epoll_wait, eventfd, read, write, EpollEvent, EFD_CLOEXEC,
        EFD_NONBLOCK, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP, EPOLL_CLOEXEC,
        EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD,
    };
    use super::{Event, Interest};
    use std::ffi::c_void;
    use std::io;
    use std::os::fd::RawFd;

    /// How many kernel events one `epoll_wait` call can deliver. Spare
    /// readiness is simply re-reported on the next call (level
    /// -triggered), so this bounds stack use, not correctness.
    const WAIT_BATCH: usize = 256;

    fn check(ret: i32) -> io::Result<()> {
        if ret < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// A level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failure.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: no pointers involved; the returned fd is owned by
            // the Poller and closed in Drop.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            check(epfd)?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies the
            // struct before returning. `fd` validity is the caller's
            // contract, and an invalid fd returns EBADF, not UB.
            check(unsafe { epoll_ctl(self.epfd, op, fd, &raw mut ev) })
        }

        /// Starts watching `fd`, delivering `token` with its events.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure (e.g. already registered).
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest (and token) of a registered `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure (e.g. not registered).
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `ctl`; pre-2.6.9 kernels required a non-null
            // event pointer for DEL, so one is always passed.
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &raw mut ev) })
        }

        /// Blocks until readiness (or `timeout_ms`, `None` = forever),
        /// replacing the contents of `events`. Retries on `EINTR`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failure.
        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let n = loop {
                // SAFETY: `raw` is a valid, writable buffer of
                // WAIT_BATCH entries and outlives the call; maxevents
                // matches its length.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        raw.as_mut_ptr(),
                        WAIT_BATCH as i32,
                        timeout_ms.unwrap_or(-1),
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in raw.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let bits = { ev.events };
                let token = { ev.data };
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: fd owned by self, closed exactly once.
            let _ = unsafe { close(self.epfd) };
        }
    }

    /// A cross-thread wakeup for a [`Poller`], backed by an `eventfd`
    /// counter: any number of [`WakeHandle::wake`] calls coalesce into
    /// one readable event until someone [`WakeHandle::drain`]s it.
    #[derive(Debug)]
    pub struct WakeHandle {
        fd: RawFd,
    }

    impl WakeHandle {
        /// Creates the eventfd (nonblocking, close-on-exec).
        ///
        /// # Errors
        ///
        /// Propagates `eventfd` failure.
        pub fn new() -> io::Result<WakeHandle> {
            // SAFETY: no pointers involved; the fd is owned by the
            // handle and closed in Drop.
            let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
            check(fd)?;
            Ok(WakeHandle { fd })
        }

        /// The descriptor to register with the poller (read interest).
        #[must_use]
        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Makes the poller's next (or current) wait return. Safe to
        /// call from any thread, any number of times.
        ///
        /// # Errors
        ///
        /// Propagates a failed `write`; a full counter (`EAGAIN`) is
        /// success — the wake is already pending.
        pub fn wake(&self) -> io::Result<()> {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a valid local to an eventfd
            // owned by self.
            let n = unsafe { write(self.fd, (&raw const one).cast::<c_void>(), 8) };
            if n == 8 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::WouldBlock {
                // Counter saturated: a wake is pending regardless.
                return Ok(());
            }
            Err(err)
        }

        /// Consumes all pending wakes (resets readiness). Failure is
        /// ignored: a spurious extra wakeup is harmless by design.
        pub fn drain(&self) {
            let mut counter: u64 = 0;
            // SAFETY: reads 8 bytes into a valid local from an eventfd
            // owned by self; EAGAIN (nothing pending) is fine.
            let _ = unsafe { read(self.fd, (&raw mut counter).cast::<c_void>(), 8) };
        }
    }

    impl Drop for WakeHandle {
        fn drop(&mut self) {
            // SAFETY: fd owned by self, closed exactly once.
            let _ = unsafe { close(self.fd) };
        }
    }
}

/// Non-Linux stub: constructors report [`io::ErrorKind::Unsupported`]
/// so `sp-serve` can fall back to its threaded connection model.
#[cfg(not(target_os = "linux"))]
mod portable {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux",
        ))
    }

    /// Stub poller; every constructor fails with `Unsupported`.
    #[derive(Debug)]
    pub struct Poller {
        _private: (),
    }

    impl Poller {
        /// Always fails on non-Linux platforms.
        ///
        /// # Errors
        ///
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn register(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn wait(&self, _events: &mut Vec<Event>, _timeout_ms: Option<i32>) -> io::Result<()> {
            unsupported()
        }
    }

    /// Stub wake handle; the constructor fails with `Unsupported`.
    #[derive(Debug)]
    pub struct WakeHandle {
        _private: (),
    }

    impl WakeHandle {
        /// Always fails on non-Linux platforms.
        ///
        /// # Errors
        ///
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn new() -> io::Result<WakeHandle> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        #[must_use]
        pub fn raw_fd(&self) -> RawFd {
            -1
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        ///
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn wake(&self) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }
}

#[cfg(not(target_os = "linux"))]
pub use portable::{Poller, WakeHandle};
