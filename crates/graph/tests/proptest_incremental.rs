//! Property tests for the incremental shortest-path machinery backing
//! `GameSession`'s cache repair: decrease-only re-relaxation must agree
//! with a from-scratch Dijkstra after arbitrary edge additions, and the
//! sharded multi-row sweep must agree with sequential sweeps exactly.

use proptest::prelude::*;
use sp_graph::{CsrGraph, DiGraph, DijkstraScratch, DistanceMatrix};

/// A random digraph as `(n, edges)`; parallel edges are allowed (Dijkstra
/// simply relaxes both).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..=12).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, 0.1f64..10.0), 0..40).prop_map(|edges| {
                edges
                    .into_iter()
                    .filter(|&(u, v, _)| u != v)
                    .collect::<Vec<_>>()
            }),
        )
    })
}

fn build(n: usize, edges: &[(usize, usize, f64)]) -> DiGraph {
    let mut g = DiGraph::new(n);
    for &(u, v, w) in edges {
        g.add_edge(u, v, w);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Seeded decrease-only relaxation after edge additions restores
    /// exactly the distances a fresh Dijkstra computes on the new graph.
    #[test]
    fn relax_decrease_matches_fresh_dijkstra(
        (n, edges) in arb_graph(),
        extra in proptest::collection::vec((0usize..12, 0usize..12, 0.05f64..5.0), 1..8),
        source_raw in 0usize..12
    ) {
        let source = source_raw % n;
        let g_old = build(n, &edges);
        let csr_old = CsrGraph::from_digraph(&g_old);
        let mut dist = csr_old.dijkstra(source);

        let mut g_new = build(n, &edges);
        let mut seeds: Vec<(usize, f64)> = Vec::new();
        for &(u_raw, v_raw, w) in &extra {
            let (u, v) = (u_raw % n, v_raw % n);
            if u == v {
                continue;
            }
            g_new.add_edge(u, v, w);
            // Seed exactly like the session repair does: only additions
            // that improve on the cached row.
            if dist[u].is_finite() && dist[u] + w < dist[v] {
                seeds.push((v, dist[u] + w));
            }
        }
        let csr_new = CsrGraph::from_digraph(&g_new);
        let mut scratch = DijkstraScratch::new();
        csr_new.relax_decrease_into(&mut dist, &seeds, &mut scratch);
        prop_assert_eq!(dist, csr_new.dijkstra(source),
            "incremental repair diverged from a fresh sweep");
    }

    /// The sharded multi-row sweep fills every requested row with exactly
    /// the distances per-row sequential sweeps produce, for any worker
    /// count (including degenerate ones).
    #[test]
    fn parallel_row_sweeps_match_sequential(
        (n, edges) in arb_graph(),
        workers in 0usize..9
    ) {
        let g = build(n, &edges);
        let csr = CsrGraph::from_digraph(&g);
        let mut m = DistanceMatrix::new_filled(n, -1.0);
        let jobs: Vec<(usize, &mut [f64])> = m.rows_mut().enumerate().collect();
        csr.dijkstra_rows_with(jobs, workers);
        for s in 0..n {
            let fresh = csr.dijkstra(s);
            prop_assert_eq!(m.row(s), fresh.as_slice(), "row {}", s);
        }
    }
}
