//! Property-based tests for the graph substrate.
//!
//! Dijkstra (adjacency + CSR) and Floyd–Warshall are independent
//! implementations of shortest paths; they must agree on arbitrary graphs.

use proptest::prelude::*;
use sp_graph::{
    apsp, dijkstra, dijkstra_tree, floyd_warshall, is_strongly_connected, tarjan_scc, CsrGraph,
    DiGraph,
};

/// Strategy: a random digraph with `n ∈ [1, 12]` nodes and random edges with
/// weights in `[0, 100]`.
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (1usize..=12).prop_flat_map(|n| {
        let max_edges = n * n;
        proptest::collection::vec((0..n, 0..n, 0.0f64..100.0), 0..=max_edges.min(40)).prop_map(
            move |edges| {
                let mut g = DiGraph::new(n);
                for (u, v, w) in edges {
                    if u != v {
                        g.add_edge(u, v, w);
                    }
                }
                g
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dijkstra_agrees_with_floyd_warshall(g in arb_graph()) {
        let fw = floyd_warshall(&g);
        let ap = apsp(&g);
        let n = g.node_count();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (ap[(i, j)], fw[(i, j)]);
                prop_assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                    "mismatch at ({}, {}): dijkstra={}, fw={}", i, j, a, b
                );
            }
        }
    }

    #[test]
    fn csr_dijkstra_agrees_with_adjacency(g in arb_graph()) {
        let csr = CsrGraph::from_digraph(&g);
        for s in 0..g.node_count() {
            let a = dijkstra(&g, s);
            let b = csr.dijkstra(s);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(
                    (x.is_infinite() && y.is_infinite()) || (x - y).abs() <= 1e-9,
                );
            }
        }
    }

    #[test]
    fn triangle_inequality_of_shortest_paths(g in arb_graph()) {
        // d(i,k) <= d(i,j) + d(j,k) always holds for shortest-path distances.
        let d = apsp(&g);
        let n = g.node_count();
        for i in 0..n {
            for j in 0..n {
                if d[(i, j)].is_infinite() { continue; }
                for k in 0..n {
                    if d[(j, k)].is_infinite() { continue; }
                    prop_assert!(d[(i, k)] <= d[(i, j)] + d[(j, k)] + 1e-6);
                }
            }
        }
    }

    #[test]
    fn tree_paths_have_consistent_lengths(g in arb_graph()) {
        // Walking the predecessor chain must sum (via min-weight parallel
        // edges) to exactly the reported distance.
        for s in 0..g.node_count() {
            let t = dijkstra_tree(&g, s);
            for v in 0..g.node_count() {
                if let Some(path) = t.path_to(v) {
                    prop_assert_eq!(path[0], s);
                    prop_assert_eq!(*path.last().unwrap(), v);
                    let mut len = 0.0;
                    for w in path.windows(2) {
                        len += g.edge_weight(w[0], w[1]).expect("path edge must exist");
                    }
                    prop_assert!((len - t.distance(v)).abs() <= 1e-6);
                }
            }
        }
    }

    #[test]
    fn scc_partitions_nodes(g in arb_graph()) {
        let sccs = tarjan_scc(&g);
        let n = g.node_count();
        let mut seen = vec![0usize; n];
        for comp in &sccs {
            prop_assert!(!comp.is_empty());
            for &v in comp {
                seen[v] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "every node in exactly one SCC");
    }

    #[test]
    fn scc_members_mutually_reachable(g in arb_graph()) {
        let d = apsp(&g);
        for comp in tarjan_scc(&g) {
            for &u in &comp {
                for &v in &comp {
                    prop_assert!(d[(u, v)].is_finite(), "{} cannot reach {} inside an SCC", u, v);
                }
            }
        }
    }

    #[test]
    fn strong_connectivity_iff_single_scc(g in arb_graph()) {
        let single = tarjan_scc(&g).len() == 1;
        prop_assert_eq!(single, is_strongly_connected(&g));
    }

    #[test]
    fn reversal_preserves_distance_transposed(g in arb_graph()) {
        let d = apsp(&g);
        let dr = apsp(&g.reversed());
        let n = g.node_count();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (d[(i, j)], dr[(j, i)]);
                prop_assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() <= 1e-9,
                );
            }
        }
    }
}
