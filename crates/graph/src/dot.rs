//! Graphviz DOT export for visualising overlay topologies.
//!
//! # Example
//!
//! ```
//! use sp_graph::{builders, dot};
//!
//! let g = builders::cycle_graph(3, |_, _| 1.5);
//! let text = dot::to_dot(&g, &dot::DotOptions::default());
//! assert!(text.starts_with("digraph"));
//! assert!(text.contains("0 -> 1"));
//! ```

use std::fmt::Write as _;

use crate::DiGraph;

/// Rendering options for [`to_dot`].
#[derive(Debug, Clone, PartialEq)]
pub struct DotOptions {
    /// Graph name after the `digraph` keyword.
    pub name: String,
    /// Emit edge weights as labels (3 decimals).
    pub edge_labels: bool,
    /// Optional node labels (defaults to the node index).
    pub node_labels: Option<Vec<String>>,
    /// Optional `pos="x,y!"` pinned positions (e.g. metric coordinates).
    pub positions: Option<Vec<(f64, f64)>>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "overlay".to_owned(),
            edge_labels: true,
            node_labels: None,
            positions: None,
        }
    }
}

/// Renders a digraph as Graphviz DOT text.
///
/// # Panics
///
/// Panics if `node_labels` or `positions` are provided with a length
/// different from the node count.
#[must_use]
pub fn to_dot(g: &DiGraph, options: &DotOptions) -> String {
    let n = g.node_count();
    if let Some(labels) = &options.node_labels {
        assert_eq!(labels.len(), n, "one label per node required");
    }
    if let Some(pos) = &options.positions {
        assert_eq!(pos.len(), n, "one position per node required");
    }
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&options.name));
    let _ = writeln!(out, "    node [shape=circle];");
    for v in 0..n {
        let mut attrs: Vec<String> = Vec::new();
        if let Some(labels) = &options.node_labels {
            attrs.push(format!("label=\"{}\"", escape(&labels[v])));
        }
        if let Some(pos) = &options.positions {
            attrs.push(format!("pos=\"{},{}!\"", pos[v].0, pos[v].1));
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "    {v};");
        } else {
            let _ = writeln!(out, "    {v} [{}];", attrs.join(", "));
        }
    }
    for (u, v, w) in g.edges() {
        if options.edge_labels {
            let _ = writeln!(out, "    {u} -> {v} [label=\"{w:.3}\"];");
        } else {
            let _ = writeln!(out, "    {u} -> {v};");
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_numeric()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn basic_structure() {
        let g = builders::path_graph(3, |_, _| 2.0);
        let text = to_dot(&g, &DotOptions::default());
        assert!(text.starts_with("digraph overlay {"));
        assert!(text.contains("0 -> 1 [label=\"2.000\"];"));
        assert!(text.contains("1 -> 2"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_and_positions() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        let options = DotOptions {
            edge_labels: false,
            node_labels: Some(vec!["π0".to_owned(), "π\"1\"".to_owned()]),
            positions: Some(vec![(0.0, 0.0), (1.5, 2.0)]),
            ..DotOptions::default()
        };
        let text = to_dot(&g, &options);
        assert!(text.contains("label=\"π0\""));
        assert!(text.contains("label=\"π\\\"1\\\"\""));
        assert!(text.contains("pos=\"1.5,2!\""));
        assert!(text.contains("0 -> 1;"));
        assert!(!text.contains("label=\"1.000\""));
    }

    #[test]
    fn name_sanitisation() {
        let g = DiGraph::new(0);
        let options = DotOptions {
            name: "9 bad name!".to_owned(),
            ..DotOptions::default()
        };
        let text = to_dot(&g, &options);
        assert!(text.starts_with("digraph g_9_bad_name_ {"));
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn label_count_checked() {
        let g = DiGraph::new(2);
        let options = DotOptions {
            node_labels: Some(vec!["x".to_owned()]),
            ..DotOptions::default()
        };
        let _ = to_dot(&g, &options);
    }
}
