use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::DiGraph;

/// Min-heap entry; ordering is reversed so `BinaryHeap` pops the smallest
/// distance first. Weights are validated finite at insertion, so `total_cmp`
/// gives a total order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest path distances from `source` to every node.
///
/// Unreachable nodes get `f64::INFINITY`; `dist[source] == 0.0`.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Example
///
/// ```
/// use sp_graph::{DiGraph, dijkstra};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 4.0);
/// g.add_edge(1, 2, 4.0);
/// g.add_edge(0, 2, 10.0);
/// assert_eq!(dijkstra(&g, 0), vec![0.0, 4.0, 8.0]);
/// ```
#[must_use]
pub fn dijkstra(g: &DiGraph, source: usize) -> Vec<f64> {
    dijkstra_impl(g, source, None).0
}

/// Shortest path distances from `source`, stopping as soon as every node in
/// `targets` has been settled.
///
/// Entries for unsettled nodes are `f64::INFINITY`, which for non-target
/// nodes does **not** imply unreachability — only that the search stopped
/// early. All entries for `targets` are exact.
///
/// # Panics
///
/// Panics if `source` or any target is out of bounds.
///
/// # Example
///
/// ```
/// use sp_graph::{builders, dijkstra_targets};
///
/// let g = builders::bidirectional_path_graph(100, |_, _| 1.0);
/// let d = dijkstra_targets(&g, 0, &[3]);
/// assert_eq!(d[3], 3.0);
/// ```
#[must_use]
pub fn dijkstra_targets(g: &DiGraph, source: usize, targets: &[usize]) -> Vec<f64> {
    for &t in targets {
        assert!(t < g.node_count(), "target {t} out of bounds");
    }
    dijkstra_impl(g, source, Some(targets)).0
}

/// A shortest-path tree rooted at a source node, with predecessor links for
/// path reconstruction.
///
/// Produced by [`dijkstra_tree`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPathTree {
    source: usize,
    dist: Vec<f64>,
    pred: Vec<Option<usize>>,
}

impl ShortestPathTree {
    /// The root of the tree.
    #[must_use]
    pub fn source(&self) -> usize {
        self.source
    }

    /// Distance from the source to `node` (`f64::INFINITY` if unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn distance(&self, node: usize) -> f64 {
        self.dist[node]
    }

    /// All distances, indexed by node.
    #[must_use]
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Predecessor of `node` on its shortest path from the source, `None`
    /// for the source itself and for unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn predecessor(&self, node: usize) -> Option<usize> {
        self.pred[node]
    }

    /// The shortest path from the source to `node` (inclusive), or `None`
    /// if `node` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn path_to(&self, node: usize) -> Option<Vec<usize>> {
        if self.dist[node].is_infinite() {
            return None;
        }
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.pred[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Number of edges on the shortest path to `node`, or `None` if
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn hop_count(&self, node: usize) -> Option<usize> {
        self.path_to(node).map(|p| p.len() - 1)
    }
}

/// Runs Dijkstra from `source` and returns the full [`ShortestPathTree`]
/// including predecessor links.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Example
///
/// ```
/// use sp_graph::{DiGraph, dijkstra_tree};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// let t = dijkstra_tree(&g, 0);
/// assert_eq!(t.path_to(2), Some(vec![0, 1, 2]));
/// assert_eq!(t.hop_count(2), Some(2));
/// ```
#[must_use]
pub fn dijkstra_tree(g: &DiGraph, source: usize) -> ShortestPathTree {
    let (dist, pred) = dijkstra_impl(g, source, None);
    ShortestPathTree { source, dist, pred }
}

fn dijkstra_impl(
    g: &DiGraph,
    source: usize,
    targets: Option<&[usize]>,
) -> (Vec<f64>, Vec<Option<usize>>) {
    let n = g.node_count();
    assert!(source < n, "source {source} out of bounds for {n} nodes");
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut remaining = targets.map(|t| {
        let mut want = vec![false; n];
        let mut count = 0usize;
        for &x in t {
            if !want[x] {
                want[x] = true;
                count += 1;
            }
        }
        (want, count)
    });

    let mut heap = BinaryHeap::with_capacity(n);
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if settled[u] {
            continue;
        }
        settled[u] = true;
        if let Some((ref want, ref mut count)) = remaining {
            if want[u] {
                *count -= 1;
                if *count == 0 {
                    break;
                }
            }
        }
        for e in g.out_edges(u) {
            let nd = d + e.weight;
            // sp-lint: allow(float-eps, reason = "Dijkstra relaxation: exact strict improvement is the termination criterion; an eps band would cycle")
            if nd < dist[e.to] {
                dist[e.to] = nd;
                pred[e.to] = Some(u);
                heap.push(HeapEntry {
                    dist: nd,
                    node: e.to,
                });
            }
        }
    }
    (dist, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn source_distance_is_zero() {
        let g = builders::cycle_graph(4, |_, _| 1.0);
        let d = dijkstra(&g, 2);
        assert_eq!(d[2], 0.0);
    }

    #[test]
    fn prefers_indirect_cheaper_route() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 3, 10.0);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 2.0);
        assert_eq!(dijkstra(&g, 0)[3], 6.0);
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut g = DiGraph::new(3);
        g.add_edge(1, 2, 1.0);
        let d = dijkstra(&g, 0);
        assert!(d[1].is_infinite());
        assert!(d[2].is_infinite());
    }

    #[test]
    fn respects_edge_directions() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        assert!(dijkstra(&g, 1)[0].is_infinite());
    }

    #[test]
    fn handles_zero_weight_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 0.0);
        assert_eq!(dijkstra(&g, 0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn tree_reconstructs_paths() {
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(0, 3, 10.0);
        let t = dijkstra_tree(&g, 0);
        assert_eq!(t.source(), 0);
        assert_eq!(t.path_to(3), Some(vec![0, 1, 2, 3]));
        assert_eq!(t.hop_count(3), Some(3));
        assert_eq!(t.path_to(4), None);
        assert_eq!(t.hop_count(4), None);
        assert_eq!(t.predecessor(0), None);
        assert_eq!(t.path_to(0), Some(vec![0]));
    }

    #[test]
    fn targets_early_exit_is_exact_for_targets() {
        let g = builders::bidirectional_path_graph(50, |_, _| 1.0);
        let d = dijkstra_targets(&g, 0, &[5, 7]);
        assert_eq!(d[5], 5.0);
        assert_eq!(d[7], 7.0);
        // Far nodes may legitimately be unsettled (INFINITY).
        let full = dijkstra(&g, 0);
        assert_eq!(full[49], 49.0);
    }

    #[test]
    fn duplicate_targets_are_fine() {
        let g = builders::cycle_graph(5, |_, _| 2.0);
        let d = dijkstra_targets(&g, 0, &[3, 3, 3]);
        assert_eq!(d[3], 6.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn panics_on_bad_source() {
        let _ = dijkstra(&DiGraph::new(2), 2);
    }

    #[test]
    fn parallel_edges_use_lightest() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 9.0);
        g.add_edge(0, 1, 4.0);
        assert_eq!(dijkstra(&g, 0)[1], 4.0);
    }

    #[test]
    fn heap_entry_ordering_is_min_first() {
        let mut h = BinaryHeap::new();
        h.push(HeapEntry { dist: 2.0, node: 0 });
        h.push(HeapEntry { dist: 1.0, node: 1 });
        h.push(HeapEntry { dist: 3.0, node: 2 });
        assert_eq!(h.pop().unwrap().node, 1);
        assert_eq!(h.pop().unwrap().node, 0);
        assert_eq!(h.pop().unwrap().node, 2);
    }
}
