//! Sparse distance machinery: bounded-radius Dijkstra, landmark
//! selection, and landmark (hub) distance sketches.
//!
//! These are the graph-layer building blocks of the sparse evaluation
//! backend: instead of materialising the `n × n` overlay distance
//! matrix, a session holds `O(n · L)` landmark rows plus transient
//! bounded sweeps, and answers far-distance queries with **certified**
//! upper/lower bounds:
//!
//! * [`BoundedDijkstra::sweep`] settles at most `cap` nodes from a
//!   source and reports whether the sweep provably exhausted the
//!   reachable set — a completed sweep *is* the exact distance row;
//! * [`farthest_point_landmarks`] picks landmark nodes by deterministic
//!   farthest-point traversal of an arbitrary distance oracle;
//! * [`LandmarkSketch`] holds forward rows `d(ℓ, ·)` and backward rows
//!   `d(·, ℓ)` for every landmark `ℓ` and derives the triangle bounds
//!   `d(u, v) ≤ min_ℓ d(u, ℓ) + d(ℓ, v)` and
//!   `d(u, v) ≥ max_ℓ max(d(ℓ, v) − d(ℓ, u), d(u, ℓ) − d(v, ℓ))`.
//!
//! Sketch rows are repaired after edge changes through the **same**
//! invalidation discipline as the dense oracle cache: the
//! [`edge_on_path`] tightness test decides whether a removed edge could
//! lie on a shortest path served by a row (if so the row is recomputed),
//! and added edges are folded in by decrease-only re-relaxation.

use crate::csr::Entry;
use crate::{CsrGraph, DijkstraScratch};
use std::collections::BinaryHeap;

/// The shared edge-on-shortest-path tightness test.
///
/// Given a distance row `d(s, ·)`, a removed edge `u → v` of weight `w`
/// can only have carried shortest paths counted by that row if
/// `d(s, u) + w ≤ d(s, v)` up to a relative `eps` band (the band absorbs
/// float associativity in path sums; `eps` is the caller's invalidation
/// epsilon, `1e-9` throughout this workspace). Every cached-row layer —
/// the dense oracle cache's overlay and residual tiers and the sparse
/// landmark sketch — routes its invalidation decision through this one
/// predicate, so the two backends cannot drift apart.
#[inline]
#[must_use]
pub fn edge_on_path(d_u: f64, w: f64, d_v: f64, eps: f64) -> bool {
    d_u.is_finite() && d_u + w <= d_v + eps * (1.0 + d_v.abs())
}

/// Result of a bounded single-source sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedSweep {
    /// Settled `(node, distance)` pairs in settling order (nondecreasing
    /// distance). Distances are exact graph distances — Dijkstra settles
    /// nodes in final order, so a cap truncates coverage, never
    /// correctness.
    pub settled: Vec<(usize, f64)>,
    /// `true` when the sweep provably settled **every** node reachable
    /// from the source — the settled set then *is* the exact full row
    /// (unlisted nodes are at distance `∞`). This is the completeness
    /// certificate the sparse backend uses to fall back to exact
    /// decisions.
    pub complete: bool,
}

impl BoundedSweep {
    /// The exact distance to `node`, or `None` when the sweep was cut
    /// off before reaching it (linear scan; settled sets are small by
    /// construction).
    #[must_use]
    pub fn distance(&self, node: usize) -> Option<f64> {
        self.settled
            .iter()
            .find(|&&(u, _)| u == node)
            .map(|&(_, d)| d)
    }
}

/// Reusable state for bounded-radius sweeps.
///
/// Keeps an `n`-sized distance buffer that is **all-`∞` between calls**
/// (only entries touched by a sweep are reset afterwards), so a bounded
/// sweep costs `O(touched · log touched)` regardless of `n`. Do not
/// share this buffer with full-row sweeps — the invariant is what makes
/// back-to-back bounded sweeps cheap.
#[derive(Debug, Clone, Default)]
pub struct BoundedDijkstra {
    row: Vec<f64>,
    heap: BinaryHeap<Entry>,
    touched: Vec<usize>,
}

impl BoundedDijkstra {
    /// Creates empty state; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        BoundedDijkstra::default()
    }

    /// Settles up to `cap` nodes from `source` (the source itself
    /// counts).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    pub fn sweep(&mut self, g: &CsrGraph, source: usize, cap: usize) -> BoundedSweep {
        self.sweep_with_source_links(g, source, None, cap)
    }

    /// Like [`BoundedDijkstra::sweep`], but the source's out-edges are
    /// taken from `links` instead of the graph when `links` is `Some`.
    ///
    /// This evaluates a *candidate strategy* for a peer without
    /// rebuilding the overlay: shortest paths from `source` never
    /// revisit `source` (weights are non-negative), so overriding only
    /// its own out-edges yields exact distances in the hypothetical
    /// overlay where `source` plays `links`.
    ///
    /// # Panics
    ///
    /// Panics if `source` or a link target is out of bounds.
    pub fn sweep_with_source_links(
        &mut self,
        g: &CsrGraph,
        source: usize,
        links: Option<&[(usize, f64)]>,
        cap: usize,
    ) -> BoundedSweep {
        let n = g.node_count();
        assert!(source < n, "source {source} out of bounds for {n} nodes");
        if self.row.len() != n {
            self.row.clear();
            self.row.resize(n, f64::INFINITY);
        }
        self.heap.clear();
        self.touched.clear();
        self.row[source] = 0.0;
        self.touched.push(source);
        self.heap.push(Entry {
            dist: 0.0,
            node: source,
        });
        let mut settled = Vec::with_capacity(cap.min(n));
        let mut complete = true;
        while let Some(Entry { dist: d, node: u }) = self.heap.pop() {
            // Stale-heap-entry skip: compares a value against an exact
            // copy of itself, never a recomputation.
            if d > self.row[u] {
                continue;
            }
            if settled.len() >= cap {
                // A non-stale entry remains: reachable nodes were cut off.
                complete = false;
                break;
            }
            settled.push((u, d));
            let (ts, ws): (&[usize], &[f64]) = if u == source {
                match links {
                    Some(ls) => {
                        for &(v, w) in ls {
                            assert!(v < n, "link target {v} out of bounds for {n} nodes");
                            self.relax(v, d + w);
                        }
                        (&[], &[])
                    }
                    None => g.out_neighbors(u),
                }
            } else {
                g.out_neighbors(u)
            };
            for (&v, &w) in ts.iter().zip(ws) {
                self.relax(v, d + w);
            }
        }
        for &u in &self.touched {
            self.row[u] = f64::INFINITY;
        }
        BoundedSweep { settled, complete }
    }

    #[inline]
    fn relax(&mut self, v: usize, nd: f64) {
        // Dijkstra relaxation: exact strict improvement is the
        // termination criterion; an eps band would cycle.
        if nd < self.row[v] {
            if self.row[v].is_infinite() {
                self.touched.push(v);
            }
            self.row[v] = nd;
            self.heap.push(Entry { dist: nd, node: v });
        }
    }
}

/// Deterministic farthest-point landmark selection over an arbitrary
/// distance oracle (typically the underlying *metric*, which is total —
/// overlay distances may be `∞` early in a run).
///
/// Starts from node `0`, then greedily adds the node maximising the
/// minimum distance to the chosen set, breaking ties toward the lowest
/// index ([`f64::total_cmp`] ordering, so the selection is bitwise
/// reproducible). Returns `k.min(n)` landmarks in selection order.
#[must_use]
pub fn farthest_point_landmarks<D: Fn(usize, usize) -> f64>(
    n: usize,
    k: usize,
    dist: D,
) -> Vec<usize> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut chosen = Vec::with_capacity(k);
    chosen.push(0);
    let mut min_dist: Vec<f64> = (0..n).map(|v| dist(0, v)).collect();
    while chosen.len() < k {
        let mut best = 0usize;
        let mut best_d = f64::NEG_INFINITY;
        for v in 0..n {
            if min_dist[v].total_cmp(&best_d).is_gt() {
                best_d = min_dist[v];
                best = v;
            }
        }
        chosen.push(best);
        for v in 0..n {
            let d = dist(best, v);
            if d.total_cmp(&min_dist[v]).is_lt() {
                min_dist[v] = d;
            }
        }
    }
    chosen
}

/// Counters from one sketch repair pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchRepair {
    /// Rows recomputed from scratch because a removed edge passed the
    /// [`edge_on_path`] tightness test against them.
    pub rows_rebuilt: usize,
    /// Rows kept and patched by decrease-only relaxation.
    pub rows_preserved: usize,
}

/// Landmark (hub) distance sketch over a directed overlay.
///
/// For `L` landmarks the sketch stores `2 L` full rows — forward
/// `d(ℓ, ·)` swept on the overlay and backward `d(·, ℓ)` swept on its
/// transpose — for `O(n · L)` memory total. Triangle inequality on
/// *graph* distances gives, for any pair `(u, v)`:
///
/// * upper bound: `d(u, v) ≤ d(u, ℓ) + d(ℓ, v)` for every `ℓ`;
/// * lower bounds: `d(u, v) ≥ d(ℓ, v) − d(ℓ, u)` and
///   `d(u, v) ≥ d(u, ℓ) − d(v, ℓ)`.
///
/// All bounds are certified (never NaN, `∞` handled conservatively);
/// callers combine them with metric lower bounds where available.
#[derive(Debug, Clone, PartialEq)]
pub struct LandmarkSketch {
    landmarks: Vec<usize>,
    /// `fwd[k][v] = d(landmarks[k], v)` on the overlay.
    fwd: Vec<Vec<f64>>,
    /// `bwd[k][v] = d(v, landmarks[k])` on the overlay.
    bwd: Vec<Vec<f64>>,
}

impl LandmarkSketch {
    /// Builds the sketch by sweeping every landmark forward on `csr` and
    /// backward on `transpose` (which must be `csr.transpose()`).
    ///
    /// # Panics
    ///
    /// Panics if a landmark is out of bounds or the transpose's node
    /// count differs.
    #[must_use]
    pub fn build(
        csr: &CsrGraph,
        transpose: &CsrGraph,
        landmarks: Vec<usize>,
        scratch: &mut DijkstraScratch,
    ) -> Self {
        let n = csr.node_count();
        assert_eq!(transpose.node_count(), n, "transpose node count mismatch");
        let mut fwd = Vec::with_capacity(landmarks.len());
        let mut bwd = Vec::with_capacity(landmarks.len());
        for &l in &landmarks {
            let mut f = vec![f64::INFINITY; n];
            csr.dijkstra_into_with(l, &mut f, scratch);
            fwd.push(f);
            let mut b = vec![f64::INFINITY; n];
            transpose.dijkstra_into_with(l, &mut b, scratch);
            bwd.push(b);
        }
        LandmarkSketch {
            landmarks,
            fwd,
            bwd,
        }
    }

    /// The landmark node ids, in selection order.
    #[must_use]
    pub fn landmarks(&self) -> &[usize] {
        &self.landmarks
    }

    /// Certified upper bound on `d(u, v)`: the cheapest landmark detour
    /// `min_ℓ d(u, ℓ) + d(ℓ, v)` (`∞` when no landmark connects them).
    #[must_use]
    pub fn upper(&self, u: usize, v: usize) -> f64 {
        let mut best = f64::INFINITY;
        for k in 0..self.landmarks.len() {
            let via = self.bwd[k][u] + self.fwd[k][v];
            if via < best {
                best = via;
            }
        }
        best
    }

    /// Certified lower bound on `d(u, v)` from the landmark rows alone
    /// (callers take the max with metric lower bounds). Returns `∞` when
    /// some landmark *proves* `v` unreachable from `u` — e.g. `d(ℓ, v)`
    /// infinite while `d(ℓ, u)` is finite — and `0` when no landmark
    /// separates the pair.
    #[must_use]
    pub fn lower(&self, u: usize, v: usize) -> f64 {
        let mut best = 0.0f64;
        for k in 0..self.landmarks.len() {
            let (fu, fv) = (self.fwd[k][u], self.fwd[k][v]);
            // d(ℓ, v) ≤ d(ℓ, u) + d(u, v): an infinite d(ℓ, v) with a
            // finite d(ℓ, u) certifies d(u, v) = ∞.
            if fv.is_infinite() && fu.is_finite() {
                return f64::INFINITY;
            }
            if fv.is_finite() && fu.is_finite() && fv - fu > best {
                best = fv - fu;
            }
            let (bu, bv) = (self.bwd[k][u], self.bwd[k][v]);
            // d(u, ℓ) ≤ d(u, v) + d(v, ℓ): an infinite d(u, ℓ) with a
            // finite d(v, ℓ) certifies d(u, v) = ∞.
            if bu.is_infinite() && bv.is_finite() {
                return f64::INFINITY;
            }
            if bu.is_finite() && bv.is_finite() && bu - bv > best {
                best = bu - bv;
            }
        }
        best
    }

    /// Repairs every row after an overlay edit, through the shared
    /// [`edge_on_path`] invalidation discipline: a row a removed edge
    /// tests tight against is recomputed in full (the conservative exact
    /// choice — removals can only increase distances, which decrease-only
    /// relaxation cannot express); surviving rows fold added edges in by
    /// decrease-only relaxation. `csr`/`transpose` are the post-edit
    /// overlay; `added`/`removed` are `(from, to, weight)` edge diffs.
    pub fn repair_after_edges(
        &mut self,
        csr: &CsrGraph,
        transpose: &CsrGraph,
        added: &[(usize, usize, f64)],
        removed: &[(usize, usize, f64)],
        eps: f64,
        scratch: &mut DijkstraScratch,
    ) -> SketchRepair {
        let mut counts = SketchRepair::default();
        for k in 0..self.landmarks.len() {
            let l = self.landmarks[k];
            // Forward row: distances from l; a removed u → v matters if
            // it was tight on some shortest path from l.
            let row = &mut self.fwd[k];
            if removed
                .iter()
                .any(|&(u, v, w)| edge_on_path(row[u], w, row[v], eps))
            {
                csr.dijkstra_into_with(l, row, scratch);
                counts.rows_rebuilt += 1;
            } else {
                let seeds: Vec<(usize, f64)> = added
                    .iter()
                    .filter(|&&(u, _, _)| row[u].is_finite())
                    .map(|&(u, v, w)| (v, row[u] + w))
                    .collect();
                if !seeds.is_empty() {
                    csr.relax_decrease_into(row, &seeds, scratch);
                }
                counts.rows_preserved += 1;
            }
            // Backward row: distances to l, i.e. forward distances from l
            // in the transpose, where the removed edge runs v → u.
            let row = &mut self.bwd[k];
            if removed
                .iter()
                .any(|&(u, v, w)| edge_on_path(row[v], w, row[u], eps))
            {
                transpose.dijkstra_into_with(l, row, scratch);
                counts.rows_rebuilt += 1;
            } else {
                let seeds: Vec<(usize, f64)> = added
                    .iter()
                    .filter(|&&(_, v, _)| row[v].is_finite())
                    .map(|&(u, v, w)| (u, row[v] + w))
                    .collect();
                if !seeds.is_empty() {
                    transpose.relax_decrease_into(row, &seeds, scratch);
                }
                counts.rows_preserved += 1;
            }
        }
        counts
    }

    /// Bytes held by the sketch rows and landmark table.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let rows: usize = self
            .fwd
            .iter()
            .chain(self.bwd.iter())
            .map(|r| r.len() * std::mem::size_of::<f64>())
            .sum();
        rows + self.landmarks.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, DiGraph};

    fn ring(n: usize) -> CsrGraph {
        CsrGraph::from_digraph(&builders::cycle_graph(n, |_, _| 1.0))
    }

    #[test]
    fn bounded_sweep_is_exact_prefix_of_full_sweep() {
        let csr = ring(10);
        let full = csr.dijkstra(3);
        let mut bd = BoundedDijkstra::new();
        let sweep = bd.sweep(&csr, 3, 4);
        assert_eq!(sweep.settled.len(), 4);
        assert!(!sweep.complete);
        for &(u, d) in &sweep.settled {
            assert_eq!(d, full[u], "node {u}");
        }
        // Settling order is nondecreasing in distance.
        for pair in sweep.settled.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn completed_sweep_certifies_the_full_row() {
        let csr = ring(6);
        let mut bd = BoundedDijkstra::new();
        let sweep = bd.sweep(&csr, 0, 6);
        assert!(sweep.complete, "cap equal to n must complete on a ring");
        assert_eq!(sweep.settled.len(), 6);
        let over = bd.sweep(&csr, 0, 100);
        assert!(over.complete);
        assert_eq!(over.settled, sweep.settled);
    }

    #[test]
    fn cap_exactly_at_reachable_count_is_complete() {
        // 0 → 1 → 2, node 3 isolated: 3 reachable nodes from 0.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut bd = BoundedDijkstra::new();
        let sweep = bd.sweep(&csr, 0, 3);
        assert!(sweep.complete, "heap exhausts exactly at the cap");
        assert_eq!(sweep.settled, vec![(0, 0.0), (1, 1.0), (2, 2.0)]);
        assert_eq!(sweep.distance(3), None);
        let cut = bd.sweep(&csr, 0, 2);
        assert!(!cut.complete);
    }

    #[test]
    fn back_to_back_sweeps_share_state_correctly() {
        let csr = ring(12);
        let mut bd = BoundedDijkstra::new();
        for s in 0..12 {
            let sweep = bd.sweep(&csr, s, 5);
            let full = csr.dijkstra(s);
            for &(u, d) in &sweep.settled {
                assert_eq!(d, full[u], "source {s}, node {u}");
            }
        }
    }

    #[test]
    fn source_link_override_evaluates_candidate_strategies() {
        // Ring 0→1→2→3→0; evaluate source 0 playing a single long link
        // to 2 instead of its graph edge to 1.
        let csr = ring(4);
        let mut bd = BoundedDijkstra::new();
        let sweep = bd.sweep_with_source_links(&csr, 0, Some(&[(2, 0.5)]), 4);
        assert!(sweep.complete);
        assert_eq!(sweep.distance(2), Some(0.5));
        assert_eq!(sweep.distance(3), Some(1.5));
        assert_eq!(sweep.distance(1), None, "1 is unreachable without 0→1");
        // Empty override: only the source settles.
        let lonely = bd.sweep_with_source_links(&csr, 0, Some(&[]), 4);
        assert!(lonely.complete);
        assert_eq!(lonely.settled, vec![(0, 0.0)]);
    }

    #[test]
    fn farthest_point_selection_is_deterministic_and_spread() {
        let pos = [0.0f64, 1.0, 2.0, 10.0, 11.0, 20.0];
        let d = |i: usize, j: usize| (pos[i] - pos[j]).abs();
        let lm = farthest_point_landmarks(6, 3, d);
        assert_eq!(lm, vec![0, 5, 3]);
        assert_eq!(farthest_point_landmarks(6, 3, d), lm);
        assert_eq!(farthest_point_landmarks(3, 10, d).len(), 3, "k clamps");
        assert!(farthest_point_landmarks(0, 2, d).is_empty());
    }

    fn grid_csr() -> CsrGraph {
        let mut g = DiGraph::new(9);
        // 3×3 grid, bidirectional unit edges.
        for r in 0..3usize {
            for c in 0..3usize {
                let u = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(u, u + 1, 1.0);
                    g.add_edge(u + 1, u, 1.0);
                }
                if r + 1 < 3 {
                    g.add_edge(u, u + 3, 1.0);
                    g.add_edge(u + 3, u, 1.0);
                }
            }
        }
        CsrGraph::from_digraph(&g)
    }

    #[test]
    fn sketch_bounds_bracket_exact_distances() {
        let csr = grid_csr();
        let t = csr.transpose();
        let mut scratch = DijkstraScratch::new();
        let sketch = LandmarkSketch::build(&csr, &t, vec![0, 8, 4], &mut scratch);
        for u in 0..9 {
            let exact = csr.dijkstra(u);
            for v in 0..9 {
                let lo = sketch.lower(u, v);
                let hi = sketch.upper(u, v);
                assert!(
                    lo <= exact[v] && exact[v] <= hi,
                    "({u},{v}): {lo} ≤ {} ≤ {hi}",
                    exact[v]
                );
            }
        }
        // A landmark pair is tight: u = landmark means upper is exact.
        assert_eq!(sketch.upper(0, 8), csr.dijkstra(0)[8]);
    }

    #[test]
    fn sketch_lower_detects_unreachability() {
        // 0 → 1, 2 isolated; landmark 0 reaches 1 but not 2.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let t = csr.transpose();
        let mut scratch = DijkstraScratch::new();
        let sketch = LandmarkSketch::build(&csr, &t, vec![0], &mut scratch);
        assert_eq!(sketch.lower(1, 2), f64::INFINITY);
        assert_eq!(sketch.upper(0, 2), f64::INFINITY);
    }

    #[test]
    fn sketch_repair_matches_rebuild() {
        // Start from the grid, remove one edge and add a shortcut; the
        // repaired sketch must equal a from-scratch build on the new
        // overlay.
        let mut g = DiGraph::new(9);
        let mut edges = Vec::new();
        for r in 0..3usize {
            for c in 0..3usize {
                let u = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((u, u + 1, 1.0));
                    edges.push((u + 1, u, 1.0));
                }
                if r + 1 < 3 {
                    edges.push((u, u + 3, 1.0));
                    edges.push((u + 3, u, 1.0));
                }
            }
        }
        for &(u, v, w) in &edges {
            g.add_edge(u, v, w);
        }
        let csr0 = CsrGraph::from_digraph(&g);
        let mut scratch = DijkstraScratch::new();
        let mut sketch = LandmarkSketch::build(&csr0, &csr0.transpose(), vec![0, 8], &mut scratch);

        let removed = [(0usize, 1usize, 1.0f64)];
        let added = [(0usize, 5usize, 0.5f64)];
        let mut g2 = DiGraph::new(9);
        for &(u, v, w) in edges.iter().filter(|&&e| e != removed[0]) {
            g2.add_edge(u, v, w);
        }
        g2.add_edge(added[0].0, added[0].1, added[0].2);
        let csr2 = CsrGraph::from_digraph(&g2);
        let t2 = csr2.transpose();
        let counts = sketch.repair_after_edges(&csr2, &t2, &added, &removed, 1e-9, &mut scratch);
        assert_eq!(counts.rows_rebuilt + counts.rows_preserved, 4);
        assert!(counts.rows_rebuilt >= 1, "0→1 is tight for landmark 0");

        let fresh = LandmarkSketch::build(&csr2, &t2, vec![0, 8], &mut scratch);
        assert_eq!(sketch, fresh, "repair must be bit-identical to rebuild");
    }

    #[test]
    fn sketch_memory_is_linear_in_n_and_l() {
        let csr = grid_csr();
        let mut scratch = DijkstraScratch::new();
        let sketch = LandmarkSketch::build(&csr, &csr.transpose(), vec![0, 4], &mut scratch);
        assert_eq!(
            sketch.memory_bytes(),
            2 * 2 * 9 * std::mem::size_of::<f64>() + 2 * std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn edge_on_path_matches_dense_cache_semantics() {
        // Tight edge: d(s,u)=2, w=1, d(s,v)=3.
        assert!(edge_on_path(2.0, 1.0, 3.0, 1e-9));
        // Slack edge: the path through it is strictly longer.
        assert!(!edge_on_path(2.5, 1.0, 3.0, 1e-9));
        // Unreachable tail never invalidates.
        assert!(!edge_on_path(f64::INFINITY, 1.0, 3.0, 1e-9));
        // Infinite head: any finite path into it is "on" the path.
        assert!(edge_on_path(2.0, 1.0, f64::INFINITY, 1e-9));
    }
}
