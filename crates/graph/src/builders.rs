//! Canonical topology builders.
//!
//! Every builder takes a weight function `w(i, j)` so callers can plug in a
//! metric (`|pos[i] - pos[j]|`, matrix lookup, constant 1.0, …).
//!
//! # Example
//!
//! ```
//! use sp_graph::builders;
//!
//! let positions = [0.0f64, 1.0, 4.0, 9.0];
//! let chain = builders::bidirectional_path_graph(4, |i, j| {
//!     (positions[i] - positions[j]).abs()
//! });
//! assert_eq!(chain.edge_count(), 6);
//! ```

use crate::{DiGraph, DistanceMatrix};

/// Directed path `0 → 1 → … → n-1`.
#[must_use]
pub fn path_graph<F: FnMut(usize, usize) -> f64>(n: usize, mut w: F) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(i, i + 1, w(i, i + 1));
    }
    g
}

/// Bidirectional path (chain): edges in both directions between consecutive
/// nodes. This is the paper's reference topology `G̃` used to upper-bound
/// the optimal social cost on the line (Theorem 4.4).
#[must_use]
pub fn bidirectional_path_graph<F: FnMut(usize, usize) -> f64>(n: usize, mut w: F) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(i, i + 1, w(i, i + 1));
        g.add_edge(i + 1, i, w(i + 1, i));
    }
    g
}

/// Directed cycle `0 → 1 → … → n-1 → 0`.
#[must_use]
pub fn cycle_graph<F: FnMut(usize, usize) -> f64>(n: usize, mut w: F) -> DiGraph {
    let mut g = path_graph(n, &mut w);
    if n >= 2 {
        g.add_edge(n - 1, 0, w(n - 1, 0));
    }
    g
}

/// Complete digraph: every ordered pair `(i, j)`, `i ≠ j`.
#[must_use]
pub fn complete_graph<F: FnMut(usize, usize) -> f64>(n: usize, mut w: F) -> DiGraph {
    let mut g = DiGraph::with_capacity(n, n.saturating_sub(1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(i, j, w(i, j));
            }
        }
    }
    g
}

/// Bidirectional star centred on `center`: edges `center ↔ v` for all other
/// nodes.
///
/// # Panics
///
/// Panics if `center >= n` (for `n > 0`).
#[must_use]
pub fn star_graph<F: FnMut(usize, usize) -> f64>(n: usize, center: usize, mut w: F) -> DiGraph {
    let mut g = DiGraph::new(n);
    if n == 0 {
        return g;
    }
    assert!(center < n, "center {center} out of bounds for {n} nodes");
    for v in 0..n {
        if v != center {
            g.add_edge(center, v, w(center, v));
            g.add_edge(v, center, w(v, center));
        }
    }
    g
}

/// Builds a digraph from explicit `(from, to)` pairs, taking weights from a
/// [`DistanceMatrix`].
///
/// # Panics
///
/// Panics if any endpoint is out of bounds for the matrix, on self-loops,
/// or if a referenced matrix entry is not a valid weight.
#[must_use]
pub fn from_edge_list(dist: &DistanceMatrix, edges: &[(usize, usize)]) -> DiGraph {
    let mut g = DiGraph::new(dist.len());
    for &(u, v) in edges {
        g.add_edge(u, v, dist[(u, v)]);
    }
    g
}

/// Minimum spanning tree of the complete graph implied by a symmetric
/// [`DistanceMatrix`], returned with edges in **both** directions (so the
/// result is strongly connected).
///
/// Uses Prim's algorithm in `O(n²)`, which is optimal for dense inputs.
///
/// # Panics
///
/// Panics if the matrix has infinite off-diagonal entries.
///
/// # Example
///
/// ```
/// use sp_graph::{DistanceMatrix, builders, is_strongly_connected};
///
/// let pos = [0.0f64, 1.0, 3.0, 6.0];
/// let d = DistanceMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs());
/// let mst = builders::mst_bidirectional(&d);
/// assert_eq!(mst.edge_count(), 6); // (n-1) tree edges, both directions
/// assert!(is_strongly_connected(&mst));
/// ```
#[must_use]
pub fn mst_bidirectional(dist: &DistanceMatrix) -> DiGraph {
    let n = dist.len();
    let mut g = DiGraph::new(n);
    if n <= 1 {
        return g;
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    in_tree[0] = true;
    for v in 1..n {
        best[v] = dist[(0, v)];
        best_from[v] = 0;
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best[v] < pick_d {
                pick = v;
                pick_d = best[v];
            }
        }
        assert!(
            pick != usize::MAX,
            "matrix has infinite distances; MST undefined"
        );
        in_tree[pick] = true;
        g.add_bidirectional_edge(best_from[pick], pick, pick_d);
        for v in 0..n {
            // sp-lint: allow(float-eps, reason = "Prim relaxation: exact strict improvement; ties resolve to the first index scanned, deterministically")
            if !in_tree[v] && dist[(pick, v)] < best[v] {
                best[v] = dist[(pick, v)];
                best_from[v] = pick;
            }
        }
    }
    g
}

/// `k`-nearest-neighbour digraph: each node links to its `k` nearest other
/// nodes (by the matrix), directed.
///
/// Ties are broken by node index for determinism.
#[must_use]
pub fn k_nearest_neighbors(dist: &DistanceMatrix, k: usize) -> DiGraph {
    let n = dist.len();
    let mut g = DiGraph::new(n);
    for i in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        others.sort_by(|&a, &b| dist[(i, a)].total_cmp(&dist[(i, b)]).then(a.cmp(&b)));
        for &j in others.iter().take(k) {
            g.add_edge(i, j, dist[(i, j)]);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_strongly_connected;

    #[test]
    fn path_and_cycle_edge_counts() {
        assert_eq!(path_graph(5, |_, _| 1.0).edge_count(), 4);
        assert_eq!(cycle_graph(5, |_, _| 1.0).edge_count(), 5);
        assert_eq!(cycle_graph(1, |_, _| 1.0).edge_count(), 0);
        assert_eq!(path_graph(0, |_, _| 1.0).edge_count(), 0);
    }

    #[test]
    fn complete_graph_has_all_ordered_pairs() {
        let g = complete_graph(4, |i, j| (i + j) as f64);
        assert_eq!(g.edge_count(), 12);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g.has_edge(i, j), i != j);
            }
        }
    }

    #[test]
    fn star_graph_structure() {
        let g = star_graph(5, 2, |_, _| 1.0);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.out_degree(2), 4);
        assert_eq!(g.out_degree(0), 1);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn star_graph_of_one_node() {
        let g = star_graph(1, 0, |_, _| 1.0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn from_edge_list_uses_matrix_weights() {
        let d = DistanceMatrix::from_fn(3, |i, j| ((i as f64) - (j as f64)).abs() * 2.0);
        let g = from_edge_list(&d, &[(0, 1), (1, 2)]);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
    }

    #[test]
    fn mst_on_line_is_the_chain() {
        let pos = [0.0f64, 1.0, 3.0, 6.0, 10.0];
        let d = DistanceMatrix::from_fn(5, |i, j| (pos[i] - pos[j]).abs());
        let mst = mst_bidirectional(&d);
        assert_eq!(mst.edge_count(), 8);
        for i in 0..4 {
            assert!(mst.has_edge(i, i + 1), "missing chain edge {i}");
            assert!(mst.has_edge(i + 1, i));
        }
        assert!(is_strongly_connected(&mst));
    }

    #[test]
    fn mst_total_weight_is_minimal_on_triangle() {
        // Triangle with sides 1, 1, 2: MST weight = 2 (one direction).
        let d =
            DistanceMatrix::from_row_major(3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0])
                .unwrap();
        let mst = mst_bidirectional(&d);
        assert!((mst.total_weight() - 4.0).abs() < 1e-12); // 2 × both directions
    }

    #[test]
    fn mst_trivial_sizes() {
        assert_eq!(
            mst_bidirectional(&DistanceMatrix::new_filled(0, 0.0)).edge_count(),
            0
        );
        assert_eq!(
            mst_bidirectional(&DistanceMatrix::new_filled(1, 0.0)).edge_count(),
            0
        );
    }

    #[test]
    fn knn_degree_and_choice() {
        let pos = [0.0f64, 1.0, 2.0, 10.0];
        let d = DistanceMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs());
        let g = k_nearest_neighbors(&d, 2);
        assert_eq!(g.out_degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert!(g.has_edge(3, 2));
        assert!(g.has_edge(3, 1));
    }

    #[test]
    fn knn_with_k_larger_than_n() {
        let d = DistanceMatrix::from_fn(3, |i, j| ((i as i64 - j as i64).abs()) as f64);
        let g = k_nearest_neighbors(&d, 10);
        assert_eq!(g.edge_count(), 6);
    }
}
