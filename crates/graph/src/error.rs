use std::error::Error;
use std::fmt;

/// Errors produced by fallible graph constructors and accessors.
///
/// Most `sp-graph` operations validate eagerly and panic on programmer error
/// (documented per method); the `try_*` variants return this type instead so
/// callers handling untrusted input can recover.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was at least the node count of the graph.
    NodeOutOfBounds {
        /// The offending index.
        node: usize,
        /// The graph's node count.
        len: usize,
    },
    /// An edge weight was NaN, negative, or infinite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A self-loop `(u, u)` was rejected.
    SelfLoop {
        /// The node with the rejected loop.
        node: usize,
    },
    /// A matrix operation received mismatched dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfBounds { node, len } => {
                write!(
                    f,
                    "node index {node} out of bounds for graph of {len} nodes"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(
                    f,
                    "edge weight {weight} is not a finite non-negative number"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node} is not allowed"),
            GraphError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let msgs = [
            GraphError::NodeOutOfBounds { node: 3, len: 2 }.to_string(),
            GraphError::InvalidWeight { weight: f64::NAN }.to_string(),
            GraphError::SelfLoop { node: 0 }.to_string(),
            GraphError::DimensionMismatch {
                expected: 2,
                actual: 3,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
