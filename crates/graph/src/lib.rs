//! Directed weighted graph substrate for the `selfish-peers` workspace.
//!
//! Peer-to-peer overlays in the network creation game of Moscibroda, Schmid &
//! Wattenhofer (PODC 2006) are *directed* graphs whose edge weights are the
//! underlying metric latencies. Everything the game engine needs from graph
//! theory lives here and is implemented from scratch:
//!
//! * [`DiGraph`] — a growable adjacency-list digraph with non-negative
//!   `f64` edge weights.
//! * [`CsrGraph`] — an immutable compressed-sparse-row snapshot for fast
//!   repeated shortest-path queries, with [`DijkstraScratch`]-reusing
//!   sweeps and incremental decrease-only re-relaxation
//!   ([`CsrGraph::relax_decrease_into`]) powering `sp-core`'s
//!   `GameSession` cache.
//! * [`dijkstra`] / [`dijkstra_targets`] / [`ShortestPathTree`] —
//!   binary-heap Dijkstra single-source shortest paths.
//! * [`apsp`] / [`floyd_warshall`] — all-pairs shortest paths producing a
//!   [`DistanceMatrix`].
//! * [`tarjan_scc`] / [`Condensation`] — strongly connected components.
//! * [`is_strongly_connected`], [`reachable_from`], traversal orders.
//! * [`builders`] — canonical topologies (path, cycle, star, complete, …).
//! * [`BoundedDijkstra`] / [`LandmarkSketch`] /
//!   [`farthest_point_landmarks`] — bounded-radius sweeps with
//!   completeness certificates and landmark distance sketches, the
//!   substrate of `sp-core`'s sparse evaluation backend.
//!
//! Nodes are plain `usize` indices in `0..n`; higher layers wrap them in
//! domain newtypes (`PeerId` in `sp-core`).
//!
//! # Example
//!
//! ```
//! use sp_graph::{DiGraph, dijkstra};
//!
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1, 1.0);
//! g.add_edge(1, 2, 2.0);
//! g.add_edge(0, 2, 5.0);
//! let dist = dijkstra(&g, 0);
//! assert_eq!(dist[2], 3.0); // 0 -> 1 -> 2 beats the direct 5.0 edge
//! ```

#![forbid(unsafe_code)]
// Index loops over small fixed-size numeric tables are clearer than
// iterator chains in this codebase's shortest-path/game kernels.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod builders;
mod csr;
mod digraph;
mod dijkstra;
pub mod dot;
mod error;
mod hash;
mod matrix;
pub mod measures;
mod scc;
mod sparse;
mod traversal;

pub use csr::{CsrGraph, DijkstraScratch};
pub use digraph::{DiGraph, Edge};
pub use dijkstra::{dijkstra, dijkstra_targets, dijkstra_tree, ShortestPathTree};
pub use error::GraphError;
pub use hash::{fnv1a, fnv1a_extend, FNV1A_BASIS};
pub use matrix::DistanceMatrix;
pub use scc::{tarjan_scc, Condensation};
pub use sparse::{
    edge_on_path, farthest_point_landmarks, BoundedDijkstra, BoundedSweep, LandmarkSketch,
    SketchRepair,
};
pub use traversal::{bfs_order, dfs_postorder, dfs_preorder, reachable_from};

/// All-pairs shortest paths by running Dijkstra from every node.
///
/// Returns a [`DistanceMatrix`] `D` with `D[(i, j)]` the length of the
/// shortest directed path from `i` to `j` (`f64::INFINITY` if unreachable,
/// `0.0` on the diagonal).
///
/// Runs in `O(n · (m + n) log n)`; for dense graphs prefer
/// [`floyd_warshall`] which is `O(n³)` with a much smaller constant.
///
/// # Example
///
/// ```
/// use sp_graph::{builders, apsp};
///
/// let g = builders::cycle_graph(4, |_, _| 1.0);
/// let d = apsp(&g);
/// assert_eq!(d[(0, 3)], 3.0); // around the directed cycle
/// ```
pub fn apsp(g: &DiGraph) -> DistanceMatrix {
    let n = g.node_count();
    let mut m = DistanceMatrix::new_filled(n, f64::INFINITY);
    let csr = CsrGraph::from_digraph(g);
    for src in 0..n {
        let row = csr.dijkstra(src);
        m.row_mut(src).copy_from_slice(&row);
    }
    m
}

/// All-pairs shortest paths via Floyd–Warshall.
///
/// Equivalent to [`apsp`] (asserted by property tests) but `O(n³)` time and
/// `O(n²)` memory regardless of edge count. Prefer it for dense graphs such
/// as near-complete overlays.
///
/// # Example
///
/// ```
/// use sp_graph::{builders, floyd_warshall, apsp};
///
/// let g = builders::complete_graph(5, |i, j| (i as f64 - j as f64).abs());
/// assert_eq!(floyd_warshall(&g), apsp(&g));
/// ```
pub fn floyd_warshall(g: &DiGraph) -> DistanceMatrix {
    let n = g.node_count();
    let mut d = DistanceMatrix::new_filled(n, f64::INFINITY);
    for i in 0..n {
        d[(i, i)] = 0.0;
    }
    for u in 0..n {
        for e in g.out_edges(u) {
            if e.weight < d[(u, e.to)] {
                d[(u, e.to)] = e.weight;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[(i, k)];
            if dik.is_infinite() {
                continue;
            }
            for j in 0..n {
                let via = dik + d[(k, j)];
                if via < d[(i, j)] {
                    d[(i, j)] = via;
                }
            }
        }
    }
    d
}

/// Returns `true` iff every node can reach every other node along directed
/// edges.
///
/// Implemented as two traversals (forward from node 0, backward from node 0)
/// rather than a full SCC computation.
///
/// An empty graph and a single-node graph are strongly connected.
///
/// # Example
///
/// ```
/// use sp_graph::{builders, is_strongly_connected, DiGraph};
///
/// assert!(is_strongly_connected(&builders::cycle_graph(5, |_, _| 1.0)));
/// let mut g = DiGraph::new(2);
/// g.add_edge(0, 1, 1.0);
/// assert!(!is_strongly_connected(&g)); // no way back from 1
/// ```
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let fwd = reachable_from(g, 0);
    if fwd.iter().any(|&r| !r) {
        return false;
    }
    let rev = g.reversed();
    let bwd = reachable_from(&rev, 0);
    bwd.iter().all(|&r| r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apsp_matches_floyd_warshall_on_small_fixture() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.add_edge(3, 0, 4.0);
        g.add_edge(0, 2, 10.0);
        assert_eq!(apsp(&g), floyd_warshall(&g));
    }

    #[test]
    fn apsp_unreachable_is_infinite() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        let d = apsp(&g);
        assert!(d[(0, 2)].is_infinite());
        assert!(d[(1, 0)].is_infinite());
        assert_eq!(d[(0, 1)], 1.0);
        assert_eq!(d[(2, 2)], 0.0);
    }

    #[test]
    fn strong_connectivity_of_cycle_and_path() {
        let cycle = builders::cycle_graph(6, |_, _| 1.0);
        assert!(is_strongly_connected(&cycle));
        let path = builders::path_graph(6, |_, _| 1.0);
        assert!(!is_strongly_connected(&path));
        let bidi = builders::bidirectional_path_graph(6, |_, _| 1.0);
        assert!(is_strongly_connected(&bidi));
    }

    #[test]
    fn empty_and_singleton_graphs_are_strongly_connected() {
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert!(!is_strongly_connected(&DiGraph::new(2)));
    }
}
