use std::collections::VecDeque;

use crate::DiGraph;

/// Nodes reachable from `source` along directed edges, as a boolean mask
/// indexed by node (`mask[source] == true`).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Example
///
/// ```
/// use sp_graph::{DiGraph, reachable_from};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// assert_eq!(reachable_from(&g, 0), vec![true, true, false]);
/// ```
#[must_use]
pub fn reachable_from(g: &DiGraph, source: usize) -> Vec<bool> {
    let n = g.node_count();
    assert!(source < n, "source {source} out of bounds for {n} nodes");
    let mut seen = vec![false; n];
    let mut stack = vec![source];
    seen[source] = true;
    while let Some(u) = stack.pop() {
        for e in g.out_edges(u) {
            if !seen[e.to] {
                seen[e.to] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

/// Breadth-first visit order from `source` (ignores weights).
///
/// Only reachable nodes appear. Neighbours are visited in insertion order.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Example
///
/// ```
/// use sp_graph::{builders, bfs_order};
///
/// let g = builders::path_graph(4, |_, _| 1.0);
/// assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3]);
/// ```
#[must_use]
pub fn bfs_order(g: &DiGraph, source: usize) -> Vec<usize> {
    let n = g.node_count();
    assert!(source < n, "source {source} out of bounds for {n} nodes");
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for e in g.out_edges(u) {
            if !seen[e.to] {
                seen[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    order
}

/// Depth-first preorder from `source` (ignores weights). Neighbours are
/// explored in insertion order.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
#[must_use]
pub fn dfs_preorder(g: &DiGraph, source: usize) -> Vec<usize> {
    let n = g.node_count();
    assert!(source < n, "source {source} out of bounds for {n} nodes");
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    // Stack of (node, next-edge-index) frames for an iterative DFS.
    let mut stack: Vec<(usize, usize)> = vec![(source, 0)];
    seen[source] = true;
    order.push(source);
    while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
        let edges = g.out_edges(u);
        if *idx < edges.len() {
            let v = edges[*idx].to;
            *idx += 1;
            if !seen[v] {
                seen[v] = true;
                order.push(v);
                stack.push((v, 0));
            }
        } else {
            stack.pop();
        }
    }
    order
}

/// Depth-first postorder from `source` (ignores weights).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
#[must_use]
pub fn dfs_postorder(g: &DiGraph, source: usize) -> Vec<usize> {
    let n = g.node_count();
    assert!(source < n, "source {source} out of bounds for {n} nodes");
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(source, 0)];
    seen[source] = true;
    while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
        let edges = g.out_edges(u);
        if *idx < edges.len() {
            let v = edges[*idx].to;
            *idx += 1;
            if !seen[v] {
                seen[v] = true;
                stack.push((v, 0));
            }
        } else {
            order.push(u);
            stack.pop();
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn tree() -> DiGraph {
        // 0 -> {1, 2}, 1 -> {3, 4}
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(1, 4, 1.0);
        g
    }

    #[test]
    fn bfs_visits_level_by_level() {
        assert_eq!(bfs_order(&tree(), 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dfs_preorder_goes_deep_first() {
        assert_eq!(dfs_preorder(&tree(), 0), vec![0, 1, 3, 4, 2]);
    }

    #[test]
    fn dfs_postorder_emits_children_first() {
        let post = dfs_postorder(&tree(), 0);
        assert_eq!(post.last(), Some(&0));
        let pos = |x: usize| post.iter().position(|&v| v == x).unwrap();
        assert!(pos(3) < pos(1));
        assert!(pos(4) < pos(1));
        assert!(pos(1) < pos(0));
        assert!(pos(2) < pos(0));
    }

    #[test]
    fn traversals_skip_unreachable() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(bfs_order(&g, 0), vec![0, 1]);
        assert_eq!(dfs_preorder(&g, 0), vec![0, 1]);
        assert_eq!(dfs_postorder(&g, 0), vec![1, 0]);
        assert_eq!(reachable_from(&g, 0), vec![true, true, false, false]);
    }

    #[test]
    fn traversals_handle_cycles() {
        let g = builders::cycle_graph(4, |_, _| 1.0);
        assert_eq!(bfs_order(&g, 1), vec![1, 2, 3, 0]);
        assert_eq!(dfs_preorder(&g, 1).len(), 4);
        assert_eq!(dfs_postorder(&g, 1).len(), 4);
        assert!(reachable_from(&g, 1).iter().all(|&r| r));
    }

    #[test]
    fn singleton_traversals() {
        let g = DiGraph::new(1);
        assert_eq!(bfs_order(&g, 0), vec![0]);
        assert_eq!(dfs_preorder(&g, 0), vec![0]);
        assert_eq!(dfs_postorder(&g, 0), vec![0]);
    }
}
