use crate::GraphError;

/// A directed edge with a non-negative finite weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Target node of the edge.
    pub to: usize,
    /// Weight (latency) of the edge; always finite and `>= 0`.
    pub weight: f64,
}

/// A growable directed graph with weighted edges, stored as adjacency lists.
///
/// Nodes are indices `0..n`. Parallel edges are permitted (they never affect
/// shortest paths); self-loops are rejected because the overlay model has no
/// use for them.
///
/// # Example
///
/// ```
/// use sp_graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 2.5);
/// g.add_edge(1, 2, 1.0);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.out_degree(0), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiGraph {
    adj: Vec<Vec<Edge>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a graph with `n` nodes, reserving `per_node` out-edge slots.
    #[must_use]
    pub fn with_capacity(n: usize, per_node: usize) -> Self {
        let mut adj = Vec::with_capacity(n);
        for _ in 0..n {
            adj.push(Vec::with_capacity(per_node));
        }
        DiGraph { adj, edge_count: 0 }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds the directed edge `(from, to)` with weight `weight`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds, if `from == to`, or if
    /// `weight` is NaN, negative, or infinite. Use [`DiGraph::try_add_edge`]
    /// to recover from invalid input instead.
    pub fn add_edge(&mut self, from: usize, to: usize, weight: f64) {
        self.try_add_edge(from, to, weight)
            .unwrap_or_else(|e| panic!("add_edge({from}, {to}, {weight}): {e}"));
    }

    /// Adds the directed edge `(from, to)` with weight `weight`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for bad endpoints,
    /// [`GraphError::SelfLoop`] when `from == to`, and
    /// [`GraphError::InvalidWeight`] for weights that are NaN, negative or
    /// infinite.
    pub fn try_add_edge(&mut self, from: usize, to: usize, weight: f64) -> Result<(), GraphError> {
        let n = self.adj.len();
        if from >= n {
            return Err(GraphError::NodeOutOfBounds { node: from, len: n });
        }
        if to >= n {
            return Err(GraphError::NodeOutOfBounds { node: to, len: n });
        }
        if from == to {
            return Err(GraphError::SelfLoop { node: from });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        self.adj[from].push(Edge { to, weight });
        self.edge_count += 1;
        Ok(())
    }

    /// Adds both `(a, b)` and `(b, a)` with the same weight.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DiGraph::add_edge`].
    pub fn add_bidirectional_edge(&mut self, a: usize, b: usize, weight: f64) {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight);
    }

    /// Removes every edge `(from, to)` (all parallel copies); returns how
    /// many were removed.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    pub fn remove_edge(&mut self, from: usize, to: usize) -> usize {
        let before = self.adj[from].len();
        self.adj[from].retain(|e| e.to != to);
        let removed = before - self.adj[from].len();
        self.edge_count -= removed;
        removed
    }

    /// Removes all out-edges of `node`; returns how many were removed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn clear_out_edges(&mut self, node: usize) -> usize {
        let removed = self.adj[node].len();
        self.adj[node].clear();
        self.edge_count -= removed;
        removed
    }

    /// Out-edges of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn out_edges(&self, node: usize) -> &[Edge] {
        &self.adj[node]
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn out_degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// In-degree of `node` (linear scan over all edges).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn in_degree(&self, node: usize) -> usize {
        assert!(node < self.adj.len(), "node {node} out of bounds");
        self.adj
            .iter()
            .map(|es| es.iter().filter(|e| e.to == node).count())
            .sum()
    }

    /// Returns `true` if at least one edge `(from, to)` exists.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    #[must_use]
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.adj[from].iter().any(|e| e.to == to)
    }

    /// The weight of the lightest edge `(from, to)`, if any exists.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    #[must_use]
    pub fn edge_weight(&self, from: usize, to: usize) -> Option<f64> {
        self.adj[from]
            .iter()
            .filter(|e| e.to == to)
            .map(|e| e.weight)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Iterates over all edges as `(from, to, weight)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, es)| es.iter().map(move |e| (u, e.to, e.weight)))
    }

    /// Returns the graph with every edge direction flipped.
    #[must_use]
    pub fn reversed(&self) -> DiGraph {
        let mut rev = DiGraph::new(self.node_count());
        for (u, v, w) in self.edges() {
            rev.adj[v].push(Edge { to: u, weight: w });
            rev.edge_count += 1;
        }
        rev
    }

    /// Total weight of all edges.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }

    /// Maximum out-degree over all nodes (0 for an empty graph).
    #[must_use]
    pub fn max_out_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(1, 3, 3.0);
        g.add_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn new_graph_has_no_edges() {
        let g = DiGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_empty());
        assert!(DiGraph::new(0).is_empty());
    }

    #[test]
    fn add_and_query_edges() {
        let g = diamond();
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_weight(0, 2), Some(2.0));
        assert_eq!(g.edge_weight(2, 0), None);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn parallel_edges_take_min_weight() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 5.0);
        g.add_edge(0, 1, 3.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn remove_edge_removes_all_parallels() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 5.0);
        g.add_edge(0, 1, 3.0);
        assert_eq!(g.remove_edge(0, 1), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn clear_out_edges_resets_degree() {
        let mut g = diamond();
        assert_eq!(g.clear_out_edges(0), 2);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn try_add_edge_validates() {
        let mut g = DiGraph::new(2);
        assert_eq!(
            g.try_add_edge(0, 5, 1.0),
            Err(GraphError::NodeOutOfBounds { node: 5, len: 2 })
        );
        assert_eq!(
            g.try_add_edge(0, 0, 1.0),
            Err(GraphError::SelfLoop { node: 0 })
        );
        assert!(matches!(
            g.try_add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.try_add_edge(0, 1, -1.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.try_add_edge(0, 1, f64::INFINITY),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn add_edge_panics_on_self_loop() {
        DiGraph::new(1).add_edge(0, 0, 1.0);
    }

    #[test]
    fn reversed_flips_all_edges() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.edge_count(), 4);
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(3, 1));
        assert!(!r.has_edge(0, 1));
        assert_eq!(r.edge_weight(3, 2), Some(1.0));
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let g = diamond();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            edges,
            vec![(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 1.0)]
        );
    }

    #[test]
    fn total_weight_and_max_degree() {
        let g = diamond();
        assert_eq!(g.total_weight(), 7.0);
        assert_eq!(g.max_out_degree(), 2);
        assert_eq!(DiGraph::new(0).max_out_degree(), 0);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = DiGraph::new(1);
        let v = g.add_node();
        assert_eq!(v, 1);
        g.add_edge(0, 1, 1.5);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn bidirectional_edge_adds_two() {
        let mut g = DiGraph::new(2);
        g.add_bidirectional_edge(0, 1, 2.0);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 0.0);
        assert_eq!(g.edge_weight(0, 1), Some(0.0));
    }
}
