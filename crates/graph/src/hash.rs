//! A tiny stable byte hash shared across the workspace.
//!
//! Several layers need a hash whose value is identical across runs,
//! processes, and toolchain versions — the dynamics engine's
//! cycle-detection fingerprints, and `sp-serve`'s spill file names
//! (which must still resolve after a server restart on a different
//! build). `std`'s hashers promise neither cross-release stability
//! (`DefaultHasher`) nor cross-process stability (`RandomState`), so
//! the workspace standardises on FNV-1a here, in its lowest common
//! dependency, instead of re-rolling the constants per crate.

/// The FNV-1a 64-bit offset basis — the initial state for
/// [`fnv1a_extend`] chains.
pub const FNV1A_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a state (start from [`FNV1A_BASIS`]) —
/// the incremental form callers use to hash composite keys without
/// materialising one buffer.
#[must_use]
pub fn fnv1a_extend(state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// 64-bit FNV-1a over `bytes`: deterministic, portable, and stable
/// across releases by definition of the algorithm.
///
/// # Example
///
/// ```
/// use sp_graph::fnv1a;
///
/// assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a(b"alpha"), fnv1a(b"Alpha"));
/// ```
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV1A_BASIS, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinguishes_case() {
        assert_ne!(fnv1a(b"s0001"), fnv1a(b"S0001"));
    }
}
