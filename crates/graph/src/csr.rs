use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::DiGraph;

/// An immutable compressed-sparse-row snapshot of a [`DiGraph`].
///
/// All out-edges live in two flat arrays indexed through a per-node offset
/// table, which makes repeated shortest-path sweeps (the inner loop of cost
/// and best-response computation) cache-friendly.
///
/// # Example
///
/// ```
/// use sp_graph::{DiGraph, CsrGraph};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 2.0);
/// let csr = CsrGraph::from_digraph(&g);
/// assert_eq!(csr.dijkstra(0)[2], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<usize>,
    weights: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    dist: f64,
    node: usize,
}

impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl CsrGraph {
    /// Builds the CSR snapshot of `g`.
    #[must_use]
    pub fn from_digraph(g: &DiGraph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        offsets.push(0);
        for u in 0..n {
            for e in g.out_edges(u) {
                targets.push(e.to);
                weights.push(e.weight);
            }
            offsets.push(targets.len());
        }
        CsrGraph { offsets, targets, weights }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `node` as parallel `(targets, weights)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn out_neighbors(&self, node: usize) -> (&[usize], &[f64]) {
        let lo = self.offsets[node];
        let hi = self.offsets[node + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Single-source shortest path distances from `source`.
    ///
    /// Identical semantics to [`crate::dijkstra`] but without touching the
    /// adjacency-list representation.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    #[must_use]
    pub fn dijkstra(&self, source: usize) -> Vec<f64> {
        let n = self.node_count();
        let mut dist = vec![f64::INFINITY; n];
        self.dijkstra_into(source, &mut dist);
        dist
    }

    /// Like [`CsrGraph::dijkstra`] but reuses a caller-provided buffer to
    /// avoid per-call allocation. `dist` is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds or `dist.len() != node_count()`.
    pub fn dijkstra_into(&self, source: usize, dist: &mut [f64]) {
        let n = self.node_count();
        assert!(source < n, "source {source} out of bounds for {n} nodes");
        assert_eq!(dist.len(), n, "distance buffer has wrong length");
        dist.fill(f64::INFINITY);
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::with_capacity(n);
        dist[source] = 0.0;
        heap.push(Entry { dist: 0.0, node: source });
        while let Some(Entry { dist: d, node: u }) = heap.pop() {
            if settled[u] {
                continue;
            }
            settled[u] = true;
            let (ts, ws) = self.out_neighbors(u);
            for (&v, &w) in ts.iter().zip(ws) {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Entry { dist: nd, node: v });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, dijkstra};

    #[test]
    fn csr_matches_adjacency_dijkstra() {
        let mut g = DiGraph::new(6);
        let edges = [
            (0, 1, 2.0),
            (1, 2, 2.0),
            (2, 3, 2.0),
            (0, 3, 7.0),
            (3, 4, 1.0),
            (4, 0, 1.0),
        ];
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        let csr = CsrGraph::from_digraph(&g);
        for s in 0..6 {
            assert_eq!(csr.dijkstra(s), dijkstra(&g, s), "source {s}");
        }
    }

    #[test]
    fn structure_roundtrip() {
        let g = builders::complete_graph(4, |i, j| (i + j) as f64);
        let csr = CsrGraph::from_digraph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 12);
        let (ts, ws) = csr.out_neighbors(0);
        assert_eq!(ts, &[1, 2, 3]);
        assert_eq!(ws, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dijkstra_into_reuses_buffer() {
        let g = builders::cycle_graph(5, |_, _| 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut buf = vec![42.0; 5];
        csr.dijkstra_into(2, &mut buf);
        assert_eq!(buf, vec![3.0, 4.0, 0.0, 1.0, 2.0]);
        csr.dijkstra_into(0, &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn dijkstra_into_checks_buffer_len() {
        let g = builders::cycle_graph(3, |_, _| 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut buf = vec![0.0; 2];
        csr.dijkstra_into(0, &mut buf);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrGraph::from_digraph(&DiGraph::new(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }
}
