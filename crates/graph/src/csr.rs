use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::DiGraph;

/// An immutable compressed-sparse-row snapshot of a [`DiGraph`].
///
/// All out-edges live in two flat arrays indexed through a per-node offset
/// table, which makes repeated shortest-path sweeps (the inner loop of cost
/// and best-response computation) cache-friendly.
///
/// # Example
///
/// ```
/// use sp_graph::{DiGraph, CsrGraph};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 2.0);
/// let csr = CsrGraph::from_digraph(&g);
/// assert_eq!(csr.dijkstra(0)[2], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<usize>,
    weights: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Entry {
    pub(crate) dist: f64,
    pub(crate) node: usize,
}

impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable working memory for repeated shortest-path sweeps.
///
/// Hot loops (the `GameSession` evaluation cache, best-response oracles)
/// run thousands of Dijkstra sweeps over same-sized graphs; sharing one
/// scratch avoids a heap allocation per sweep. Besides the priority
/// queue, the scratch owns a distance row for
/// [`CsrGraph::dijkstra_row_with`], so back-to-back oracle builds reuse
/// both the heap and the output buffer across calls.
#[derive(Debug, Clone, Default)]
pub struct DijkstraScratch {
    heap: BinaryHeap<Entry>,
    row: Vec<f64>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        DijkstraScratch::default()
    }
}

impl CsrGraph {
    /// Builds the CSR snapshot of `g`.
    #[must_use]
    pub fn from_digraph(g: &DiGraph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        offsets.push(0);
        for u in 0..n {
            for e in g.out_edges(u) {
                targets.push(e.to);
                weights.push(e.weight);
            }
            offsets.push(targets.len());
        }
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The reverse graph: every edge `u → v` becomes `v → u` with the
    /// same weight.
    ///
    /// Distances *to* a node `t` in `self` are distances *from* `t` in
    /// the transpose, so one forward sweep on the transpose yields the
    /// column `d(·, t)` — the backward half of a landmark sketch. The
    /// construction is a counting sort over the edge arrays, `O(n + m)`,
    /// and the transpose's out-edges are emitted in ascending source
    /// order, so the result is deterministic.
    #[must_use]
    pub fn transpose(&self) -> CsrGraph {
        let n = self.node_count();
        let m = self.edge_count();
        let mut offsets = vec![0usize; n + 1];
        for &t in &self.targets {
            offsets[t + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0usize; m];
        let mut weights = vec![0.0f64; m];
        for u in 0..n {
            let (ts, ws) = self.out_neighbors(u);
            for (&v, &w) in ts.iter().zip(ws) {
                let slot = cursor[v];
                cursor[v] += 1;
                targets[slot] = u;
                weights[slot] = w;
            }
        }
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `node` as parallel `(targets, weights)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn out_neighbors(&self, node: usize) -> (&[usize], &[f64]) {
        let lo = self.offsets[node];
        let hi = self.offsets[node + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Single-source shortest path distances from `source`.
    ///
    /// Identical semantics to [`crate::dijkstra`] but without touching the
    /// adjacency-list representation.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    #[must_use]
    pub fn dijkstra(&self, source: usize) -> Vec<f64> {
        let n = self.node_count();
        let mut dist = vec![f64::INFINITY; n];
        self.dijkstra_into(source, &mut dist);
        dist
    }

    /// Like [`CsrGraph::dijkstra`] but reuses a caller-provided buffer to
    /// avoid per-call allocation. `dist` is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds or `dist.len() != node_count()`.
    pub fn dijkstra_into(&self, source: usize, dist: &mut [f64]) {
        let mut scratch = DijkstraScratch::new();
        self.dijkstra_into_with(source, dist, &mut scratch);
    }

    /// Like [`CsrGraph::dijkstra_into`] but reuses caller-provided scratch
    /// memory as well, so back-to-back sweeps allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds or `dist.len() != node_count()`.
    pub fn dijkstra_into_with(
        &self,
        source: usize,
        dist: &mut [f64],
        scratch: &mut DijkstraScratch,
    ) {
        let n = self.node_count();
        assert!(source < n, "source {source} out of bounds for {n} nodes");
        assert_eq!(dist.len(), n, "distance buffer has wrong length");
        dist.fill(f64::INFINITY);
        dist[source] = 0.0;
        scratch.heap.clear();
        scratch.heap.push(Entry {
            dist: 0.0,
            node: source,
        });
        self.relax_from_heap(dist, scratch);
    }

    /// Like [`CsrGraph::dijkstra_into_with`] but sweeps into the
    /// scratch-owned row buffer and returns it, so repeated sweeps — a
    /// best-response oracle builds one per candidate neighbour, thousands
    /// per dynamics round — allocate nothing after the first call.
    ///
    /// The returned slice is valid until the next use of `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    pub fn dijkstra_row_with<'a>(
        &self,
        source: usize,
        scratch: &'a mut DijkstraScratch,
    ) -> &'a [f64] {
        let mut row = std::mem::take(&mut scratch.row);
        row.resize(self.node_count(), f64::INFINITY);
        self.dijkstra_into_with(source, &mut row, scratch);
        scratch.row = row;
        &scratch.row
    }

    /// Incremental single-source repair after **weight decreases / edge
    /// additions**: given `dist` holding correct distances in a graph of
    /// which `self` is a superset (same nodes, possibly extra or cheaper
    /// edges), and `seeds` listing nodes whose tentative distance just
    /// dropped, restores exact distances for `self`.
    ///
    /// Seeds with `new_dist >= dist[node]` are ignored. This is the
    /// standard decrease-only re-relaxation: work is proportional to the
    /// region whose distances actually change, not to the whole graph —
    /// the `GameSession` cache uses it to avoid full APSP rebuilds when a
    /// peer adds links.
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != node_count()` or a seed node is out of
    /// bounds.
    pub fn relax_decrease_into(
        &self,
        dist: &mut [f64],
        seeds: &[(usize, f64)],
        scratch: &mut DijkstraScratch,
    ) {
        let n = self.node_count();
        assert_eq!(dist.len(), n, "distance buffer has wrong length");
        scratch.heap.clear();
        for &(node, new_dist) in seeds {
            assert!(node < n, "seed {node} out of bounds for {n} nodes");
            // sp-lint: allow(float-eps, reason = "Dijkstra relaxation: exact strict improvement is the termination criterion; an eps band would cycle")
            if new_dist < dist[node] {
                dist[node] = new_dist;
                scratch.heap.push(Entry {
                    dist: new_dist,
                    node,
                });
            }
        }
        self.relax_from_heap(dist, scratch);
    }

    /// Like [`CsrGraph::relax_decrease_into`], but relaxes as if the
    /// out-edges of `skip` were absent — i.e. against the subgraph
    /// `G_{-skip}` — without materialising that subgraph.
    ///
    /// This is the repair kernel for **residual** distance rows
    /// `D_{G_{-i}}(v, ·)` (the rows a best-response oracle for peer `i`
    /// reads): when some *other* peer adds links, the cached residual row
    /// can be restored by decrease-only relaxation, but the propagation
    /// must never route through `i`'s out-links, which `G_{-i}` does not
    /// contain. Seeds landing **on** `skip` are accepted (edges *into*
    /// `skip` exist in `G_{-skip}`); they just never propagate onward.
    ///
    /// With `skip >= node_count()` no node is skipped and the call is
    /// exactly [`CsrGraph::relax_decrease_into`].
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != node_count()` or a seed node is out of
    /// bounds.
    pub fn relax_decrease_skipping(
        &self,
        dist: &mut [f64],
        seeds: &[(usize, f64)],
        skip: usize,
        scratch: &mut DijkstraScratch,
    ) {
        let n = self.node_count();
        assert_eq!(dist.len(), n, "distance buffer has wrong length");
        scratch.heap.clear();
        for &(node, new_dist) in seeds {
            assert!(node < n, "seed {node} out of bounds for {n} nodes");
            // sp-lint: allow(float-eps, reason = "Dijkstra relaxation: exact strict improvement is the termination criterion; an eps band would cycle")
            if new_dist < dist[node] {
                dist[node] = new_dist;
                scratch.heap.push(Entry {
                    dist: new_dist,
                    node,
                });
            }
        }
        self.relax_from_heap_skipping(dist, scratch, skip);
    }

    /// Runs one full single-source sweep per `(source, buffer)` job,
    /// sharding the jobs over at most `workers` scoped threads with a
    /// per-thread [`DijkstraScratch`].
    ///
    /// The buffers must be disjoint (guaranteed by the borrow checker);
    /// `CsrGraph` itself is immutable and shared read-only across the
    /// threads. With `workers <= 1` or a single job everything runs on
    /// the calling thread — results are identical either way, only the
    /// wall-clock changes. This is the bulk-row engine behind
    /// `GameSession`'s parallel cache refill.
    ///
    /// # Panics
    ///
    /// Panics if any job's source is out of bounds or its buffer length
    /// differs from `node_count()`.
    pub fn dijkstra_rows_with(&self, mut jobs: Vec<(usize, &mut [f64])>, workers: usize) {
        let workers = workers.max(1).min(jobs.len());
        if workers <= 1 {
            let mut scratch = DijkstraScratch::new();
            for (source, row) in &mut jobs {
                self.dijkstra_into_with(*source, row, &mut scratch);
            }
            return;
        }
        let shard_len = jobs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for shard in jobs.chunks_mut(shard_len) {
                scope.spawn(move || {
                    let mut scratch = DijkstraScratch::new();
                    for (source, row) in shard {
                        self.dijkstra_into_with(*source, row, &mut scratch);
                    }
                });
            }
        });
    }

    /// Settles whatever is queued in `scratch.heap` against `dist` (lazy
    /// deletion: stale queue entries are skipped on pop).
    fn relax_from_heap(&self, dist: &mut [f64], scratch: &mut DijkstraScratch) {
        // `usize::MAX` is never a node index, so nothing is skipped.
        self.relax_from_heap_skipping(dist, scratch, usize::MAX);
    }

    /// [`CsrGraph::relax_from_heap`], never expanding the out-edges of
    /// `skip` (settled nodes equal to `skip` are popped but not relaxed).
    fn relax_from_heap_skipping(
        &self,
        dist: &mut [f64],
        scratch: &mut DijkstraScratch,
        skip: usize,
    ) {
        while let Some(Entry { dist: d, node: u }) = scratch.heap.pop() {
            // sp-lint: allow(float-eps, reason = "stale-heap-entry skip: compares a value against an exact copy of itself, never a recomputation")
            if d > dist[u] || u == skip {
                continue;
            }
            let (ts, ws) = self.out_neighbors(u);
            for (&v, &w) in ts.iter().zip(ws) {
                let nd = d + w;
                // sp-lint: allow(float-eps, reason = "Dijkstra relaxation: exact strict improvement is the termination criterion; an eps band would cycle")
                if nd < dist[v] {
                    dist[v] = nd;
                    scratch.heap.push(Entry { dist: nd, node: v });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, dijkstra};

    #[test]
    fn csr_matches_adjacency_dijkstra() {
        let mut g = DiGraph::new(6);
        let edges = [
            (0, 1, 2.0),
            (1, 2, 2.0),
            (2, 3, 2.0),
            (0, 3, 7.0),
            (3, 4, 1.0),
            (4, 0, 1.0),
        ];
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        let csr = CsrGraph::from_digraph(&g);
        for s in 0..6 {
            assert_eq!(csr.dijkstra(s), dijkstra(&g, s), "source {s}");
        }
    }

    #[test]
    fn structure_roundtrip() {
        let g = builders::complete_graph(4, |i, j| (i + j) as f64);
        let csr = CsrGraph::from_digraph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 12);
        let (ts, ws) = csr.out_neighbors(0);
        assert_eq!(ts, &[1, 2, 3]);
        assert_eq!(ws, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dijkstra_into_reuses_buffer() {
        let g = builders::cycle_graph(5, |_, _| 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut buf = vec![42.0; 5];
        csr.dijkstra_into(2, &mut buf);
        assert_eq!(buf, vec![3.0, 4.0, 0.0, 1.0, 2.0]);
        csr.dijkstra_into(0, &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn dijkstra_into_checks_buffer_len() {
        let g = builders::cycle_graph(3, |_, _| 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut buf = vec![0.0; 2];
        csr.dijkstra_into(0, &mut buf);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let g = builders::complete_graph(8, |i, j| ((i * 7 + j * 3) % 5 + 1) as f64);
        let csr = CsrGraph::from_digraph(&g);
        let mut scratch = DijkstraScratch::new();
        let mut buf = vec![0.0; 8];
        for s in 0..8 {
            csr.dijkstra_into_with(s, &mut buf, &mut scratch);
            assert_eq!(buf, csr.dijkstra(s), "source {s}");
        }
    }

    #[test]
    fn decrease_relaxation_repairs_added_edges() {
        // Path 0 -> 1 -> 2 -> 3 with unit weights; then add shortcut 0 -> 3.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let csr_old = CsrGraph::from_digraph(&g);
        let mut dist = csr_old.dijkstra(0);
        assert_eq!(dist[3], 3.0);
        g.add_edge(0, 3, 0.5);
        g.add_edge(3, 1, 0.1); // decreased dist must propagate onward
        let csr_new = CsrGraph::from_digraph(&g);
        let mut scratch = DijkstraScratch::new();
        csr_new.relax_decrease_into(&mut dist, &[(3, 0.5)], &mut scratch);
        assert_eq!(dist, csr_new.dijkstra(0));
        assert_eq!(dist[3], 0.5);
        assert!((dist[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn decrease_relaxation_ignores_worse_seeds() {
        let g = builders::cycle_graph(5, |_, _| 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut dist = csr.dijkstra(0);
        let before = dist.clone();
        let mut scratch = DijkstraScratch::new();
        csr.relax_decrease_into(&mut dist, &[(2, 99.0)], &mut scratch);
        assert_eq!(dist, before);
    }

    #[test]
    fn skipping_relaxation_matches_subgraph_repair() {
        // G_{-1} (node 1's out-edge 1 -> 3 excluded): 0 -> 1, 2 -> 0,
        // 2 -> 3 (expensive). Residual row from source 2.
        let mut sub = DiGraph::new(4);
        for (u, v, w) in [(0, 1, 1.0), (2, 0, 1.0), (2, 3, 5.0)] {
            sub.add_edge(u, v, w);
        }
        let mut dist = CsrGraph::from_digraph(&sub).dijkstra(2);
        assert_eq!(dist, vec![1.0, 2.0, 0.0, 5.0]);
        // Peer 2 adds 2 -> 1 (weight 0.3). The full overlay also holds
        // node 1's own edge 1 -> 3 (1.0): relaxing through it would
        // wrongly report d(2, 3) = 1.3, a path G_{-1} does not contain.
        let mut full = sub.clone();
        full.add_edge(1, 3, 1.0);
        full.add_edge(2, 1, 0.3);
        sub.add_edge(2, 1, 0.3);
        let full_csr = CsrGraph::from_digraph(&full);
        let mut scratch = DijkstraScratch::new();
        full_csr.relax_decrease_skipping(&mut dist, &[(1, 0.3)], 1, &mut scratch);
        let expected = CsrGraph::from_digraph(&sub).dijkstra(2);
        assert_eq!(dist, expected, "repair must agree with the subgraph");
        assert_eq!(dist[1], 0.3);
        assert_eq!(dist[3], 5.0, "must not route through node 1's out-edge");
    }

    #[test]
    fn skipping_relaxation_accepts_seeds_on_the_skipped_node() {
        // Edges INTO the skipped node exist in the subgraph: a seed
        // landing on it must update its distance without propagating.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut dist = vec![0.0, 5.0, f64::INFINITY];
        let mut scratch = DijkstraScratch::new();
        csr.relax_decrease_skipping(&mut dist, &[(1, 1.0)], 1, &mut scratch);
        assert_eq!(dist[1], 1.0, "seed on the skipped node is applied");
        assert!(
            dist[2].is_infinite(),
            "the skipped node's out-edges must not relax"
        );
    }

    #[test]
    fn skipping_out_of_range_node_degenerates_to_plain_relaxation() {
        let g = builders::cycle_graph(5, |_, _| 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut a = csr.dijkstra(0);
        let mut b = a.clone();
        let mut scratch = DijkstraScratch::new();
        csr.relax_decrease_into(&mut a, &[(3, 0.25)], &mut scratch);
        csr.relax_decrease_skipping(&mut b, &[(3, 0.25)], usize::MAX, &mut scratch);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_rows_match_sequential_sweeps() {
        let g = builders::complete_graph(17, |i, j| ((i * 5 + j * 11) % 7 + 1) as f64);
        let csr = CsrGraph::from_digraph(&g);
        for workers in [0usize, 1, 2, 5, 32] {
            let mut m = crate::DistanceMatrix::new_filled(17, -1.0);
            let jobs: Vec<(usize, &mut [f64])> = m.rows_mut().enumerate().collect();
            csr.dijkstra_rows_with(jobs, workers);
            for s in 0..17 {
                assert_eq!(
                    m.row(s),
                    csr.dijkstra(s).as_slice(),
                    "source {s}, workers {workers}"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let csr = CsrGraph::from_digraph(&DiGraph::new(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let mut g = DiGraph::new(5);
        for (u, v, w) in [(0, 1, 2.0), (1, 2, 3.0), (3, 1, 0.5), (4, 0, 1.0)] {
            g.add_edge(u, v, w);
        }
        let csr = CsrGraph::from_digraph(&g);
        let t = csr.transpose();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.edge_count(), 4);
        let (ts, ws) = t.out_neighbors(1);
        assert_eq!(ts, &[0, 3]);
        assert_eq!(ws, &[2.0, 0.5]);
        assert_eq!(t.transpose(), csr, "double transpose is the identity");
    }

    #[test]
    fn transpose_sweep_yields_columns() {
        let g = builders::complete_graph(7, |i, j| ((i * 3 + j * 5) % 4 + 1) as f64);
        let csr = CsrGraph::from_digraph(&g);
        let t = csr.transpose();
        for target in 0..7 {
            let back = t.dijkstra(target);
            for source in 0..7 {
                assert_eq!(
                    back[source],
                    csr.dijkstra(source)[target],
                    "d({source}, {target})"
                );
            }
        }
    }
}
