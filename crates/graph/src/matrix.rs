use std::fmt;
use std::ops::{Index, IndexMut};

use crate::GraphError;

/// A dense square matrix of `f64` distances, indexed by `(row, col)`.
///
/// Used for both metric-space distance tables and all-pairs shortest-path
/// results. Entries may be `f64::INFINITY` (unreachable) but never NaN —
/// constructors validate this.
///
/// # Example
///
/// ```
/// use sp_graph::DistanceMatrix;
///
/// let m = DistanceMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs());
/// assert_eq!(m[(0, 2)], 2.0);
/// assert!(m.is_symmetric(0.0));
/// ```
#[derive(Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates an `n × n` matrix filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    pub fn new_filled(n: usize, value: f64) -> Self {
        assert!(!value.is_nan(), "matrix entries must not be NaN");
        DistanceMatrix {
            n,
            data: vec![value; n * n],
        }
    }

    /// Creates an `n × n` matrix whose `(i, j)` entry is `f(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns NaN.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let v = f(i, j);
                assert!(!v.is_nan(), "matrix entry ({i}, {j}) is NaN");
                data.push(v);
            }
        }
        DistanceMatrix { n, data }
    }

    /// Creates a matrix from a row-major vector of length `n²`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] if `data.len() != n * n`
    /// and [`GraphError::InvalidWeight`] if any entry is NaN.
    pub fn from_row_major(n: usize, data: Vec<f64>) -> Result<Self, GraphError> {
        if data.len() != n * n {
            return Err(GraphError::DimensionMismatch {
                expected: n * n,
                actual: data.len(),
            });
        }
        if let Some(&bad) = data.iter().find(|v| v.is_nan()) {
            return Err(GraphError::InvalidWeight { weight: bad });
        }
        Ok(DistanceMatrix { n, data })
    }

    /// Side length of the matrix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the `0 × 0` matrix.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Iterates over all rows as disjoint mutable slices, in order.
    ///
    /// The slices borrow independent regions of the backing storage, so
    /// callers can hand different rows to different threads (the sharded
    /// sweep in [`crate::CsrGraph::dijkstra_rows_with`] relies on this).
    pub fn rows_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data.chunks_mut(self.n.max(1))
    }

    /// Returns `true` if `|m[i][j] - m[j][i]| <= tol` for all pairs.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The largest finite entry, or `None` if all entries are infinite (or
    /// the matrix is empty).
    #[must_use]
    pub fn max_finite(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .max_by(f64::total_cmp)
    }

    /// The smallest strictly positive finite entry, or `None`.
    #[must_use]
    pub fn min_positive(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite() && *v > 0.0)
            .min_by(f64::total_cmp)
    }

    /// Sum of all off-diagonal entries (may be infinite).
    #[must_use]
    pub fn off_diagonal_sum(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self[(i, j)];
                }
            }
        }
        s
    }

    /// Returns `true` if any entry is infinite.
    #[must_use]
    pub fn has_infinite(&self) -> bool {
        self.data.iter().any(|v| v.is_infinite())
    }

    /// Iterates over `(i, j, value)` for all off-diagonal entries.
    pub fn iter_off_diagonal(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |i| {
            (0..n)
                .filter(move |&j| j != i)
                .map(move |j| (i, j, self[(i, j)]))
        })
    }
}

impl Index<(usize, usize)> for DistanceMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.n && j < self.n,
            "index ({i}, {j}) out of bounds for n={}",
            self.n
        );
        &self.data[i * self.n + j]
    }
}

impl IndexMut<(usize, usize)> for DistanceMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.n && j < self.n,
            "index ({i}, {j}) out of bounds for n={}",
            self.n
        );
        &mut self.data[i * self.n + j]
    }
}

impl fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DistanceMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n.min(12) {
            write!(f, "  [")?;
            for j in 0..self.n.min(12) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.3}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        if self.n > 12 {
            writeln!(f, "  ... ({} more rows)", self.n - 12)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_index() {
        let m = DistanceMatrix::from_fn(3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_row_major_validates_dimension() {
        assert!(matches!(
            DistanceMatrix::from_row_major(2, vec![1.0; 3]),
            Err(GraphError::DimensionMismatch {
                expected: 4,
                actual: 3
            })
        ));
        let ok = DistanceMatrix::from_row_major(2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(ok.is_symmetric(0.0));
    }

    #[test]
    fn from_row_major_rejects_nan() {
        assert!(matches!(
            DistanceMatrix::from_row_major(1, vec![f64::NAN]),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn symmetry_tolerance() {
        let mut m = DistanceMatrix::new_filled(2, 0.0);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0 + 1e-12;
        assert!(m.is_symmetric(1e-9));
        assert!(!m.is_symmetric(0.0));
    }

    #[test]
    fn extremes_and_sums() {
        let mut m = DistanceMatrix::new_filled(3, f64::INFINITY);
        for i in 0..3 {
            m[(i, i)] = 0.0;
        }
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 3.0;
        assert_eq!(m.max_finite(), Some(3.0));
        assert_eq!(m.min_positive(), Some(2.0));
        assert!(m.has_infinite());
        assert!(m.off_diagonal_sum().is_infinite());
        m[(0, 2)] = 1.0;
        m[(2, 0)] = 1.0;
        m[(1, 2)] = 1.0;
        m[(2, 1)] = 1.0;
        assert_eq!(m.off_diagonal_sum(), 9.0);
        assert!(!m.has_infinite());
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::new_filled(0, 0.0);
        assert!(m.is_empty());
        assert_eq!(m.max_finite(), None);
        assert_eq!(m.min_positive(), None);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.off_diagonal_sum(), 0.0);
    }

    #[test]
    fn iter_off_diagonal_skips_diagonal() {
        let m = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64);
        let items: Vec<_> = m.iter_off_diagonal().collect();
        assert_eq!(items.len(), 6);
        assert!(items.iter().all(|&(i, j, _)| i != j));
    }

    #[test]
    fn debug_output_is_nonempty() {
        let m = DistanceMatrix::new_filled(2, 1.0);
        let s = format!("{m:?}");
        assert!(s.contains("DistanceMatrix(2x2)"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = DistanceMatrix::new_filled(2, 0.0);
        let _ = m[(2, 0)];
    }
}
