use crate::DiGraph;

/// The strongly connected components of a digraph, in reverse topological
/// order of the condensation (Tarjan's invariant: a component is emitted
/// only after every component it can reach).
///
/// Each inner `Vec` lists the member nodes of one component.
///
/// # Example
///
/// ```
/// use sp_graph::{DiGraph, tarjan_scc};
///
/// let mut g = DiGraph::new(4);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 0, 1.0); // {0, 1} is one SCC
/// g.add_edge(1, 2, 1.0);
/// g.add_edge(2, 3, 1.0);
/// let sccs = tarjan_scc(&g);
/// assert_eq!(sccs.len(), 3);
/// ```
#[must_use]
pub fn tarjan_scc(g: &DiGraph) -> Vec<Vec<usize>> {
    let n = g.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Iterative Tarjan: frames are (node, next-out-edge, child-to-merge).
    enum Frame {
        Enter(usize),
        Resume { node: usize, edge: usize },
    }

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(root)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call_stack.push(Frame::Resume { node: v, edge: 0 });
                }
                Frame::Resume { node: v, edge } => {
                    let mut e = edge;
                    // If we just returned from a child, fold its lowlink in.
                    if e > 0 {
                        let child = g.out_edges(v)[e - 1].to;
                        if lowlink[child] < lowlink[v] {
                            lowlink[v] = lowlink[child];
                        }
                    }
                    let edges = g.out_edges(v);
                    let mut descended = false;
                    while e < edges.len() {
                        let w = edges[e].to;
                        e += 1;
                        if index[w] == UNVISITED {
                            call_stack.push(Frame::Resume { node: v, edge: e });
                            call_stack.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] && index[w] < lowlink[v] {
                            lowlink[v] = index[w];
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                }
            }
        }
    }
    components
}

/// The condensation of a digraph: one node per strongly connected component,
/// with an (unweighted, weight-1.0) edge between components whenever any
/// member edge crosses them.
///
/// # Example
///
/// ```
/// use sp_graph::{DiGraph, Condensation};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 0, 1.0);
/// g.add_edge(1, 2, 1.0);
/// let c = Condensation::of(&g);
/// assert_eq!(c.component_count(), 2);
/// assert_eq!(c.component_of(0), c.component_of(1));
/// assert_ne!(c.component_of(0), c.component_of(2));
/// ```
#[derive(Debug, Clone)]
pub struct Condensation {
    components: Vec<Vec<usize>>,
    component_of: Vec<usize>,
    dag: DiGraph,
}

impl Condensation {
    /// Computes the condensation of `g`.
    #[must_use]
    pub fn of(g: &DiGraph) -> Self {
        let components = tarjan_scc(g);
        let n = g.node_count();
        let mut component_of = vec![0usize; n];
        for (ci, comp) in components.iter().enumerate() {
            for &v in comp {
                component_of[v] = ci;
            }
        }
        let mut dag = DiGraph::new(components.len());
        let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for (u, v, _) in g.edges() {
            let (cu, cv) = (component_of[u], component_of[v]);
            if cu != cv && seen.insert((cu, cv)) {
                dag.add_edge(cu, cv, 1.0);
            }
        }
        Condensation {
            components,
            component_of,
            dag,
        }
    }

    /// Number of strongly connected components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The component index of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn component_of(&self, node: usize) -> usize {
        self.component_of[node]
    }

    /// Member nodes of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn members(&self, c: usize) -> &[usize] {
        &self.components[c]
    }

    /// The condensation DAG (one node per component).
    #[must_use]
    pub fn dag(&self) -> &DiGraph {
        &self.dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn cycle_is_one_component() {
        let g = builders::cycle_graph(5, |_, _| 1.0);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 5);
    }

    #[test]
    fn path_is_all_singletons() {
        let g = builders::path_graph(4, |_, _| 1.0);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn mixed_components() {
        // {0,1,2} cycle, {3,4} cycle, 2 -> 3 bridge, 5 isolated.
        let mut g = DiGraph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 0, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 3, 1.0);
        g.add_edge(2, 3, 1.0);
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 3);
        assert_eq!(c.component_of(0), c.component_of(2));
        assert_eq!(c.component_of(3), c.component_of(4));
        assert_ne!(c.component_of(0), c.component_of(3));
        assert_ne!(c.component_of(5), c.component_of(0));
        // Condensation DAG has exactly one cross edge.
        assert_eq!(c.dag().edge_count(), 1);
        assert!(c.dag().has_edge(c.component_of(0), c.component_of(3)));
    }

    #[test]
    fn reverse_topological_emission_order() {
        // 0 -> 1 -> 2 as singletons: sink component (2) must come first.
        let g = builders::path_graph(3, |_, _| 1.0);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs[0], vec![2]);
        assert_eq!(sccs[2], vec![0]);
    }

    #[test]
    fn members_returns_component_nodes() {
        let g = builders::cycle_graph(3, |_, _| 1.0);
        let c = Condensation::of(&g);
        let mut m = c.members(0).to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        assert!(tarjan_scc(&DiGraph::new(0)).is_empty());
        let c = Condensation::of(&DiGraph::new(0));
        assert_eq!(c.component_count(), 0);
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        // 100k-node directed path; recursive Tarjan would blow the stack.
        let g = builders::path_graph(100_000, |_, _| 1.0);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 100_000);
    }

    #[test]
    fn parallel_edges_do_not_duplicate_dag_edges() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        let c = Condensation::of(&g);
        assert_eq!(c.dag().edge_count(), 1);
    }
}
