//! Topology characterisation measures.
//!
//! Equilibrium overlays are *shaped* by the metric and `α`; these
//! measures quantify that shape: eccentricities and weighted diameter,
//! degree statistics, betweenness centrality (how load concentrates on
//! hub peers), and clustering.
//!
//! # Example
//!
//! ```
//! use sp_graph::{builders, measures};
//!
//! let star = builders::star_graph(5, 0, |_, _| 1.0);
//! let bc = measures::betweenness_centrality(&star);
//! // The hub carries all transit; leaves carry none.
//! assert!(bc[0] > 0.0);
//! assert_eq!(bc[1], 0.0);
//! ```

use crate::{apsp, CsrGraph, DiGraph, DistanceMatrix};

/// Weighted eccentricity of every node: the largest finite shortest-path
/// distance to any other node, `f64::INFINITY` if some node is
/// unreachable. Empty graphs yield an empty vector; a single node has
/// eccentricity 0.
#[must_use]
pub fn eccentricities(g: &DiGraph) -> Vec<f64> {
    let d = apsp(g);
    let n = g.node_count();
    (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| d[(i, j)])
                .fold(0.0f64, f64::max)
        })
        .collect()
}

/// Weighted diameter: the largest eccentricity (`∞` when not strongly
/// connected, `0.0` for graphs with fewer than two nodes).
#[must_use]
pub fn diameter(g: &DiGraph) -> f64 {
    eccentricities(g).into_iter().fold(0.0f64, f64::max)
}

/// Weighted radius: the smallest eccentricity (`0.0` for empty graphs).
#[must_use]
pub fn radius(g: &DiGraph) -> f64 {
    eccentricities(g)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
        .min(f64::INFINITY)
}

/// Summary statistics of the out-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest out-degree.
    pub min: usize,
    /// Largest out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Population standard deviation of the out-degree.
    pub stddev: f64,
}

/// Computes out-degree statistics (`None` for an empty graph).
#[must_use]
pub fn degree_stats(g: &DiGraph) -> Option<DegreeStats> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let degrees: Vec<usize> = (0..n).map(|v| g.out_degree(v)).collect();
    let min = *degrees.iter().min().expect("non-empty");
    let max = *degrees.iter().max().expect("non-empty");
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let var = degrees
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    Some(DegreeStats {
        min,
        max,
        mean,
        stddev: var.sqrt(),
    })
}

/// Brandes' betweenness centrality for weighted digraphs: for each node
/// `v`, the sum over source–target pairs `(s, t)` (both ≠ `v`) of the
/// fraction of shortest `s → t` paths passing through `v`.
///
/// Runs one Dijkstra per source, `O(n·(m + n) log n)` total. Values are
/// **not** normalized; divide by `(n-1)(n-2)` for the conventional
/// normalization.
///
/// Shortest-path ties are counted exactly (path multiplicities), with a
/// relative tolerance of `1e-12` when comparing path lengths.
#[must_use]
pub fn betweenness_centrality(g: &DiGraph) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    if n < 3 {
        return centrality;
    }
    let csr = CsrGraph::from_digraph(g);
    // Per-source Brandes with Dijkstra.
    for s in 0..n {
        // dist, sigma (path counts), predecessors.
        let mut dist = vec![f64::INFINITY; n];
        let mut sigma = vec![0.0f64; n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut settled_order: Vec<usize> = Vec::with_capacity(n);
        let mut settled = vec![false; n];
        dist[s] = 0.0;
        sigma[s] = 1.0;

        // Simple binary-heap Dijkstra with lazily deleted entries.
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct E(f64, usize);
        impl Eq for E {}
        impl Ord for E {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .0
                    .total_cmp(&self.0)
                    .then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for E {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(E(0.0, s));
        while let Some(E(d, u)) = heap.pop() {
            if settled[u] {
                continue;
            }
            settled[u] = true;
            settled_order.push(u);
            let (ts, ws) = csr.out_neighbors(u);
            for (&v, &w) in ts.iter().zip(ws) {
                let nd = d + w;
                let tol = 1e-12 * (1.0 + nd.abs());
                if nd < dist[v] - tol {
                    dist[v] = nd;
                    sigma[v] = sigma[u];
                    preds[v].clear();
                    preds[v].push(u);
                    heap.push(E(nd, v));
                } else if (nd - dist[v]).abs() <= tol {
                    sigma[v] += sigma[u];
                    preds[v].push(u);
                }
            }
        }
        // Accumulation in reverse settled order.
        let mut delta = vec![0.0f64; n];
        for &w in settled_order.iter().rev() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    centrality
}

/// Global (transitivity-style) clustering coefficient of the
/// *underlying undirected* graph: `3 × triangles / connected triples`.
/// Returns 0.0 when there are no connected triples.
#[must_use]
pub fn clustering_coefficient(g: &DiGraph) -> f64 {
    let n = g.node_count();
    // Undirected neighbourhoods.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, v, _) in g.edges() {
        if !adj[u].contains(&v) {
            adj[u].push(v);
        }
        if !adj[v].contains(&u) {
            adj[v].push(u);
        }
    }
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for v in 0..n {
        let d = adj[v].len();
        triples += d * d.saturating_sub(1) / 2;
        for (ai, &a) in adj[v].iter().enumerate() {
            for &b in &adj[v][(ai + 1)..] {
                if adj[a].contains(&b) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times.
        triangles as f64 / triples as f64
    }
}

/// Average shortest-path distance over ordered reachable pairs, together
/// with the count of unreachable pairs.
#[must_use]
pub fn mean_distance(g: &DiGraph) -> (f64, usize) {
    let d: DistanceMatrix = apsp(g);
    let n = g.node_count();
    let mut sum = 0.0;
    let mut reachable = 0usize;
    let mut unreachable = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if d[(i, j)].is_finite() {
                sum += d[(i, j)];
                reachable += 1;
            } else {
                unreachable += 1;
            }
        }
    }
    if reachable == 0 {
        (0.0, unreachable)
    } else {
        (sum / reachable as f64, unreachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn eccentricity_and_diameter_of_chain() {
        let g = builders::bidirectional_path_graph(4, |_, _| 1.0);
        let ecc = eccentricities(&g);
        assert_eq!(ecc, vec![3.0, 2.0, 2.0, 3.0]);
        assert_eq!(diameter(&g), 3.0);
        assert_eq!(radius(&g), 2.0);
    }

    #[test]
    fn disconnected_graph_has_infinite_diameter() {
        let g = DiGraph::new(3);
        assert!(diameter(&g).is_infinite());
    }

    #[test]
    fn degree_stats_of_star() {
        let g = builders::star_graph(5, 0, |_, _| 1.0);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert!(s.stddev > 0.0);
        assert!(degree_stats(&DiGraph::new(0)).is_none());
    }

    #[test]
    fn betweenness_of_path_peaks_in_middle() {
        let g = builders::bidirectional_path_graph(5, |_, _| 1.0);
        let bc = betweenness_centrality(&g);
        // Middle node lies on most paths.
        assert!(bc[2] > bc[1]);
        assert!(bc[1] > bc[0]);
        assert_eq!(bc[0], 0.0);
        // Symmetry.
        assert!((bc[1] - bc[3]).abs() < 1e-9);
    }

    #[test]
    fn betweenness_counts_tied_paths_fractionally() {
        // Diamond: 0 -> {1, 2} -> 3 with equal weights: each middle node
        // carries half of the 0 -> 3 pair.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 3, 1.0);
        let bc = betweenness_centrality(&g);
        assert!((bc[1] - 0.5).abs() < 1e-9);
        assert!((bc[2] - 0.5).abs() < 1e-9);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[3], 0.0);
    }

    #[test]
    fn betweenness_star_hub_dominates() {
        let g = builders::star_graph(6, 2, |_, _| 1.0);
        let bc = betweenness_centrality(&g);
        // Hub relays all 5·4 = 20 leaf pairs.
        assert!((bc[2] - 20.0).abs() < 1e-9);
        for (v, &c) in bc.iter().enumerate() {
            if v != 2 {
                assert_eq!(c, 0.0);
            }
        }
    }

    #[test]
    fn betweenness_trivial_graphs() {
        assert!(betweenness_centrality(&DiGraph::new(0)).is_empty());
        assert_eq!(betweenness_centrality(&DiGraph::new(2)), vec![0.0, 0.0]);
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        let mut tri = DiGraph::new(3);
        tri.add_edge(0, 1, 1.0);
        tri.add_edge(1, 2, 1.0);
        tri.add_edge(2, 0, 1.0);
        assert!((clustering_coefficient(&tri) - 1.0).abs() < 1e-12);
        let star = builders::star_graph(5, 0, |_, _| 1.0);
        assert_eq!(clustering_coefficient(&star), 0.0);
        assert_eq!(clustering_coefficient(&DiGraph::new(2)), 0.0);
    }

    #[test]
    fn mean_distance_counts_unreachable() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 2.0);
        let (mean, unreachable) = mean_distance(&g);
        assert_eq!(mean, 2.0);
        assert_eq!(unreachable, 5);
        let full = builders::complete_graph(3, |_, _| 1.5);
        let (m2, u2) = mean_distance(&full);
        assert!((m2 - 1.5).abs() < 1e-12);
        assert_eq!(u2, 0);
    }
}
