//! Property tests: the simulator's measured behaviour must match the
//! analytical model exactly under shortest-path routing, and greedy
//! routing must never beat it.

use proptest::prelude::*;
use rand::prelude::*;
use sp_core::{overlay_distances, Game, StrategyProfile};
use sp_metric::generators;
use sp_sim::{workload, LookupSimulator, Routing, SimConfig};

fn arb_setup() -> impl Strategy<Value = (Game, StrategyProfile)> {
    (2usize..=8, 0u64..5_000).prop_flat_map(|(n, seed)| {
        proptest::collection::vec((0..n, 0..n), 0..=(3 * n)).prop_map(move |pairs| {
            let mut rng = StdRng::seed_from_u64(seed);
            let space = generators::uniform_square(n, 50.0, &mut rng);
            let game = Game::from_space(&space, 1.0).unwrap();
            let links: Vec<(usize, usize)> = pairs.into_iter().filter(|&(a, b)| a != b).collect();
            let profile = StrategyProfile::from_links(n, &links).unwrap();
            (game, profile)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn measured_latency_equals_overlay_distance((game, profile) in arb_setup()) {
        let sim = LookupSimulator::new(&game, &profile, SimConfig::default()).unwrap();
        let analytic = overlay_distances(&game, &profile).unwrap();
        for (s, d) in workload::all_pairs(game.n()) {
            let r = sim.lookup(s, d);
            if analytic[(s, d)].is_finite() {
                prop_assert!(r.delivered, "({s},{d}) reachable but undelivered");
                prop_assert!((r.latency - analytic[(s, d)]).abs() <= 1e-9,
                    "({s},{d}): measured {} vs analytic {}", r.latency, analytic[(s, d)]);
            } else {
                prop_assert!(!r.delivered, "({s},{d}) unreachable but delivered");
            }
        }
    }

    #[test]
    fn greedy_never_beats_shortest_path((game, profile) in arb_setup()) {
        let sp = LookupSimulator::new(&game, &profile, SimConfig::default()).unwrap();
        let greedy = LookupSimulator::new(
            &game,
            &profile,
            SimConfig { routing: Routing::GreedyMetric, ..SimConfig::default() },
        ).unwrap();
        for (s, d) in workload::all_pairs(game.n()) {
            let g = greedy.lookup(s, d);
            if g.delivered {
                let o = sp.lookup(s, d);
                prop_assert!(o.delivered, "greedy delivered but shortest path failed?");
                prop_assert!(g.latency >= o.latency - 1e-9,
                    "greedy {} beat shortest path {}", g.latency, o.latency);
            }
        }
    }

    #[test]
    fn measured_stretch_matches_cost_model((game, profile) in arb_setup()) {
        // The paper's cost model: lookup latency = stretch × direct
        // distance. Verify via the stretch accessor.
        let sim = LookupSimulator::new(&game, &profile, SimConfig::default()).unwrap();
        let stretches = sp_core::stretch_matrix(&game, &profile).unwrap();
        for (s, d) in workload::all_pairs(game.n()) {
            if let Some(measured) = sim.lookup(s, d).stretch(&game) {
                prop_assert!((measured - stretches[(s, d)]).abs() <= 1e-9);
            }
        }
    }
}
