use sp_graph::{dijkstra_tree, DiGraph};

/// Precomputed shortest-path forwarding state: for every `(src, dst)`
/// pair, the first hop on a shortest `src → dst` path.
///
/// This is the steady-state routing table a structured overlay would
/// converge to; building it costs one Dijkstra per node.
///
/// # Example
///
/// ```
/// use sp_graph::{builders, DiGraph};
/// use sp_sim::NextHopTable;
///
/// let g = builders::bidirectional_path_graph(4, |_, _| 1.0);
/// let t = NextHopTable::build(&g);
/// assert_eq!(t.next_hop(0, 3), Some(1));
/// assert_eq!(t.next_hop(3, 0), Some(2));
/// assert_eq!(t.next_hop(2, 2), None); // already there
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NextHopTable {
    n: usize,
    /// Row-major: `table[src * n + dst]`; `usize::MAX` = unreachable or
    /// src == dst.
    table: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl NextHopTable {
    /// Builds the table from an overlay graph.
    #[must_use]
    pub fn build(g: &DiGraph) -> Self {
        let n = g.node_count();
        let mut table = vec![NONE; n * n];
        for src in 0..n {
            let tree = dijkstra_tree(g, src);
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                if let Some(path) = tree.path_to(dst) {
                    table[src * n + dst] = path[1];
                }
            }
        }
        NextHopTable { n, table }
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the empty table.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The first hop from `src` toward `dst`; `None` when `src == dst`
    /// or `dst` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of bounds.
    #[must_use]
    pub fn next_hop(&self, src: usize, dst: usize) -> Option<usize> {
        assert!(src < self.n && dst < self.n, "index out of bounds");
        let v = self.table[src * self.n + dst];
        (v != NONE).then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::builders;

    #[test]
    fn next_hops_follow_shortest_paths() {
        // Weighted diamond where the lower route wins.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 3, 10.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let t = NextHopTable::build(&g);
        assert_eq!(t.next_hop(0, 3), Some(2));
    }

    #[test]
    fn unreachable_destinations_have_no_hop() {
        let g = builders::path_graph(3, |_, _| 1.0);
        let t = NextHopTable::build(&g);
        assert_eq!(t.next_hop(2, 0), None);
        assert_eq!(t.next_hop(0, 2), Some(1));
    }

    #[test]
    fn empty_table() {
        let t = NextHopTable::build(&DiGraph::new(0));
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let t = NextHopTable::build(&DiGraph::new(2));
        let _ = t.next_hop(0, 5);
    }
}
