use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sp_core::{topology, CoreError, Game, GameSession, StrategyProfile};
use sp_graph::DiGraph;

use crate::NextHopTable;

/// Forwarding strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Routing {
    /// Follow precomputed shortest-path next hops (a converged DHT).
    /// Delivered latency equals the analytical overlay distance exactly.
    #[default]
    ShortestPath,
    /// Greedy metric routing: forward to the out-neighbour strictly
    /// closest to the target in the *underlying* metric; drop at local
    /// minima. The classic stateless locality strategy.
    GreedyMetric,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Forwarding strategy.
    pub routing: Routing,
    /// Hop budget per lookup; messages exceeding it are dropped.
    pub ttl: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            routing: Routing::ShortestPath,
            ttl: 64,
        }
    }
}

/// Outcome of one simulated lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupResult {
    /// Originating peer.
    pub src: usize,
    /// Target peer.
    pub dst: usize,
    /// Whether the message reached `dst`.
    pub delivered: bool,
    /// Accumulated latency at delivery (or at drop time).
    pub latency: f64,
    /// Hops taken.
    pub hops: usize,
}

impl LookupResult {
    /// Measured stretch `latency / d(src, dst)`; `None` for undelivered
    /// lookups or `src == dst`.
    #[must_use]
    pub fn stretch(&self, game: &Game) -> Option<f64> {
        if !self.delivered || self.src == self.dst {
            return None;
        }
        Some(self.latency / game.distance(self.src, self.dst))
    }
}

/// Aggregate results of a workload run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadStats {
    /// Per-lookup outcomes.
    pub results: Vec<LookupResult>,
}

impl WorkloadStats {
    /// Fraction of lookups delivered (1.0 for an empty workload).
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 1.0;
        }
        self.results.iter().filter(|r| r.delivered).count() as f64 / self.results.len() as f64
    }

    /// Mean latency of delivered lookups (`None` if none delivered).
    #[must_use]
    pub fn mean_latency(&self) -> Option<f64> {
        let delivered: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.delivered)
            .map(|r| r.latency)
            .collect();
        if delivered.is_empty() {
            None
        } else {
            Some(delivered.iter().sum::<f64>() / delivered.len() as f64)
        }
    }

    /// Mean measured stretch of delivered lookups (`None` if none).
    #[must_use]
    pub fn mean_stretch(&self, game: &Game) -> Option<f64> {
        let stretches: Vec<f64> = self
            .results
            .iter()
            .filter_map(|r| r.stretch(game))
            .collect();
        if stretches.is_empty() {
            None
        } else {
            Some(stretches.iter().sum::<f64>() / stretches.len() as f64)
        }
    }
}

/// The simulator: an overlay topology, a routing strategy, a virtual
/// clock, and an optional set of dead peers that silently drop traffic.
#[derive(Debug, Clone)]
pub struct LookupSimulator<'g> {
    game: &'g Game,
    topo: DiGraph,
    next_hop: Option<NextHopTable>,
    config: SimConfig,
    dead: Vec<bool>,
}

/// Virtual-clock event: a message arriving at a peer.
#[derive(Debug, PartialEq)]
struct Arrival {
    time: f64,
    at: usize,
    hops: usize,
}

impl Eq for Arrival {}
impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.at.cmp(&self.at))
            .then_with(|| other.hops.cmp(&self.hops))
    }
}
impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'g> LookupSimulator<'g> {
    /// Builds a simulator over the overlay `G[profile]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProfileSizeMismatch`] if the profile does not
    /// match the game.
    pub fn new(
        game: &'g Game,
        profile: &StrategyProfile,
        config: SimConfig,
    ) -> Result<Self, CoreError> {
        let topo = topology(game, profile)?;
        let next_hop = match config.routing {
            Routing::ShortestPath => Some(NextHopTable::build(&topo)),
            Routing::GreedyMetric => None,
        };
        Ok(LookupSimulator {
            game,
            topo,
            next_hop,
            config,
            dead: vec![false; game.n()],
        })
    }

    /// Builds a simulator over a [`GameSession`]'s current profile — the
    /// natural follow-up to a session-driven dynamics run (the session
    /// stays usable; the simulator snapshots the overlay).
    #[must_use]
    pub fn from_session(session: &'g GameSession, config: SimConfig) -> Self {
        LookupSimulator::new(session.game(), session.profile(), config)
            .expect("a session's game and profile always agree on size")
    }

    /// Marks peers as dead: they silently drop any message arriving at
    /// them (and originate none). Routing tables are *not* recomputed —
    /// this models the window before failure detection.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn kill_peers(&mut self, peers: &[usize]) {
        for &p in peers {
            assert!(p < self.game.n(), "peer {p} out of bounds");
            self.dead[p] = true;
        }
    }

    /// The overlay being simulated.
    #[must_use]
    pub fn overlay(&self) -> &DiGraph {
        &self.topo
    }

    fn forward(&self, at: usize, dst: usize) -> Option<usize> {
        match self.config.routing {
            Routing::ShortestPath => self
                .next_hop
                .as_ref()
                .expect("built for shortest-path routing")
                .next_hop(at, dst),
            Routing::GreedyMetric => {
                let mut best: Option<(usize, f64)> = None;
                for e in self.topo.out_edges(at) {
                    let d = self.game.distance(e.to, dst);
                    let better = match best {
                        None => true,
                        Some((_, bd)) => d < bd,
                    };
                    if better {
                        best = Some((e.to, d));
                    }
                }
                // Strict progress requirement: drop at local minima.
                best.and_then(|(v, d)| (d < self.game.distance(at, dst)).then_some(v))
            }
        }
    }

    /// Simulates one lookup from `src` to `dst` on the virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of bounds.
    #[must_use]
    pub fn lookup(&self, src: usize, dst: usize) -> LookupResult {
        let n = self.game.n();
        assert!(src < n && dst < n, "peer out of bounds");
        let mut heap = BinaryHeap::new();
        heap.push(Arrival {
            time: 0.0,
            at: src,
            hops: 0,
        });
        // Event loop (a single message in flight; the heap form keeps the
        // machinery identical for multi-message workloads).
        while let Some(Arrival { time, at, hops }) = heap.pop() {
            if self.dead[at] {
                return LookupResult {
                    src,
                    dst,
                    delivered: false,
                    latency: time,
                    hops,
                };
            }
            if at == dst {
                return LookupResult {
                    src,
                    dst,
                    delivered: true,
                    latency: time,
                    hops,
                };
            }
            if hops >= self.config.ttl {
                return LookupResult {
                    src,
                    dst,
                    delivered: false,
                    latency: time,
                    hops,
                };
            }
            match self.forward(at, dst) {
                None => {
                    return LookupResult {
                        src,
                        dst,
                        delivered: false,
                        latency: time,
                        hops,
                    }
                }
                Some(next) => {
                    heap.push(Arrival {
                        time: time + self.game.distance(at, next),
                        at: next,
                        hops: hops + 1,
                    });
                }
            }
        }
        unreachable!("the event loop always returns");
    }

    /// Runs a batch of lookups.
    #[must_use]
    pub fn run_workload(&self, pairs: &[(usize, usize)]) -> WorkloadStats {
        WorkloadStats {
            results: pairs.iter().map(|&(s, d)| self.lookup(s, d)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::overlay_distances;
    use sp_metric::{LineSpace, Point2};

    fn line_game() -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 3.0, 4.0]).unwrap(), 1.0).unwrap()
    }

    fn chain(n: usize) -> StrategyProfile {
        let mut links = Vec::new();
        for i in 0..n - 1 {
            links.push((i, i + 1));
            links.push((i + 1, i));
        }
        StrategyProfile::from_links(n, &links).unwrap()
    }

    #[test]
    fn shortest_path_latency_matches_overlay_distance() {
        let game = line_game();
        let p = chain(4);
        let sim = LookupSimulator::new(&game, &p, SimConfig::default()).unwrap();
        let analytic = overlay_distances(&game, &p).unwrap();
        for s in 0..4 {
            for d in 0..4 {
                let r = sim.lookup(s, d);
                assert!(r.delivered);
                assert!((r.latency - analytic[(s, d)]).abs() < 1e-12, "({s},{d})");
            }
        }
    }

    #[test]
    fn greedy_routing_succeeds_on_the_line_chain() {
        let game = line_game();
        let p = chain(4);
        let config = SimConfig {
            routing: Routing::GreedyMetric,
            ..SimConfig::default()
        };
        let sim = LookupSimulator::new(&game, &p, config).unwrap();
        let stats = sim.run_workload(&crate::workload::all_pairs(4));
        assert_eq!(stats.success_rate(), 1.0);
        // On a line, greedy follows the chain: stretch exactly 1.
        assert!((stats.mean_stretch(&game).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_routing_fails_at_local_minima() {
        // Peers on a plane: 0 at origin, target 3 far right; 0's only
        // link goes to 1 which is *farther* from 3 than 0 is. Greedy must
        // drop; shortest-path routing still delivers via 1 -> 2 -> 3.
        let space = sp_metric::Euclidean2D::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(-1.0, 0.0),
            Point2::new(-1.0, 3.0),
            Point2::new(4.0, 0.5),
        ])
        .unwrap();
        let game = Game::from_space(&space, 1.0).unwrap();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let greedy = LookupSimulator::new(
            &game,
            &p,
            SimConfig {
                routing: Routing::GreedyMetric,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let r = greedy.lookup(0, 3);
        assert!(!r.delivered, "greedy should hit the local minimum at 0");
        let sp = LookupSimulator::new(&game, &p, SimConfig::default()).unwrap();
        assert!(sp.lookup(0, 3).delivered);
    }

    #[test]
    fn ttl_limits_hop_count() {
        let game = line_game();
        let p = chain(4);
        let config = SimConfig {
            ttl: 1,
            ..SimConfig::default()
        };
        let sim = LookupSimulator::new(&game, &p, config).unwrap();
        let r = sim.lookup(0, 3);
        assert!(!r.delivered);
        assert_eq!(r.hops, 1);
        // Adjacent still works.
        assert!(sim.lookup(0, 1).delivered);
    }

    #[test]
    fn dead_peers_drop_messages() {
        let game = line_game();
        let p = chain(4);
        let mut sim = LookupSimulator::new(&game, &p, SimConfig::default()).unwrap();
        sim.kill_peers(&[1]);
        let r = sim.lookup(0, 3);
        assert!(!r.delivered, "the only route crosses the dead peer");
        // Lookups that avoid the dead peer still work.
        assert!(sim.lookup(2, 3).delivered);
    }

    #[test]
    fn self_lookup_is_instant() {
        let game = line_game();
        let sim = LookupSimulator::new(&game, &chain(4), SimConfig::default()).unwrap();
        let r = sim.lookup(2, 2);
        assert!(r.delivered);
        assert_eq!(r.latency, 0.0);
        assert_eq!(r.hops, 0);
        assert_eq!(r.stretch(&game), None);
    }

    #[test]
    fn workload_stats_aggregate() {
        let game = line_game();
        let sim = LookupSimulator::new(&game, &chain(4), SimConfig::default()).unwrap();
        let stats = sim.run_workload(&[(0, 3), (3, 0), (1, 1)]);
        assert_eq!(stats.results.len(), 3);
        assert_eq!(stats.success_rate(), 1.0);
        assert!((stats.mean_latency().unwrap() - (4.0 + 4.0) / 3.0).abs() < 1e-12);
        let empty = WorkloadStats::default();
        assert_eq!(empty.success_rate(), 1.0);
        assert_eq!(empty.mean_latency(), None);
    }

    #[test]
    fn unreachable_destination_is_undelivered() {
        let game = line_game();
        let p = StrategyProfile::from_links(4, &[(0, 1)]).unwrap();
        let sim = LookupSimulator::new(&game, &p, SimConfig::default()).unwrap();
        let r = sim.lookup(0, 3);
        assert!(!r.delivered);
        assert_eq!(r.hops, 0);
    }
}
