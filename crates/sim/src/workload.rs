//! Lookup workload generators.

use rand::prelude::*;

/// All ordered pairs `(s, d)` with `s != d` — the workload implied by the
/// paper's social cost (every peer measures stretch to every other peer).
#[must_use]
pub fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .flat_map(|s| (0..n).filter(move |&d| d != s).map(move |d| (s, d)))
        .collect()
}

/// `count` uniformly random ordered pairs with distinct endpoints.
///
/// # Panics
///
/// Panics if `n < 2` and `count > 0`.
pub fn random_pairs<R: Rng + ?Sized>(n: usize, count: usize, rng: &mut R) -> Vec<(usize, usize)> {
    assert!(n >= 2 || count == 0, "need at least two peers for lookups");
    (0..count)
        .map(|_| {
            let s = rng.random_range(0..n);
            let mut d = rng.random_range(0..n - 1);
            if d >= s {
                d += 1;
            }
            (s, d)
        })
        .collect()
}

/// A hotspot workload: every lookup targets `hot`; sources uniform among
/// the others.
///
/// # Panics
///
/// Panics if `hot >= n` or `n < 2` with `count > 0`.
pub fn hotspot_pairs<R: Rng + ?Sized>(
    n: usize,
    hot: usize,
    count: usize,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    assert!(hot < n, "hot peer out of bounds");
    assert!(n >= 2 || count == 0, "need at least two peers for lookups");
    (0..count)
        .map(|_| {
            let mut s = rng.random_range(0..n - 1);
            if s >= hot {
                s += 1;
            }
            (s, hot)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairs_count_and_distinctness() {
        let pairs = all_pairs(4);
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn random_pairs_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = random_pairs(5, 100, &mut rng);
        assert_eq!(pairs.len(), 100);
        assert!(pairs.iter().all(|&(s, d)| s != d && s < 5 && d < 5));
    }

    #[test]
    fn hotspot_targets_hot() {
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = hotspot_pairs(6, 3, 50, &mut rng);
        assert!(pairs.iter().all(|&(s, d)| d == 3 && s != 3 && s < 6));
    }

    #[test]
    fn empty_workloads() {
        assert!(all_pairs(1).is_empty());
        let mut rng = StdRng::seed_from_u64(3);
        assert!(random_pairs(1, 0, &mut rng).is_empty());
    }
}
