//! Discrete-event lookup simulation over selfish-peer overlays.
//!
//! The paper's cost model asserts that a peer's lookup latency to `j` is
//! `stretch(i, j) · d(i, j)`. This crate *measures* that claim by
//! actually routing messages over the overlay with a virtual clock:
//!
//! * [`NextHopTable`] — shortest-path forwarding state (what a DHT's
//!   routing tables would converge to);
//! * greedy metric routing — forward to the out-neighbour closest to the
//!   target, the classic locality-based P2P strategy, which can fail at
//!   local minima;
//! * TTLs and dead peers — lookups can be dropped, connecting the
//!   simulation to the failure-injection analysis.
//!
//! With shortest-path routing the measured latency equals the analytical
//! overlay distance exactly (property-tested); greedy routing quantifies
//! how "routable" selfish topologies are without global state.
//!
//! # Example
//!
//! ```
//! use sp_core::{Game, StrategyProfile};
//! use sp_metric::LineSpace;
//! use sp_sim::{LookupSimulator, Routing, SimConfig};
//!
//! let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 3.0]).unwrap(), 1.0).unwrap();
//! let chain = StrategyProfile::from_links(3, &[(0,1),(1,0),(1,2),(2,1)]).unwrap();
//! let sim = LookupSimulator::new(&game, &chain, SimConfig::default()).unwrap();
//! let r = sim.lookup(0, 2);
//! assert!(r.delivered);
//! assert_eq!(r.latency, 3.0); // 0 -> 1 -> 2 along the line
//! assert_eq!(r.hops, 2);
//! ```

#![forbid(unsafe_code)]
// Index loops over small fixed-size numeric tables are clearer than
// iterator chains in this codebase's shortest-path/game kernels.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod routing;
mod simulator;
pub mod workload;

pub use routing::NextHopTable;
pub use simulator::{LookupResult, LookupSimulator, Routing, SimConfig, WorkloadStats};
