use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating metric spaces.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// A coordinate or distance was NaN or infinite.
    NonFiniteValue {
        /// A description of where the value appeared.
        context: &'static str,
    },
    /// Two distinct points are at distance zero (violates the identity of
    /// indiscernibles, and makes stretch undefined).
    CoincidentPoints {
        /// First point index.
        i: usize,
        /// Second point index.
        j: usize,
    },
    /// `d(i, j) != d(j, i)` beyond tolerance.
    Asymmetric {
        /// First point index.
        i: usize,
        /// Second point index.
        j: usize,
    },
    /// `d(i, i) != 0`.
    NonZeroDiagonal {
        /// The point index.
        i: usize,
    },
    /// A negative distance.
    NegativeDistance {
        /// First point index.
        i: usize,
        /// Second point index.
        j: usize,
    },
    /// The triangle inequality fails: `d(i, k) > d(i, j) + d(j, k)`.
    TriangleViolation {
        /// Start point.
        i: usize,
        /// Intermediate point.
        j: usize,
        /// End point.
        k: usize,
    },
    /// Mismatched dimensions (e.g. points of different arity).
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MetricError::NonFiniteValue { context } => {
                write!(f, "non-finite value in {context}")
            }
            MetricError::CoincidentPoints { i, j } => {
                write!(f, "points {i} and {j} are distinct but at distance zero")
            }
            MetricError::Asymmetric { i, j } => {
                write!(f, "distance between {i} and {j} is not symmetric")
            }
            MetricError::NonZeroDiagonal { i } => {
                write!(f, "distance from point {i} to itself is not zero")
            }
            MetricError::NegativeDistance { i, j } => {
                write!(f, "negative distance between points {i} and {j}")
            }
            MetricError::TriangleViolation { i, j, k } => {
                write!(f, "triangle inequality violated on points {i}, {j}, {k}")
            }
            MetricError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for MetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        assert!(MetricError::CoincidentPoints { i: 1, j: 2 }
            .to_string()
            .contains("distance zero"));
        assert!(MetricError::TriangleViolation { i: 0, j: 1, k: 2 }
            .to_string()
            .contains("triangle"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<MetricError>();
    }
}
