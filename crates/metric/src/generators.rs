//! Random and structured peer-placement generators.
//!
//! All generators are deterministic given an RNG, so experiments can be
//! reproduced from a seed.
//!
//! # Example
//!
//! ```
//! use rand::prelude::*;
//! use sp_metric::{generators, MetricSpace};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let space = generators::uniform_square(20, 100.0, &mut rng);
//! assert_eq!(space.len(), 20);
//! ```

use rand::prelude::*;
use sp_graph::{floyd_warshall, DiGraph, DistanceMatrix};

use crate::{Euclidean2D, LineSpace, MatrixMetric, Point2};

/// `n` points uniformly at random in the square `[0, side]²`.
///
/// Exact duplicates (probability zero, but floats) are re-sampled.
///
/// # Panics
///
/// Panics if `side` is not a positive finite number.
pub fn uniform_square<R: Rng + ?Sized>(n: usize, side: f64, rng: &mut R) -> Euclidean2D {
    assert!(
        side.is_finite() && side > 0.0,
        "side must be positive, got {side}"
    );
    let mut points: Vec<Point2> = Vec::with_capacity(n);
    while points.len() < n {
        let p = Point2::new(rng.random_range(0.0..side), rng.random_range(0.0..side));
        if !points.contains(&p) {
            points.push(p);
        }
    }
    Euclidean2D::new(points).expect("duplicates were filtered during sampling")
}

/// `n` points uniformly at random on the segment `[0, length]`.
///
/// # Panics
///
/// Panics if `length` is not a positive finite number.
pub fn uniform_line<R: Rng + ?Sized>(n: usize, length: f64, rng: &mut R) -> LineSpace {
    assert!(
        length.is_finite() && length > 0.0,
        "length must be positive, got {length}"
    );
    let mut positions: Vec<f64> = Vec::with_capacity(n);
    while positions.len() < n {
        let p = rng.random_range(0.0..length);
        if !positions.contains(&p) {
            positions.push(p);
        }
    }
    LineSpace::new(positions).expect("duplicates were filtered during sampling")
}

/// A `rows × cols` grid with the given spacing — the canonical
/// growth-bounded 2-D metric.
///
/// # Panics
///
/// Panics if `spacing` is not a positive finite number.
#[must_use]
pub fn grid_2d(rows: usize, cols: usize, spacing: f64) -> Euclidean2D {
    assert!(
        spacing.is_finite() && spacing > 0.0,
        "spacing must be positive, got {spacing}"
    );
    let mut points = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            points.push(Point2::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    Euclidean2D::new(points).expect("grid points are distinct")
}

/// A line whose consecutive gaps grow geometrically: position of peer `i`
/// is `scale · base^i`.
///
/// With `base > 1` this produces the kind of exponentially-stretching
/// placement underlying the paper's Figure 1 (the exact Figure 1 positions,
/// which alternate `α^{i-1}/2` and `α^{i-1}`, live in
/// `sp-constructions::line`).
///
/// # Panics
///
/// Panics if `base <= 1` or `scale <= 0`, or if positions overflow `f64`.
#[must_use]
pub fn exponential_line(n: usize, base: f64, scale: f64) -> LineSpace {
    assert!(
        base > 1.0 && base.is_finite(),
        "base must be > 1, got {base}"
    );
    assert!(
        scale > 0.0 && scale.is_finite(),
        "scale must be positive, got {scale}"
    );
    let positions: Vec<f64> = (0..n).map(|i| scale * base.powi(i as i32)).collect();
    assert!(
        positions.iter().all(|p| p.is_finite()),
        "positions overflow f64 for n={n}, base={base}"
    );
    LineSpace::new(positions).expect("geometric positions are strictly increasing")
}

/// Builder for clustered placements: `clusters` groups of `per_cluster`
/// peers each, with cluster centres sampled uniformly in a square and
/// members perturbed within a small radius. Mirrors the five-cluster
/// geometry of the paper's Figure 2 qualitatively.
///
/// # Example
///
/// ```
/// use rand::prelude::*;
/// use sp_metric::{ClusteredPoints, MetricSpace};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let space = ClusteredPoints::new(4, 5)
///     .area_side(1000.0)
///     .cluster_radius(10.0)
///     .build(&mut rng);
/// assert_eq!(space.len(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredPoints {
    clusters: usize,
    per_cluster: usize,
    area_side: f64,
    cluster_radius: f64,
}

impl ClusteredPoints {
    /// Starts a builder for `clusters × per_cluster` peers.
    #[must_use]
    pub fn new(clusters: usize, per_cluster: usize) -> Self {
        ClusteredPoints {
            clusters,
            per_cluster,
            area_side: 100.0,
            cluster_radius: 1.0,
        }
    }

    /// Side of the square in which cluster centres are drawn
    /// (default 100.0).
    ///
    /// # Panics
    ///
    /// Panics if `side` is not a positive finite number.
    #[must_use]
    pub fn area_side(mut self, side: f64) -> Self {
        assert!(
            side.is_finite() && side > 0.0,
            "side must be positive, got {side}"
        );
        self.area_side = side;
        self
    }

    /// Radius of the disc around each centre in which members are placed
    /// (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not a positive finite number.
    #[must_use]
    pub fn cluster_radius(mut self, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "radius must be positive, got {radius}"
        );
        self.cluster_radius = radius;
        self
    }

    /// Samples the placement.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Euclidean2D {
        let mut points: Vec<Point2> = Vec::with_capacity(self.clusters * self.per_cluster);
        for _ in 0..self.clusters {
            let cx = rng.random_range(0.0..self.area_side);
            let cy = rng.random_range(0.0..self.area_side);
            let mut placed = 0;
            while placed < self.per_cluster {
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                let r = self.cluster_radius * rng.random_range(0.0f64..1.0).sqrt();
                let p = Point2::new(cx + r * angle.cos(), cy + r * angle.sin());
                if !points.contains(&p) {
                    points.push(p);
                    placed += 1;
                }
            }
        }
        Euclidean2D::new(points).expect("duplicates were filtered during sampling")
    }
}

/// A random metric with all distances in `[lo, hi]` where `hi <= 2·lo`,
/// which satisfies the triangle inequality automatically.
///
/// These "bounded-ratio" metrics are maximally unstructured: they are valid
/// inputs for Theorem 4.1 (arbitrary metrics) but far from Euclidean.
///
/// # Panics
///
/// Panics unless `0 < lo <= hi <= 2·lo`.
pub fn random_bounded_ratio_metric<R: Rng + ?Sized>(
    n: usize,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> MatrixMetric {
    assert!(lo > 0.0 && lo.is_finite(), "lo must be positive, got {lo}");
    assert!(
        hi >= lo && hi <= 2.0 * lo,
        "need lo <= hi <= 2*lo, got [{lo}, {hi}]"
    );
    let mut m = DistanceMatrix::new_filled(n, 0.0);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = rng.random_range(lo..=hi);
            m[(i, j)] = d;
            m[(j, i)] = d;
        }
    }
    MatrixMetric::new(m, 1e-9).expect("bounded-ratio matrices satisfy the metric axioms")
}

/// The *metric closure* of an arbitrary positive symmetric weight matrix:
/// distances are replaced by all-pairs shortest paths in the complete graph
/// with those weights, which always yields a metric.
///
/// Use this to turn rough measured latencies into a valid game input.
///
/// # Panics
///
/// Panics if the matrix is not symmetric (tolerance `1e-9`), has
/// non-positive off-diagonal entries, or a non-zero diagonal.
#[must_use]
pub fn metric_closure(weights: &DistanceMatrix) -> MatrixMetric {
    let n = weights.len();
    assert!(
        weights.is_symmetric(1e-9),
        "weight matrix must be symmetric"
    );
    let mut g = DiGraph::new(n);
    for i in 0..n {
        assert!(weights[(i, i)] == 0.0, "diagonal must be zero");
        for j in 0..n {
            if i != j {
                let w = weights[(i, j)];
                assert!(
                    w > 0.0 && w.is_finite(),
                    "off-diagonal weights must be positive"
                );
                g.add_edge(i, j, w);
            }
        }
    }
    let closed = floyd_warshall(&g);
    MatrixMetric::new(closed, 1e-6).expect("shortest-path closure is a metric")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate_metric, MetricSpace};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn uniform_square_is_valid_metric() {
        let s = uniform_square(30, 50.0, &mut rng());
        assert_eq!(s.len(), 30);
        assert!(validate_metric(&s, 1e-9).is_ok());
        assert!(s.diameter() <= 50.0 * 2f64.sqrt());
    }

    #[test]
    fn uniform_line_in_range() {
        let s = uniform_line(25, 10.0, &mut rng());
        assert_eq!(s.len(), 25);
        assert!(s.positions().iter().all(|&p| (0.0..10.0).contains(&p)));
        assert!(validate_metric(&s, 1e-9).is_ok());
    }

    #[test]
    fn grid_counts_and_spacing() {
        let g = grid_2d(3, 4, 2.0);
        assert_eq!(g.len(), 12);
        assert_eq!(g.distance(0, 1), 2.0); // adjacent in a row
        assert_eq!(g.distance(0, 4), 2.0); // adjacent in a column
        assert!(validate_metric(&g, 1e-9).is_ok());
    }

    #[test]
    fn exponential_line_gaps_grow() {
        let s = exponential_line(6, 3.0, 1.0);
        let p = s.positions();
        for i in 1..5 {
            let gap_prev = p[i] - p[i - 1];
            let gap_next = p[i + 1] - p[i];
            assert!(gap_next > gap_prev);
        }
    }

    #[test]
    #[should_panic(expected = "base must be > 1")]
    fn exponential_line_rejects_base_one() {
        let _ = exponential_line(4, 1.0, 1.0);
    }

    #[test]
    fn clustered_builder_produces_tight_groups() {
        let s = ClusteredPoints::new(3, 4)
            .area_side(1000.0)
            .cluster_radius(1.0)
            .build(&mut rng());
        assert_eq!(s.len(), 12);
        // Members of the same cluster are within 2 radii of each other.
        for c in 0..3 {
            for a in 0..4 {
                for b in 0..4 {
                    let (i, j) = (c * 4 + a, c * 4 + b);
                    assert!(s.distance(i, j) <= 2.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn bounded_ratio_metric_is_valid() {
        let m = random_bounded_ratio_metric(12, 1.0, 2.0, &mut rng());
        assert!(validate_metric(&m, 1e-9).is_ok());
        assert!(m.matrix().max_finite().unwrap() <= 2.0);
    }

    #[test]
    #[should_panic(expected = "lo <= hi <= 2*lo")]
    fn bounded_ratio_rejects_wide_range() {
        let _ = random_bounded_ratio_metric(3, 1.0, 3.0, &mut rng());
    }

    #[test]
    fn metric_closure_fixes_triangle_violations() {
        // d(0,2) = 10 violates triangle via 0-1-2 (1 + 1); closure fixes it.
        let raw =
            DistanceMatrix::from_row_major(3, vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0])
                .unwrap();
        let m = metric_closure(&raw);
        assert_eq!(m.distance(0, 2), 2.0);
        assert!(validate_metric(&m, 1e-9).is_ok());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = uniform_square(10, 5.0, &mut StdRng::seed_from_u64(9));
        let b = uniform_square(10, 5.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.points(), b.points());
    }
}
