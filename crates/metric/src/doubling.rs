//! Doubling-dimension and growth-bound diagnostics.
//!
//! The paper emphasises that its `O(min(α, n))` upper bound holds for
//! arbitrary metrics, "including the popular growth-bounded and doubling
//! metrics". These estimators let experiments report which family a given
//! workload falls into.
//!
//! # Example
//!
//! ```
//! use sp_metric::{doubling, generators};
//!
//! let grid = generators::grid_2d(8, 8, 1.0);
//! // A flat grid has small doubling constant (dimension ~2).
//! let lambda = doubling::doubling_constant_estimate(&grid, 8);
//! assert!(lambda <= 16);
//! ```

use crate::MetricSpace;

/// Number of points within distance `r` of point `c` (including `c`).
fn ball_size<M: MetricSpace + ?Sized>(space: &M, c: usize, r: f64) -> usize {
    (0..space.len())
        .filter(|&j| space.distance(c, j) <= r)
        .count()
}

/// Members of the ball `B(c, r)`.
fn ball_members<M: MetricSpace + ?Sized>(space: &M, c: usize, r: f64) -> Vec<usize> {
    (0..space.len())
        .filter(|&j| space.distance(c, j) <= r)
        .collect()
}

/// Estimates the **doubling constant** λ: the maximum, over sampled centres
/// and `scales` geometric radius scales, of the number of radius-`r/2`
/// balls needed (greedy cover) to cover `B(c, r)`.
///
/// A metric family is *doubling* if λ is bounded by a constant independent
/// of `n`; the doubling dimension is `log₂ λ`. The greedy cover
/// overestimates the optimal cover by at most a `O(log)` factor, so this is
/// an upper estimate.
///
/// Returns 1 for spaces with fewer than two points.
///
/// # Panics
///
/// Panics if `scales == 0`.
#[must_use]
pub fn doubling_constant_estimate<M: MetricSpace + ?Sized>(space: &M, scales: usize) -> usize {
    assert!(scales > 0, "need at least one radius scale");
    let n = space.len();
    if n < 2 {
        return 1;
    }
    let d_min = space.min_distance();
    let d_max = space.diameter();
    let mut lambda = 1usize;
    for s in 0..scales {
        // Geometric sweep of radii from the diameter down to d_min.
        let t = s as f64 / scales as f64;
        let r = d_max * (d_min / d_max).powf(t);
        if r <= 0.0 {
            continue;
        }
        for c in 0..n {
            let members = ball_members(space, c, r);
            if members.len() <= 1 {
                continue;
            }
            // Greedy cover with balls of radius r/2 centred at points.
            let mut uncovered = members;
            let mut cover = 0usize;
            while let Some(&pick) = uncovered.first() {
                cover += 1;
                uncovered.retain(|&x| space.distance(pick, x) > r / 2.0);
            }
            lambda = lambda.max(cover);
        }
    }
    lambda
}

/// Estimates the **growth bound**: the maximum over sampled centres and
/// scales of `|B(c, 2r)| / |B(c, r)|` (only where `|B(c, r)| >= 1`).
///
/// A metric family is *growth-bounded* when this ratio is bounded by a
/// constant.
///
/// Returns 1.0 for spaces with fewer than two points.
///
/// # Panics
///
/// Panics if `scales == 0`.
#[must_use]
pub fn growth_bound_estimate<M: MetricSpace + ?Sized>(space: &M, scales: usize) -> f64 {
    assert!(scales > 0, "need at least one radius scale");
    let n = space.len();
    if n < 2 {
        return 1.0;
    }
    let d_min = space.min_distance();
    let d_max = space.diameter();
    let mut bound = 1.0f64;
    for s in 0..scales {
        let t = s as f64 / scales as f64;
        let r = (d_max / 2.0) * (d_min / d_max).powf(t);
        if r <= 0.0 {
            continue;
        }
        for c in 0..n {
            let small = ball_size(space, c, r);
            let big = ball_size(space, c, 2.0 * r);
            bound = bound.max(big as f64 / small as f64);
        }
    }
    bound
}

/// Returns `true` if the estimated growth bound does not exceed `c`.
///
/// # Panics
///
/// Panics if `c < 1.0`.
#[must_use]
pub fn is_growth_bounded<M: MetricSpace + ?Sized>(space: &M, c: f64) -> bool {
    assert!(c >= 1.0, "growth bound must be at least 1, got {c}");
    growth_bound_estimate(space, 12) <= c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::LineSpace;

    #[test]
    fn uniform_line_is_doubling() {
        let s = LineSpace::new((0..32).map(|i| i as f64).collect()).unwrap();
        // 1-D uniform metric: doubling constant is tiny.
        assert!(doubling_constant_estimate(&s, 8) <= 4);
        assert!(growth_bound_estimate(&s, 8) <= 3.0);
        assert!(is_growth_bounded(&s, 3.0));
    }

    #[test]
    fn grid_is_doubling() {
        let g = generators::grid_2d(6, 6, 1.0);
        assert!(doubling_constant_estimate(&g, 8) <= 20);
    }

    #[test]
    fn star_metric_is_not_doubling() {
        // n-1 leaves all at distance 1 from each other via bounded-ratio
        // construction: every ball of radius 1 needs ~n half-radius balls.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let m = generators::random_bounded_ratio_metric(24, 1.0, 1.2, &mut rng);
        let lambda = doubling_constant_estimate(&m, 6);
        assert!(
            lambda >= 12,
            "uniform-ish metric should need many half-balls, got {lambda}"
        );
    }

    #[test]
    fn tiny_spaces_are_trivially_bounded() {
        let s = LineSpace::new(vec![0.0]).unwrap();
        assert_eq!(doubling_constant_estimate(&s, 4), 1);
        assert_eq!(growth_bound_estimate(&s, 4), 1.0);
        let e = LineSpace::new(vec![]).unwrap();
        assert_eq!(doubling_constant_estimate(&e, 4), 1);
    }

    #[test]
    fn exponential_line_growth() {
        let s = generators::exponential_line(12, 3.0, 1.0);
        // Exponentially-spaced lines are still doubling (each ball contains
        // few points), sanity-check the estimator runs and stays modest.
        let g = growth_bound_estimate(&s, 10);
        assert!(g >= 1.0);
        assert!(g <= 12.0);
    }
}
