use sp_graph::DistanceMatrix;

use crate::MetricError;

/// A finite metric space: `len()` points with pairwise distances.
///
/// Implementations must satisfy the metric axioms for all `i`, `j`, `k`:
///
/// * `distance(i, i) == 0`,
/// * `distance(i, j) > 0` for `i != j` (identity of indiscernibles — the
///   game's stretch `d_G(i,j)/d(i,j)` is undefined otherwise),
/// * `distance(i, j) == distance(j, i)` (symmetry),
/// * `distance(i, k) <= distance(i, j) + distance(j, k)` (triangle
///   inequality).
///
/// Constructors of concrete spaces in this crate validate what they can
/// cheaply; [`validate_metric`] checks everything exhaustively in `O(n³)`.
pub trait MetricSpace {
    /// Number of points.
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `i` or `j` is out of bounds.
    fn distance(&self, i: usize, j: usize) -> f64;

    /// Returns `true` if the space has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the full distance matrix.
    fn to_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_fn(self.len(), |i, j| self.distance(i, j))
    }

    /// The diameter (largest pairwise distance), 0.0 for fewer than two
    /// points.
    fn diameter(&self) -> f64 {
        let n = self.len();
        let mut d = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                d = d.max(self.distance(i, j));
            }
        }
        d
    }

    /// The smallest distance between distinct points, `f64::INFINITY` for
    /// fewer than two points.
    fn min_distance(&self) -> f64 {
        let n = self.len();
        let mut d = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                d = d.min(self.distance(i, j));
            }
        }
        d
    }
}

/// Exhaustively validates the metric axioms in `O(n³)`.
///
/// `tol` is the absolute tolerance used for the symmetry and triangle
/// checks (floating-point geometry is rarely exact). A `tol` of `1e-9`
/// is appropriate for coordinates of magnitude ~1.
///
/// # Errors
///
/// Returns the first violated axiom as a [`MetricError`].
///
/// # Example
///
/// ```
/// use sp_metric::{validate_metric, LineSpace};
///
/// let space = LineSpace::new(vec![0.0, 1.0, 5.0]).unwrap();
/// assert!(validate_metric(&space, 1e-9).is_ok());
/// ```
pub fn validate_metric<M: MetricSpace + ?Sized>(space: &M, tol: f64) -> Result<(), MetricError> {
    let n = space.len();
    for i in 0..n {
        let dii = space.distance(i, i);
        if !dii.is_finite() {
            return Err(MetricError::NonFiniteValue {
                context: "diagonal distance",
            });
        }
        if dii.abs() > tol {
            return Err(MetricError::NonZeroDiagonal { i });
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let dij = space.distance(i, j);
            let dji = space.distance(j, i);
            if !dij.is_finite() || !dji.is_finite() {
                return Err(MetricError::NonFiniteValue {
                    context: "pairwise distance",
                });
            }
            if dij < 0.0 {
                return Err(MetricError::NegativeDistance { i, j });
            }
            if dij == 0.0 {
                return Err(MetricError::CoincidentPoints { i, j });
            }
            if (dij - dji).abs() > tol {
                return Err(MetricError::Asymmetric { i, j });
            }
        }
    }
    for j in 0..n {
        for i in 0..n {
            if i == j {
                continue;
            }
            let dij = space.distance(i, j);
            for k in 0..n {
                if k == i || k == j {
                    continue;
                }
                if space.distance(i, k) > dij + space.distance(j, k) + tol {
                    return Err(MetricError::TriangleViolation { i, j, k });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineSpace, MatrixMetric};

    #[test]
    fn line_space_is_a_valid_metric() {
        let s = LineSpace::new(vec![0.0, 0.5, 2.0, 10.0]).unwrap();
        assert!(validate_metric(&s, 1e-12).is_ok());
    }

    #[test]
    fn diameter_and_min_distance() {
        let s = LineSpace::new(vec![0.0, 1.0, 10.0]).unwrap();
        assert_eq!(s.diameter(), 10.0);
        assert_eq!(s.min_distance(), 1.0);
        let single = LineSpace::new(vec![3.0]).unwrap();
        assert_eq!(single.diameter(), 0.0);
        assert_eq!(single.min_distance(), f64::INFINITY);
    }

    #[test]
    fn detects_triangle_violation() {
        // d(0,2) = 10 but d(0,1) + d(1,2) = 2: not a metric.
        let m = MatrixMetric::new_unchecked(
            DistanceMatrix::from_row_major(3, vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0])
                .unwrap(),
        );
        assert!(matches!(
            validate_metric(&m, 1e-9),
            Err(MetricError::TriangleViolation { .. })
        ));
    }

    #[test]
    fn detects_coincident_points() {
        let m = MatrixMetric::new_unchecked(
            DistanceMatrix::from_row_major(2, vec![0.0, 0.0, 0.0, 0.0]).unwrap(),
        );
        assert_eq!(
            validate_metric(&m, 1e-9),
            Err(MetricError::CoincidentPoints { i: 0, j: 1 })
        );
    }

    #[test]
    fn detects_asymmetry() {
        let m = MatrixMetric::new_unchecked(
            DistanceMatrix::from_row_major(2, vec![0.0, 1.0, 2.0, 0.0]).unwrap(),
        );
        assert_eq!(
            validate_metric(&m, 1e-9),
            Err(MetricError::Asymmetric { i: 0, j: 1 })
        );
    }

    #[test]
    fn empty_space_is_valid() {
        let m = MatrixMetric::new_unchecked(DistanceMatrix::new_filled(0, 0.0));
        assert!(validate_metric(&m, 0.0).is_ok());
        assert!(m.is_empty());
    }

    #[test]
    fn to_matrix_roundtrip() {
        let s = LineSpace::new(vec![0.0, 2.0, 5.0]).unwrap();
        let m = s.to_matrix();
        assert_eq!(m[(0, 2)], 5.0);
        assert_eq!(m[(2, 1)], 3.0);
        assert_eq!(m[(1, 1)], 0.0);
    }
}
