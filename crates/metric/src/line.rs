use crate::{MetricError, MetricSpace};

/// Peers on the 1-dimensional Euclidean line.
///
/// This is the metric space of the paper's lower bound (Section 4.2):
/// intriguingly, the Price of Anarchy already deteriorates to
/// `Θ(min(α, n))` on a line.
///
/// Positions need not be sorted; they must be finite and pairwise distinct.
///
/// # Example
///
/// ```
/// use sp_metric::{LineSpace, MetricSpace};
///
/// let s = LineSpace::new(vec![0.0, 2.0, 7.0]).unwrap();
/// assert_eq!(s.distance(0, 2), 7.0);
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LineSpace {
    positions: Vec<f64>,
}

impl LineSpace {
    /// Creates a line space from peer positions.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::NonFiniteValue`] for NaN/infinite positions
    /// and [`MetricError::CoincidentPoints`] if two positions coincide.
    pub fn new(positions: Vec<f64>) -> Result<Self, MetricError> {
        if positions.iter().any(|p| !p.is_finite()) {
            return Err(MetricError::NonFiniteValue {
                context: "line position",
            });
        }
        // Sort indices by position to detect duplicates in O(n log n).
        let mut idx: Vec<usize> = (0..positions.len()).collect();
        idx.sort_by(|&a, &b| positions[a].total_cmp(&positions[b]));
        for w in idx.windows(2) {
            if positions[w[0]] == positions[w[1]] {
                let (i, j) = (w[0].min(w[1]), w[0].max(w[1]));
                return Err(MetricError::CoincidentPoints { i, j });
            }
        }
        Ok(LineSpace { positions })
    }

    /// The position of peer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn position(&self, i: usize) -> f64 {
        self.positions[i]
    }

    /// All positions, indexed by peer.
    #[must_use]
    pub fn positions(&self) -> &[f64] {
        &self.positions
    }

    /// Peer indices sorted by position, left to right.
    #[must_use]
    pub fn sorted_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.positions.len()).collect();
        idx.sort_by(|&a, &b| self.positions[a].total_cmp(&self.positions[b]));
        idx
    }
}

impl MetricSpace for LineSpace {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        (self.positions[i] - self.positions[j]).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_absolute_differences() {
        let s = LineSpace::new(vec![5.0, -1.0, 3.0]).unwrap();
        assert_eq!(s.distance(0, 1), 6.0);
        assert_eq!(s.distance(1, 2), 4.0);
        assert_eq!(s.distance(2, 2), 0.0);
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            LineSpace::new(vec![1.0, 2.0, 1.0]),
            Err(MetricError::CoincidentPoints { i: 0, j: 2 })
        );
    }

    #[test]
    fn rejects_non_finite() {
        assert!(LineSpace::new(vec![f64::NAN]).is_err());
        assert!(LineSpace::new(vec![f64::NEG_INFINITY, 0.0]).is_err());
    }

    #[test]
    fn sorted_indices_orders_by_position() {
        let s = LineSpace::new(vec![5.0, -1.0, 3.0]).unwrap();
        assert_eq!(s.sorted_indices(), vec![1, 2, 0]);
    }

    #[test]
    fn empty_line_is_fine() {
        let s = LineSpace::new(vec![]).unwrap();
        assert!(s.is_empty());
    }
}
