use crate::MetricError;

/// A point in the Euclidean plane.
///
/// # Example
///
/// ```
/// use sp_metric::Point2;
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is NaN or infinite.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        assert!(
            x.is_finite() && y.is_finite(),
            "coordinates must be finite, got ({x}, {y})"
        );
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance_to(self, other: Point2) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Midpoint between `self` and `other`.
    #[must_use]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Translates the point by `(dx, dy)`.
    ///
    /// # Panics
    ///
    /// Panics if the translated coordinates are not finite.
    #[must_use]
    pub fn translated(self, dx: f64, dy: f64) -> Point2 {
        Point2::new(self.x + dx, self.y + dy)
    }
}

/// A point in `k`-dimensional Euclidean space.
///
/// # Example
///
/// ```
/// use sp_metric::PointN;
///
/// let a = PointN::new(vec![0.0, 0.0, 0.0]).unwrap();
/// let b = PointN::new(vec![1.0, 2.0, 2.0]).unwrap();
/// assert_eq!(a.distance_to(&b).unwrap(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointN {
    coords: Vec<f64>,
}

impl PointN {
    /// Creates a point from its coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::NonFiniteValue`] if any coordinate is NaN or
    /// infinite.
    pub fn new(coords: Vec<f64>) -> Result<Self, MetricError> {
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(MetricError::NonFiniteValue {
                context: "point coordinate",
            });
        }
        Ok(PointN { coords })
    }

    /// Dimension (number of coordinates).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinates as a slice.
    #[must_use]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Euclidean distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DimensionMismatch`] if dimensions differ.
    pub fn distance_to(&self, other: &PointN) -> Result<f64, MetricError> {
        if self.dim() != other.dim() {
            return Err(MetricError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        let sq: f64 = self
            .coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        Ok(sq.sqrt())
    }
}

impl From<Point2> for PointN {
    fn from(p: Point2) -> Self {
        PointN {
            coords: vec![p.x, p.y],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point2_basic_geometry() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(4.0, 5.0);
        assert_eq!(a.distance_to(b), 5.0);
        assert_eq!(b.distance_to(a), 5.0);
        assert_eq!(a.distance_to(a), 0.0);
        assert_eq!(a.midpoint(b), Point2::new(2.5, 3.0));
        assert_eq!(a.translated(-1.0, -1.0), Point2::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn point2_rejects_nan() {
        let _ = Point2::new(f64::NAN, 0.0);
    }

    #[test]
    fn pointn_distance_and_dim() {
        let a = PointN::new(vec![0.0; 4]).unwrap();
        let b = PointN::new(vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(a.dim(), 4);
        assert_eq!(a.distance_to(&b).unwrap(), 2.0);
    }

    #[test]
    fn pointn_dimension_mismatch() {
        let a = PointN::new(vec![0.0]).unwrap();
        let b = PointN::new(vec![0.0, 0.0]).unwrap();
        assert_eq!(
            a.distance_to(&b),
            Err(MetricError::DimensionMismatch {
                expected: 1,
                actual: 2
            })
        );
    }

    #[test]
    fn pointn_rejects_non_finite() {
        assert!(PointN::new(vec![f64::INFINITY]).is_err());
        assert!(PointN::new(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn point2_converts_to_pointn() {
        let p: PointN = Point2::new(2.0, 3.0).into();
        assert_eq!(p.coords(), &[2.0, 3.0]);
    }
}
