//! Metric spaces for peer placement.
//!
//! The network creation game of Moscibroda, Schmid & Wattenhofer models
//! peers as points of a metric space `M = (V, d)` whose distance function
//! describes underlying latencies. This crate provides:
//!
//! * the [`MetricSpace`] trait — finite point sets with pairwise distances;
//! * concrete spaces: [`LineSpace`] (1-D Euclidean, the space of the paper's
//!   lower bound), [`Euclidean2D`] (the space of the paper's non-existence
//!   instance), [`EuclideanND`], and [`MatrixMetric`] (arbitrary finite
//!   metrics given explicitly);
//! * random placement generators ([`generators`]) for uniform, clustered,
//!   grid, and exponentially-spaced workloads;
//! * metric diagnostics ([`doubling`]): validation of the metric axioms,
//!   doubling-dimension estimation, and growth-bounded checks — the paper's
//!   upper bound holds for *arbitrary* metrics including these families.
//!
//! # Example
//!
//! ```
//! use sp_metric::{Euclidean2D, MetricSpace, Point2};
//!
//! let space = Euclidean2D::new(vec![
//!     Point2::new(0.0, 0.0),
//!     Point2::new(3.0, 4.0),
//! ]).unwrap();
//! assert_eq!(space.distance(0, 1), 5.0);
//! ```

#![forbid(unsafe_code)]
// Index loops over small fixed-size numeric tables are clearer than
// iterator chains in this codebase's shortest-path/game kernels.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod doubling;
mod error;
mod euclidean;
pub mod generators;
mod line;
mod matrix_metric;
mod point;
mod ring;
mod space;

pub use error::MetricError;
pub use euclidean::{Euclidean2D, EuclideanND};
pub use generators::ClusteredPoints;
pub use line::LineSpace;
pub use matrix_metric::MatrixMetric;
pub use point::{Point2, PointN};
pub use ring::RingSpace;
pub use space::{validate_metric, MetricSpace};
