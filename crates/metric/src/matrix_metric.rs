use sp_graph::DistanceMatrix;

use crate::{validate_metric, MetricError, MetricSpace};

/// An arbitrary finite metric given explicitly by its distance matrix.
///
/// The paper's upper bound (Theorem 4.1) holds for peers located in *any*
/// metric space; this type lets experiments feed in measured latency
/// matrices or synthetic non-Euclidean metrics.
///
/// # Example
///
/// ```
/// use sp_graph::DistanceMatrix;
/// use sp_metric::{MatrixMetric, MetricSpace};
///
/// let m = DistanceMatrix::from_row_major(3, vec![
///     0.0, 1.0, 2.0,
///     1.0, 0.0, 1.5,
///     2.0, 1.5, 0.0,
/// ]).unwrap();
/// let space = MatrixMetric::new(m, 1e-9).unwrap();
/// assert_eq!(space.distance(0, 2), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixMetric {
    matrix: DistanceMatrix,
}

impl MatrixMetric {
    /// Creates a metric from a matrix, validating all metric axioms with
    /// absolute tolerance `tol` (see [`validate_metric`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated axiom as a [`MetricError`].
    pub fn new(matrix: DistanceMatrix, tol: f64) -> Result<Self, MetricError> {
        let m = MatrixMetric { matrix };
        validate_metric(&m, tol)?;
        Ok(m)
    }

    /// Creates a metric from a matrix **without validating** the axioms.
    ///
    /// Useful for testing the validators themselves and for quasi-metrics
    /// in exploratory experiments; the game-theoretic results assume a true
    /// metric, so prefer [`MatrixMetric::new`].
    #[must_use]
    pub fn new_unchecked(matrix: DistanceMatrix) -> Self {
        MatrixMetric { matrix }
    }

    /// The underlying matrix.
    #[must_use]
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }

    /// Consumes the metric, returning the matrix.
    #[must_use]
    pub fn into_matrix(self) -> DistanceMatrix {
        self.matrix
    }
}

impl MetricSpace for MatrixMetric {
    fn len(&self) -> usize {
        self.matrix.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.matrix[(i, j)]
    }
}

impl From<MatrixMetric> for DistanceMatrix {
    fn from(m: MatrixMetric) -> Self {
        m.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_matrix() -> DistanceMatrix {
        DistanceMatrix::from_row_major(3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 1.5, 2.0, 1.5, 0.0])
            .unwrap()
    }

    #[test]
    fn valid_matrix_constructs() {
        let m = MatrixMetric::new(valid_matrix(), 1e-9).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.distance(1, 2), 1.5);
        assert_eq!(m.matrix()[(0, 1)], 1.0);
    }

    #[test]
    fn invalid_matrix_rejected() {
        let bad = DistanceMatrix::from_row_major(2, vec![0.0, 1.0, 2.0, 0.0]).unwrap();
        assert!(MatrixMetric::new(bad.clone(), 1e-9).is_err());
        // ... but unchecked construction allows it.
        let m = MatrixMetric::new_unchecked(bad);
        assert_eq!(m.distance(0, 1), 1.0);
        assert_eq!(m.distance(1, 0), 2.0);
    }

    #[test]
    fn into_matrix_roundtrip() {
        let m = MatrixMetric::new(valid_matrix(), 1e-9).unwrap();
        let back: DistanceMatrix = m.into_matrix();
        assert_eq!(back, valid_matrix());
        let m2 = MatrixMetric::new(valid_matrix(), 1e-9).unwrap();
        let back2: DistanceMatrix = m2.into();
        assert_eq!(back2, valid_matrix());
    }
}
