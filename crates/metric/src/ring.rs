use crate::{MetricError, MetricSpace};

/// Peers on a circle: distance is arc length (the shorter way around).
///
/// The standard abstraction of DHT identifier spaces (Chord rings) and of
/// latency around a geographic ring; a useful contrast to [`crate::LineSpace`]
/// because every peer sees the same horizon.
///
/// Angles are positions in `[0, circumference)`.
///
/// # Example
///
/// ```
/// use sp_metric::{MetricSpace, RingSpace};
///
/// let ring = RingSpace::new(vec![0.0, 2.0, 9.0], 10.0).unwrap();
/// assert_eq!(ring.distance(0, 1), 2.0);
/// assert_eq!(ring.distance(0, 2), 1.0); // wraps around: 10 - 9
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingSpace {
    positions: Vec<f64>,
    circumference: f64,
}

impl RingSpace {
    /// Creates a ring of the given circumference with peers at the given
    /// arc positions.
    ///
    /// # Errors
    ///
    /// * [`MetricError::NonFiniteValue`] for non-finite inputs or a
    ///   non-positive circumference;
    /// * [`MetricError::CoincidentPoints`] for duplicate positions
    ///   (after reduction modulo the circumference).
    pub fn new(positions: Vec<f64>, circumference: f64) -> Result<Self, MetricError> {
        if !circumference.is_finite() || circumference <= 0.0 {
            return Err(MetricError::NonFiniteValue {
                context: "ring circumference",
            });
        }
        if positions.iter().any(|p| !p.is_finite()) {
            return Err(MetricError::NonFiniteValue {
                context: "ring position",
            });
        }
        let reduced: Vec<f64> = positions
            .iter()
            .map(|p| p.rem_euclid(circumference))
            .collect();
        for i in 0..reduced.len() {
            for j in (i + 1)..reduced.len() {
                if reduced[i] == reduced[j] {
                    return Err(MetricError::CoincidentPoints { i, j });
                }
            }
        }
        Ok(RingSpace {
            positions: reduced,
            circumference,
        })
    }

    /// Places `n` peers equidistantly around a ring of the given
    /// circumference.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::NonFiniteValue`] for a non-positive
    /// circumference.
    pub fn equidistant(n: usize, circumference: f64) -> Result<Self, MetricError> {
        if !circumference.is_finite() || circumference <= 0.0 {
            return Err(MetricError::NonFiniteValue {
                context: "ring circumference",
            });
        }
        let positions = (0..n)
            .map(|i| i as f64 * circumference / n as f64)
            .collect();
        RingSpace::new(positions, circumference)
    }

    /// The ring circumference.
    #[must_use]
    pub fn circumference(&self) -> f64 {
        self.circumference
    }

    /// The (reduced) arc position of peer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn position(&self, i: usize) -> f64 {
        self.positions[i]
    }
}

impl MetricSpace for RingSpace {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        let raw = (self.positions[i] - self.positions[j]).abs();
        raw.min(self.circumference - raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_metric;

    #[test]
    fn arc_distances_take_shorter_way() {
        let r = RingSpace::new(vec![0.0, 3.0, 7.0], 8.0).unwrap();
        assert_eq!(r.distance(0, 1), 3.0);
        assert_eq!(r.distance(1, 2), 4.0);
        assert_eq!(r.distance(0, 2), 1.0);
        assert!(validate_metric(&r, 1e-12).is_ok());
    }

    #[test]
    fn positions_reduce_modulo_circumference() {
        let r = RingSpace::new(vec![-1.0, 11.0], 10.0).unwrap();
        assert_eq!(r.position(0), 9.0);
        assert_eq!(r.position(1), 1.0);
        assert_eq!(r.distance(0, 1), 2.0);
    }

    #[test]
    fn detects_wrapped_duplicates() {
        assert_eq!(
            RingSpace::new(vec![1.0, 11.0], 10.0),
            Err(MetricError::CoincidentPoints { i: 0, j: 1 })
        );
    }

    #[test]
    fn equidistant_ring_is_uniform() {
        let r = RingSpace::equidistant(8, 16.0).unwrap();
        assert_eq!(r.len(), 8);
        for i in 0..8 {
            assert_eq!(r.distance(i, (i + 1) % 8), 2.0);
            assert_eq!(r.distance(i, (i + 4) % 8), 8.0); // antipodal
        }
        assert!(validate_metric(&r, 1e-9).is_ok());
    }

    #[test]
    fn rejects_bad_circumference() {
        assert!(RingSpace::new(vec![0.0], 0.0).is_err());
        assert!(RingSpace::new(vec![0.0], f64::NAN).is_err());
        assert!(RingSpace::equidistant(4, -1.0).is_err());
    }

    #[test]
    fn ring_metric_satisfies_triangle_inequality_densely() {
        let r = RingSpace::new(vec![0.5, 2.25, 4.0, 7.75, 9.5], 10.0).unwrap();
        assert!(validate_metric(&r, 1e-12).is_ok());
        assert_eq!(r.circumference(), 10.0);
    }
}
