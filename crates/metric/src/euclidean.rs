use crate::{MetricError, MetricSpace, Point2, PointN};

/// Peers in the 2-dimensional Euclidean plane.
///
/// This is the metric space of the paper's Theorem 5.1: even in the plane a
/// system of selfish peers may admit no pure Nash equilibrium.
///
/// Points must be pairwise distinct.
///
/// # Example
///
/// ```
/// use sp_metric::{Euclidean2D, MetricSpace, Point2};
///
/// let s = Euclidean2D::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(0.0, 1.0),
/// ]).unwrap();
/// assert!((s.distance(1, 2) - 2.0f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Euclidean2D {
    points: Vec<Point2>,
}

impl Euclidean2D {
    /// Creates a plane space from points.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::CoincidentPoints`] if two points coincide
    /// exactly.
    pub fn new(points: Vec<Point2>) -> Result<Self, MetricError> {
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i] == points[j] {
                    return Err(MetricError::CoincidentPoints { i, j });
                }
            }
        }
        Ok(Euclidean2D { points })
    }

    /// The point of peer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn point(&self, i: usize) -> Point2 {
        self.points[i]
    }

    /// All points, indexed by peer.
    #[must_use]
    pub fn points(&self) -> &[Point2] {
        &self.points
    }
}

impl MetricSpace for Euclidean2D {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.points[i].distance_to(self.points[j])
    }
}

/// Peers in `k`-dimensional Euclidean space.
///
/// All points must share the same dimension and be pairwise distinct.
///
/// # Example
///
/// ```
/// use sp_metric::{EuclideanND, MetricSpace, PointN};
///
/// let s = EuclideanND::new(vec![
///     PointN::new(vec![0.0, 0.0, 0.0]).unwrap(),
///     PointN::new(vec![2.0, 3.0, 6.0]).unwrap(),
/// ]).unwrap();
/// assert_eq!(s.distance(0, 1), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EuclideanND {
    points: Vec<PointN>,
    dim: usize,
}

impl EuclideanND {
    /// Creates a `k`-dimensional space from points.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DimensionMismatch`] if points have different
    /// dimensions and [`MetricError::CoincidentPoints`] on duplicates.
    pub fn new(points: Vec<PointN>) -> Result<Self, MetricError> {
        let dim = points.first().map_or(0, PointN::dim);
        for p in &points {
            if p.dim() != dim {
                return Err(MetricError::DimensionMismatch {
                    expected: dim,
                    actual: p.dim(),
                });
            }
        }
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i] == points[j] {
                    return Err(MetricError::CoincidentPoints { i, j });
                }
            }
        }
        Ok(EuclideanND { points, dim })
    }

    /// Dimension of the space (0 when empty).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// All points, indexed by peer.
    #[must_use]
    pub fn points(&self) -> &[PointN] {
        &self.points
    }
}

impl MetricSpace for EuclideanND {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.points[i]
            .distance_to(&self.points[j])
            .expect("EuclideanND points verified same-dimension at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_metric;

    #[test]
    fn plane_distances() {
        let s = Euclidean2D::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 4.0),
            Point2::new(-3.0, -4.0),
        ])
        .unwrap();
        assert_eq!(s.distance(0, 1), 5.0);
        assert_eq!(s.distance(1, 2), 10.0);
        assert!(validate_metric(&s, 1e-12).is_ok());
    }

    #[test]
    fn plane_rejects_duplicates() {
        let r = Euclidean2D::new(vec![Point2::new(1.0, 1.0), Point2::new(1.0, 1.0)]);
        assert_eq!(r, Err(MetricError::CoincidentPoints { i: 0, j: 1 }));
    }

    #[test]
    fn nd_rejects_mixed_dimensions() {
        let r = EuclideanND::new(vec![
            PointN::new(vec![0.0]).unwrap(),
            PointN::new(vec![0.0, 1.0]).unwrap(),
        ]);
        assert_eq!(
            r,
            Err(MetricError::DimensionMismatch {
                expected: 1,
                actual: 2
            })
        );
    }

    #[test]
    fn nd_is_valid_metric() {
        let s = EuclideanND::new(vec![
            PointN::new(vec![0.0, 0.0, 0.0]).unwrap(),
            PointN::new(vec![1.0, 0.0, 0.0]).unwrap(),
            PointN::new(vec![0.0, 1.0, 1.0]).unwrap(),
        ])
        .unwrap();
        assert_eq!(s.dim(), 3);
        assert!(validate_metric(&s, 1e-12).is_ok());
    }

    #[test]
    fn point_accessors() {
        let p = Point2::new(2.0, 2.0);
        let s = Euclidean2D::new(vec![p]).unwrap();
        assert_eq!(s.point(0), p);
        assert_eq!(s.points(), &[p]);
    }
}
