//! Property-based tests: every generator must produce a valid metric, and
//! the validators must accept exactly the metric axioms.

use proptest::prelude::*;
use rand::prelude::*;
use sp_graph::DistanceMatrix;
use sp_metric::{generators, validate_metric, Euclidean2D, LineSpace, MetricSpace, Point2, PointN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn line_spaces_satisfy_metric_axioms(
        mut positions in proptest::collection::vec(-1e6f64..1e6, 1..20)
    ) {
        positions.sort_by(f64::total_cmp);
        positions.dedup();
        let space = LineSpace::new(positions).unwrap();
        prop_assert!(validate_metric(&space, 1e-7).is_ok());
    }

    #[test]
    fn plane_spaces_satisfy_metric_axioms(
        coords in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..16)
    ) {
        let mut points: Vec<Point2> = Vec::new();
        for (x, y) in coords {
            let p = Point2::new(x, y);
            if !points.contains(&p) {
                points.push(p);
            }
        }
        let space = Euclidean2D::new(points).unwrap();
        prop_assert!(validate_metric(&space, 1e-7).is_ok());
    }

    #[test]
    fn nd_spaces_satisfy_metric_axioms(
        coords in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3), 1..12
        )
    ) {
        let mut points: Vec<PointN> = Vec::new();
        for c in coords {
            let p = PointN::new(c).unwrap();
            if !points.contains(&p) {
                points.push(p);
            }
        }
        let space = sp_metric::EuclideanND::new(points).unwrap();
        prop_assert!(validate_metric(&space, 1e-7).is_ok());
    }

    #[test]
    fn generated_workloads_are_metrics(seed in 0u64..1000, n in 2usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sq = generators::uniform_square(n, 10.0, &mut rng);
        prop_assert!(validate_metric(&sq, 1e-7).is_ok());
        let ln = generators::uniform_line(n, 10.0, &mut rng);
        prop_assert!(validate_metric(&ln, 1e-7).is_ok());
        let br = generators::random_bounded_ratio_metric(n, 1.0, 2.0, &mut rng);
        prop_assert!(validate_metric(&br, 1e-7).is_ok());
        let cl = generators::ClusteredPoints::new(2, n / 2 + 1).build(&mut rng);
        prop_assert!(validate_metric(&cl, 1e-7).is_ok());
    }

    #[test]
    fn metric_closure_always_yields_metric(
        seed in 0u64..1000, n in 2usize..12
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = DistanceMatrix::new_filled(n, 0.0);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = rng.random_range(0.1..10.0);
                w[(i, j)] = d;
                w[(j, i)] = d;
            }
        }
        let closed = generators::metric_closure(&w);
        prop_assert!(validate_metric(&closed, 1e-6).is_ok());
        // Closure never increases distances.
        for i in 0..n {
            for j in 0..n {
                prop_assert!(closed.distance(i, j) <= w[(i, j)] + 1e-9);
            }
        }
    }

    #[test]
    fn diameter_bounds_all_distances(
        mut positions in proptest::collection::vec(-1e3f64..1e3, 2..16)
    ) {
        positions.sort_by(f64::total_cmp);
        positions.dedup();
        prop_assume!(positions.len() >= 2);
        let space = LineSpace::new(positions).unwrap();
        let diam = space.diameter();
        let min = space.min_distance();
        for i in 0..space.len() {
            for j in 0..space.len() {
                if i != j {
                    prop_assert!(space.distance(i, j) <= diam + 1e-9);
                    prop_assert!(space.distance(i, j) >= min - 1e-9);
                }
            }
        }
    }
}
