//! Property tests for the dynamics engine.
//!
//! The central soundness property: whenever the sequential runner reports
//! `Converged` under the exact best-response rule, the final profile is a
//! certified Nash equilibrium. Plus determinism, trace discipline, and
//! schedule coverage.

use proptest::prelude::*;
use rand::prelude::*;
use sp_core::{is_nash, Game, NashTest, StrategyProfile};
use sp_dynamics::{DynamicsConfig, DynamicsRunner, ResponseRule, Schedule, Termination};
use sp_metric::generators;

fn arb_game() -> impl Strategy<Value = Game> {
    (2usize..=8, 0u64..10_000, 0.2f64..16.0).prop_map(|(n, seed, alpha)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = generators::uniform_square(n, 100.0, &mut rng);
        Game::from_space(&space, alpha).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn convergence_under_exact_br_certifies_nash(game in arb_game()) {
        let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
        let out = runner.run(StrategyProfile::empty(game.n()));
        if matches!(out.termination, Termination::Converged { .. }) {
            let report = is_nash(&game, &out.profile, &NashTest::exact()).unwrap();
            prop_assert!(report.is_nash(), "converged to non-equilibrium");
        } else {
            // Cycles are possible in principle; they must be proven, not
            // silently round-limited on these small instances.
            let cycled = matches!(out.termination, Termination::Cycle { .. });
            prop_assert!(cycled, "unexpected termination: {:?}", out.termination);
        }
    }

    #[test]
    fn deterministic_schedules_reproduce_exactly(game in arb_game()) {
        let run = || {
            let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
            runner.run(StrategyProfile::empty(game.n()))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.profile, b.profile);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.moves, b.moves);
    }

    #[test]
    fn traces_record_exactly_the_accepted_moves(game in arb_game()) {
        let config = DynamicsConfig { record_trace: true, ..DynamicsConfig::default() };
        let mut runner = DynamicsRunner::new(&game, config);
        let out = runner.run(StrategyProfile::empty(game.n()));
        let trace = out.trace.unwrap();
        prop_assert_eq!(trace.len(), out.moves);
        prop_assert!(trace.first_non_improving().is_none());
        // Replaying the trace from the start reproduces the final profile.
        let mut replay = StrategyProfile::empty(game.n());
        for m in trace.moves() {
            prop_assert_eq!(replay.strategy(m.peer), &m.old_links, "trace out of order");
            replay.set_strategy(m.peer, m.new_links.clone()).unwrap();
        }
        prop_assert_eq!(replay, out.profile);
    }

    #[test]
    fn deterministic_schedules_terminate_decisively(game in arb_game()) {
        // With a deterministic schedule, cycle detection converts every
        // non-converging run into a *proven* cycle — the round limit is
        // unreachable. (Randomized schedules can legitimately wander to
        // the limit on cycling instances, which do occur even on uniform
        // squares — the paper's Section 5 in the wild.)
        for schedule in [
            Schedule::RoundRobin,
            Schedule::Fixed((0..game.n()).rev().map(sp_core::PeerId::new).collect()),
        ] {
            let config = DynamicsConfig {
                schedule,
                max_rounds: 500,
                ..DynamicsConfig::default()
            };
            let mut runner = DynamicsRunner::new(&game, config);
            let out = runner.run(StrategyProfile::empty(game.n()));
            let decisive = !matches!(out.termination, Termination::RoundLimit);
            prop_assert!(decisive, "deterministic run hit the round limit");
        }
    }

    #[test]
    fn random_schedules_convergences_are_certified(game in arb_game(), seed in 0u64..100) {
        for schedule in [
            Schedule::RandomPermutation { seed },
            Schedule::UniformRandom { seed },
        ] {
            let config = DynamicsConfig {
                schedule,
                max_rounds: 200,
                ..DynamicsConfig::default()
            };
            let mut runner = DynamicsRunner::new(&game, config);
            let out = runner.run(StrategyProfile::empty(game.n()));
            if matches!(out.termination, Termination::Converged { .. }) {
                let report = is_nash(&game, &out.profile, &NashTest::exact()).unwrap();
                prop_assert!(report.is_nash());
            }
        }
    }

    #[test]
    fn better_response_reaches_single_link_stability(game in arb_game()) {
        let config = DynamicsConfig {
            rule: ResponseRule::BetterResponse,
            max_rounds: 500,
            ..DynamicsConfig::default()
        };
        let mut runner = DynamicsRunner::new(&game, config);
        let out = runner.run(StrategyProfile::empty(game.n()));
        if matches!(out.termination, Termination::Converged { .. }) {
            for i in 0..game.n() {
                prop_assert!(sp_core::first_improving_move(
                    &game,
                    &out.profile,
                    sp_core::PeerId::new(i),
                    1e-9
                )
                .unwrap()
                .is_none());
            }
        }
    }

    /// The persistent oracle cache is unobservable: a run with
    /// `oracle_reuse: true` (cached `G_{-i}` oracles, repaired across
    /// moves) is **bit-identical** to one with fresh oracles per
    /// activation — same profiles, terminations, step/move counts, and
    /// traces — for both response rules.
    #[test]
    fn oracle_cache_engine_is_bit_identical_to_fresh_engine(game in arb_game()) {
        for rule in [ResponseRule::BestResponse, ResponseRule::BetterResponse] {
            let run = |oracle_reuse: bool| {
                let config = DynamicsConfig {
                    rule,
                    record_trace: true,
                    max_rounds: 120,
                    oracle_reuse,
                    ..DynamicsConfig::default()
                };
                let mut runner = DynamicsRunner::new(&game, config);
                runner.run(StrategyProfile::empty(game.n()))
            };
            let cached = run(true);
            let fresh = run(false);
            prop_assert_eq!(&cached.profile, &fresh.profile, "{:?}: profile", rule);
            prop_assert_eq!(&cached.termination, &fresh.termination, "{:?}: termination", rule);
            prop_assert_eq!(cached.steps, fresh.steps, "{:?}: steps", rule);
            prop_assert_eq!(cached.moves, fresh.moves, "{:?}: moves", rule);
            // Trace equality compares every accepted move's links and
            // costs (f64 == is bit equality for non-NaN).
            prop_assert_eq!(&cached.trace, &fresh.trace, "{:?}: trace", rule);
        }
    }

    #[test]
    fn starting_from_an_equilibrium_never_moves(game in arb_game()) {
        // First converge; then restart from the equilibrium.
        let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
        let out = runner.run(StrategyProfile::empty(game.n()));
        prop_assume!(matches!(out.termination, Termination::Converged { .. }));
        let mut rerun = DynamicsRunner::new(&game, DynamicsConfig::default());
        let again = rerun.run(out.profile.clone());
        prop_assert_eq!(again.moves, 0);
        prop_assert_eq!(again.profile, out.profile);
    }
}
