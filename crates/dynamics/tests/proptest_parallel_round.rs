//! The sharded simultaneous-round engine must be **bit-identical** to
//! the sequential one.
//!
//! `run_simultaneous` has two engines (see `simultaneous`): the
//! sequential per-peer loop, and the sharded engine that snapshots the
//! round-start state, reuses its distance rows inside every oracle, and
//! fans the oracles out over `fork_readonly` worker shards with a
//! round-robin peer→shard interleave. The determinism contract says the
//! engine choice is unobservable: identical accepted-move sets (traces),
//! identical termination, identical round and move counts — for any
//! shard count, including 1 and more shards than peers.

use proptest::prelude::*;
use rand::prelude::*;
use sp_core::{BestResponseMethod, Game, StrategyProfile};
use sp_dynamics::churn::ChurnSimulator;
use sp_dynamics::simultaneous::{run_simultaneous, SimultaneousConfig, SimultaneousOutcome};
use sp_metric::generators;

/// A random small game plus a random (possibly disconnected) start
/// profile — disconnection exercises the `∞`-cost branches of the
/// oracle-row reuse test.
fn arb_instance() -> impl Strategy<Value = (Game, StrategyProfile)> {
    (2usize..=9, 0u64..10_000, 0.2f64..12.0).prop_flat_map(|(n, seed, alpha)| {
        let max_links = (n * (n - 1)).min(18);
        proptest::collection::vec((0..n, 0..n), 0..=max_links).prop_map(move |pairs| {
            let mut rng = StdRng::seed_from_u64(seed);
            let space = generators::uniform_square(n, 100.0, &mut rng);
            let game = Game::from_space(&space, alpha).unwrap();
            let links: Vec<(usize, usize)> = pairs.into_iter().filter(|&(u, v)| u != v).collect();
            let profile = StrategyProfile::from_links(n, &links).unwrap();
            (game, profile)
        })
    })
}

/// CI's determinism matrix sets `SP_TEST_PARALLELISM` to pin every
/// shard-count parameter these tests exercise, so the suite runs at
/// forced parallelism extremes (1 and 8) and shard-count-dependent
/// nondeterminism cannot land.
fn forced_parallelism() -> Option<usize> {
    std::env::var("SP_TEST_PARALLELISM").ok()?.parse().ok()
}

/// The shard counts to compare against the sequential reference: the
/// forced matrix value when set, otherwise a spread including a
/// degenerate pool and one far above the peer count.
fn shard_counts() -> Vec<usize> {
    match forced_parallelism() {
        Some(k) => vec![k],
        None => vec![2, 3, 17],
    }
}

fn run_with(
    game: &Game,
    start: &StrategyProfile,
    parallelism: Option<usize>,
    method: BestResponseMethod,
) -> SimultaneousOutcome {
    let config = SimultaneousConfig {
        method,
        max_rounds: 60,
        parallelism,
        record_trace: true,
        ..SimultaneousConfig::default()
    };
    run_simultaneous(game, start.clone(), &config)
}

/// Field-by-field equality with bitwise cost comparison (`PartialEq` on
/// the trace already compares costs with `f64` equality, which is bit
/// equality for non-NaN values — exactly the contract we enforce).
fn assert_identical(a: &SimultaneousOutcome, b: &SimultaneousOutcome, label: &str) {
    assert_eq!(a.profile, b.profile, "{label}: final profile");
    assert_eq!(a.termination, b.termination, "{label}: termination");
    assert_eq!(a.rounds, b.rounds, "{label}: rounds");
    assert_eq!(a.moves, b.moves, "{label}: moves");
    assert_eq!(a.trace, b.trace, "{label}: trace");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sharded_rounds_are_bit_identical_to_sequential((game, start) in arb_instance()) {
        // Sequential reference: the per-peer loop on the calling thread.
        let sequential = run_with(&game, &start, Some(1), BestResponseMethod::Exact);
        for shards in shard_counts() {
            let sharded = run_with(&game, &start, Some(shards), BestResponseMethod::Exact);
            assert_identical(&sequential, &sharded, &format!("shards = {shards}"));
            if shards > 1 && matches!(
                sharded.termination,
                sp_dynamics::Termination::Converged { .. } | sp_dynamics::Termination::Cycle { .. }
            ) && sharded.rounds > 0 {
                prop_assert!(
                    sharded.stats.oracle_parallel_rounds > 0,
                    "explicit Some({shards}) must actually fan out: {:?}",
                    sharded.stats
                );
            }
        }
    }

    #[test]
    fn heuristic_methods_keep_the_contract((game, start) in arb_instance()) {
        // The contract is about the engine, not the solver: heuristic
        // UFL solvers must shard identically too.
        let shards = forced_parallelism().unwrap_or(4);
        for method in [BestResponseMethod::Greedy, BestResponseMethod::LocalSearch] {
            let sequential = run_with(&game, &start, Some(1), method);
            let sharded = run_with(&game, &start, Some(shards), method);
            assert_identical(&sequential, &sharded, &format!("{method:?}"));
        }
    }

    #[test]
    fn churn_settle_rounds_is_engine_independent(n in 3usize..=8, seed in 0u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = generators::uniform_square(n, 100.0, &mut rng);
        let universe = Game::from_space(&space, 2.0).unwrap();
        let run = |parallelism: Option<usize>| {
            let config = SimultaneousConfig {
                max_rounds: 60,
                parallelism,
                ..SimultaneousConfig::default()
            };
            let mut sim = ChurnSimulator::new(&universe);
            let mut records = vec![sim.settle_rounds(&config)];
            sim.leave(n / 2).unwrap();
            records.push(sim.settle_rounds(&config));
            sim.join(n / 2).unwrap();
            records.push(sim.settle_rounds(&config));
            (records, sim.profile().clone())
        };
        let (seq_records, seq_profile) = run(Some(1));
        let (par_records, par_profile) = run(Some(forced_parallelism().unwrap_or(3)));
        prop_assert_eq!(seq_records, par_records);
        prop_assert_eq!(seq_profile, par_profile);
    }
}
