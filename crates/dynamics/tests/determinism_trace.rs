//! Two-process trace determinism regression test.
//!
//! `std`'s `RandomState` is seeded once per process, so a hash-order
//! dependence in a result-producing path (engine, oracle cache) can
//! reproduce perfectly *within* one process — two in-process runs share
//! the same seeds — and still diverge across processes. The existing
//! in-process determinism property cannot catch that class of bug, so
//! this test re-executes the test binary twice and compares a
//! bit-exact fingerprint of the full move trace and final profile.

#![forbid(unsafe_code)]

use rand::prelude::*;
use sp_core::{Game, StrategyProfile};
use sp_dynamics::{DynamicsConfig, DynamicsRunner};
use sp_metric::generators;
use std::process::Command;

/// Env var marking the re-executed child.
const CHILD_ENV: &str = "SP_DETERMINISM_TRACE_CHILD";

/// Runs the seeded workload and hashes every trace field that must be
/// identical across processes: move order, link sets, and the exact
/// f64 bits of the per-move costs.
fn fingerprint() -> String {
    let mut rng = StdRng::seed_from_u64(0x5e1f_15e0);
    let space = generators::uniform_square(16, 100.0, &mut rng);
    let game = Game::from_space(&space, 3.0).expect("valid placement");
    let config = DynamicsConfig {
        record_trace: true,
        ..DynamicsConfig::default()
    };
    let mut runner = DynamicsRunner::new(&game, config);
    let out = runner.run(StrategyProfile::empty(game.n()));

    // FNV-1a over a canonical rendering of the outcome.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    };
    let links = |set: &sp_core::LinkSet| {
        set.iter()
            .map(|p| p.index().to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    for m in out.trace.as_ref().expect("trace recorded").moves() {
        eat(&format!(
            "{}:{}:[{}]>[{}]:{:x}:{:x}\n",
            m.step,
            m.peer.index(),
            links(&m.old_links),
            links(&m.new_links),
            m.old_cost.to_bits(),
            m.new_cost.to_bits(),
        ));
    }
    for (peer, set) in out.profile.iter() {
        eat(&format!("final {}:[{}]\n", peer.index(), links(set)));
    }
    eat(&format!("steps={} moves={}", out.steps, out.moves));
    format!("{h:016x}")
}

/// Child mode: emits the fingerprint for the parent to compare. A plain
/// pass when run as part of the normal suite.
#[test]
fn child_emit_fingerprint() {
    if std::env::var(CHILD_ENV).is_ok() {
        println!("TRACE_FP={}", fingerprint());
    }
}

#[test]
fn trace_fingerprint_identical_across_processes() {
    if std::env::var(CHILD_ENV).is_ok() {
        return; // no recursion inside the child
    }
    let exe = std::env::current_exe().expect("test binary path");
    let run_child = || {
        let out = Command::new(&exe)
            .args([
                "child_emit_fingerprint",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(CHILD_ENV, "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("utf8 child output");
        // `--nocapture` interleaves the harness's own "test ..." line
        // with ours, so match the marker anywhere in the line.
        stdout
            .lines()
            .find_map(|l| l.split("TRACE_FP=").nth(1).map(|fp| fp.trim().to_owned()))
            .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
    };
    let a = run_child();
    let b = run_child();
    assert_eq!(a, b, "trace fingerprints differ across processes");
    assert_eq!(
        a,
        fingerprint(),
        "child fingerprint differs from the in-process run"
    );
}
