//! Simultaneous-move best-response dynamics.
//!
//! All peers compute responses against the *current* profile and switch
//! at once. Unlike the sequential dynamics this can oscillate even on
//! instances with equilibria (two peers may keep reacting to each other's
//! previous move — a coordination failure orthogonal to the paper's
//! Theorem 5.1), which makes it a useful contrast: the paper's
//! non-convergence is *strategic*, not an artifact of update timing.
//!
//! A fixed point of the simultaneous map is exactly a Nash equilibrium
//! (with exact responses).
//!
//! # Sequential and sharded round engines
//!
//! Because every response in a round is computed against the same frozen
//! round-start profile, the k oracle computations are embarrassingly
//! parallel. [`run_simultaneous`] therefore has two engines:
//!
//! * the **sequential** engine — one [`GameSession::best_response`] per
//!   peer on the calling thread (served from the session's persistent
//!   oracle cache, which the round's batched commit repairs in place);
//! * the **sharded** engine — one
//!   [`GameSession::best_responses_round`] call per round, which
//!   snapshots the round-start state, fans the oracles out over
//!   `fork_readonly` worker shards (activation position `p` on shard
//!   `p mod k`, a deterministic round-robin interleave), and scatters
//!   the responses back into peer order.
//!
//! [`SimultaneousConfig::parallelism`] picks the engine: `Some(1)` forces
//! sequential, `Some(k > 1)` forces `k` shards, and `None` (default)
//! auto-shards when the machine has more than one worker and the round
//! activates at least [`PAR_ROUND_MIN_PEERS`] peers. **Determinism
//! contract:** both engines produce bit-identical rounds — accepted-move
//! sets, traces, termination, and round counts — whatever the shard
//! count; `crates/dynamics/tests/proptest_parallel_round.rs` enforces it.

use sp_core::{
    BestResponse, BestResponseMethod, Game, GameSession, Move, PeerId, SessionStats,
    StrategyProfile,
};

use crate::engine::CycleDetector;
use crate::trace::{MoveRecord, Trace};
use crate::Termination;

/// Peer count below which automatic parallelism
/// ([`SimultaneousConfig::parallelism`]` = None`) keeps the sequential
/// engine: a round on a small instance finishes before worker threads
/// would spin up.
pub const PAR_ROUND_MIN_PEERS: usize = 16;

/// Configuration for [`run_simultaneous`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimultaneousConfig {
    /// Best-response method used for every peer.
    pub method: BestResponseMethod,
    /// Maximum rounds before giving up.
    pub max_rounds: usize,
    /// Relative improvement threshold below which a peer keeps its
    /// strategy.
    pub tolerance: f64,
    /// Round-engine selector, routed through
    /// [`GameSession::set_parallelism`] (so `Some(0)` clamps to
    /// `Some(1)`): `Some(1)` forces the sequential engine, `Some(k > 1)`
    /// forces `k` oracle shards, `None` (default) auto-shards on
    /// multi-worker machines when at least [`PAR_ROUND_MIN_PEERS`] peers
    /// are activated. The engines are bit-identical; this knob only
    /// trades wall-clock for threads.
    pub parallelism: Option<usize>,
    /// Record every accepted strategy switch into
    /// [`SimultaneousOutcome::trace`] (the `step` field carries the round
    /// index).
    pub record_trace: bool,
}

impl Default for SimultaneousConfig {
    fn default() -> Self {
        SimultaneousConfig {
            method: BestResponseMethod::Exact,
            max_rounds: 200,
            tolerance: 1e-9,
            parallelism: None,
            record_trace: false,
        }
    }
}

/// Outcome of a simultaneous-move run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimultaneousOutcome {
    /// The final profile.
    pub profile: StrategyProfile,
    /// Why the run stopped. `Converged` means a fixed point — a Nash
    /// equilibrium under exact responses. `Cycle` means the profile
    /// sequence provably repeats.
    pub termination: Termination,
    /// Rounds executed.
    pub rounds: usize,
    /// Accepted strategy switches across all rounds.
    pub moves: usize,
    /// Accepted switches in order, when
    /// [`SimultaneousConfig::record_trace`] was set.
    pub trace: Option<Trace>,
    /// Work counters of the session that drove the run (batch commits,
    /// oracle builds, shard fan-outs).
    pub stats: SessionStats,
}

/// Runs simultaneous best-response dynamics from `start`.
///
/// # Panics
///
/// Panics if the profile size does not match the game or the game is
/// empty.
///
/// # Example
///
/// ```
/// use sp_core::{Game, StrategyProfile};
/// use sp_dynamics::simultaneous::{run_simultaneous, SimultaneousConfig};
/// use sp_dynamics::Termination;
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0]).unwrap(), 1.0).unwrap();
/// let out = run_simultaneous(&game, StrategyProfile::empty(2), &SimultaneousConfig::default());
/// // Two isolated peers both link each other at once: immediate fixed point.
/// assert!(matches!(out.termination, Termination::Converged { .. }));
/// ```
#[must_use]
pub fn run_simultaneous(
    game: &Game,
    start: StrategyProfile,
    config: &SimultaneousConfig,
) -> SimultaneousOutcome {
    let n = game.n();
    assert!(n > 0, "cannot run dynamics on an empty game");
    assert_eq!(start.n(), n, "profile size must match the game");
    let mut session = GameSession::new(game.clone(), start).expect("profile size checked above");
    // One knob drives both the bulk row refills and the oracle fan-out.
    session.set_parallelism(config.parallelism);
    let sharded = match config.parallelism {
        Some(w) => w > 1,
        None => session.resolved_parallelism() > 1 && n >= PAR_ROUND_MIN_PEERS,
    };
    let peers: Vec<PeerId> = (0..n).map(PeerId::new).collect();
    let mut trace = config.record_trace.then(Trace::new);
    // Start-of-round states with the accepted-update total at that
    // moment — on a revisit the difference is the true number of moves
    // inside one loop of the cycle. The detector keys on fingerprints
    // (position 0: rounds have no schedule offset) and confirms hits
    // exactly, so no profile clone is stored per round.
    let mut seen = CycleDetector::default();
    let mut moves = 0usize;
    let finish = |session: GameSession, termination: Termination, rounds, moves, trace| {
        let stats = session.stats();
        SimultaneousOutcome {
            profile: session.into_profile(),
            termination,
            rounds,
            moves,
            trace,
            stats,
        }
    };
    for round in 0..config.max_rounds {
        if let Some((first_round, first_moves)) =
            seen.check_and_insert(session.profile(), 0, round, moves)
        {
            let termination = Termination::Cycle {
                first_seen_step: first_round,
                period_steps: round - first_round,
                moves_in_cycle: moves - first_moves,
            };
            return finish(session, termination, round, moves, trace);
        }

        // All responses are computed against the *current* profile, then
        // applied at once (session queries never mutate the profile).
        // The sharded engine fans the k oracles out over worker threads;
        // the sequential engine is the PR-2 per-peer loop. Both produce
        // bit-identical responses in peer order.
        let responses: Vec<BestResponse> = if sharded {
            session
                .best_responses_round(&peers, config.method)
                .expect("validated inputs cannot fail")
        } else {
            peers
                .iter()
                .map(|&peer| {
                    session
                        .best_response(peer, config.method)
                        .expect("validated inputs cannot fail")
                })
                .collect()
        };
        let mut updates: Vec<Move> = Vec::new();
        for br in responses {
            if br.improves(config.tolerance) && &br.links != session.profile().strategy(br.peer) {
                if let Some(t) = trace.as_mut() {
                    t.push(MoveRecord {
                        step: round,
                        peer: br.peer,
                        old_links: session.profile().strategy(br.peer).clone(),
                        new_links: br.links.clone(),
                        old_cost: br.current_cost,
                        new_cost: br.cost,
                    });
                }
                updates.push(Move::SetStrategy {
                    peer: br.peer,
                    links: br.links,
                });
            }
        }
        if updates.is_empty() {
            return finish(
                session,
                Termination::Converged { rounds: round + 1 },
                round + 1,
                moves,
                trace,
            );
        }
        moves += updates.len();
        // The whole round commits as one batch: one CSR rebuild and one
        // repair pass for the k accepted updates, instead of k of each.
        session.apply_batch(&updates).expect("valid response links");
    }
    finish(
        session,
        Termination::RoundLimit,
        config.max_rounds,
        moves,
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::{is_nash, NashTest};
    use sp_metric::LineSpace;

    fn line_game(positions: Vec<f64>, alpha: f64) -> Game {
        Game::from_space(&LineSpace::new(positions).unwrap(), alpha).unwrap()
    }

    #[test]
    fn fixed_points_are_nash_equilibria() {
        let game = line_game(vec![0.0, 1.0, 3.0], 1.0);
        let out = run_simultaneous(
            &game,
            StrategyProfile::empty(3),
            &SimultaneousConfig::default(),
        );
        if let Termination::Converged { .. } = out.termination {
            assert!(is_nash(&game, &out.profile, &NashTest::exact())
                .unwrap()
                .is_nash());
        }
        // Whatever happened, the run terminated decisively.
        assert!(!matches!(out.termination, Termination::RoundLimit));
    }

    #[test]
    fn starting_at_equilibrium_is_immediate_fixed_point() {
        let game = line_game(vec![0.0, 1.0], 2.0);
        let out = run_simultaneous(
            &game,
            StrategyProfile::complete(2),
            &SimultaneousConfig::default(),
        );
        assert!(matches!(
            out.termination,
            Termination::Converged { rounds: 1 }
        ));
        assert_eq!(out.profile, StrategyProfile::complete(2));
    }

    #[test]
    fn detects_simultaneous_oscillation_or_convergence() {
        // The I_1-style engineered instances cycle; ordinary lines either
        // converge or coordination-cycle — both are decisive outcomes.
        let game = line_game(vec![0.0, 1.0, 2.0, 4.0, 8.0], 1.0);
        let out = run_simultaneous(
            &game,
            StrategyProfile::empty(5),
            &SimultaneousConfig::default(),
        );
        assert!(matches!(
            out.termination,
            Termination::Converged { .. } | Termination::Cycle { .. }
        ));
    }

    #[test]
    fn cycle_reports_true_move_count() {
        // I_1 has no equilibrium (paper, Theorem 5.1), so simultaneous
        // updates provably cycle — and every round inside the loop
        // accepts at least one update, so `moves_in_cycle` can never be
        // the hardcoded 0 the pre-fix report carried.
        let inst = sp_constructions::NoEquilibriumInstance::paper(1);
        let out = run_simultaneous(
            inst.game(),
            StrategyProfile::empty(inst.game().n()),
            &SimultaneousConfig::default(),
        );
        match out.termination {
            Termination::Cycle {
                period_steps,
                moves_in_cycle,
                ..
            } => {
                assert!(period_steps >= 1);
                assert!(
                    moves_in_cycle >= period_steps,
                    "each of the {period_steps} looping rounds accepts at least one \
                     update, got moves_in_cycle = {moves_in_cycle}"
                );
            }
            other => panic!("I_1 must cycle under simultaneous updates, got {other:?}"),
        }
    }

    #[test]
    fn round_limit_respected() {
        let game = line_game(vec![0.0, 1.0, 2.0], 1.0);
        let config = SimultaneousConfig {
            max_rounds: 0,
            ..SimultaneousConfig::default()
        };
        let out = run_simultaneous(&game, StrategyProfile::empty(3), &config);
        assert_eq!(out.termination, Termination::RoundLimit);
    }

    #[test]
    #[should_panic(expected = "profile size")]
    fn size_mismatch_panics() {
        let game = line_game(vec![0.0, 1.0], 1.0);
        let _ = run_simultaneous(
            &game,
            StrategyProfile::empty(3),
            &SimultaneousConfig::default(),
        );
    }
}
