use sp_core::{LinkSet, PeerId};

/// One accepted strategy change during a dynamics run.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveRecord {
    /// Global step index (activations, including no-op ones, are counted).
    pub step: usize,
    /// The peer that moved.
    pub peer: PeerId,
    /// Strategy before the move.
    pub old_links: LinkSet,
    /// Strategy after the move.
    pub new_links: LinkSet,
    /// Peer's individual cost before the move.
    pub old_cost: f64,
    /// Peer's individual cost after the move.
    pub new_cost: f64,
}

impl MoveRecord {
    /// The cost reduction achieved by this move (`+∞` if it restored
    /// connectivity).
    #[must_use]
    pub fn improvement(&self) -> f64 {
        if self.old_cost.is_infinite() && self.new_cost.is_infinite() {
            0.0
        } else {
            self.old_cost - self.new_cost
        }
    }
}

/// The sequence of accepted moves of a dynamics run.
///
/// Only recorded when [`crate::DynamicsConfig::record_trace`] is set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    moves: Vec<MoveRecord>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a move.
    pub fn push(&mut self, record: MoveRecord) {
        self.moves.push(record);
    }

    /// All recorded moves in order.
    #[must_use]
    pub fn moves(&self) -> &[MoveRecord] {
        &self.moves
    }

    /// Number of recorded moves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Moves made by one peer, in order.
    pub fn moves_of(&self, peer: PeerId) -> impl Iterator<Item = &MoveRecord> + '_ {
        self.moves.iter().filter(move |m| m.peer == peer)
    }

    /// Every recorded move must strictly improve the mover's cost; returns
    /// the first violating record, if any (used as a self-check by tests).
    #[must_use]
    pub fn first_non_improving(&self) -> Option<&MoveRecord> {
        self.moves.iter().find(|m| {
            // sp-lint: allow(float-eps, reason = "self-check mirrors the engine's exact strict-improvement acceptance rule; loosening it would mask real violations")
            !(m.new_cost < m.old_cost || (m.old_cost.is_infinite() && m.new_cost.is_finite()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(step: usize, old: f64, new: f64) -> MoveRecord {
        MoveRecord {
            step,
            peer: PeerId::new(0),
            old_links: LinkSet::new(),
            new_links: [1usize].into_iter().collect(),
            old_cost: old,
            new_cost: new,
        }
    }

    #[test]
    fn trace_accumulates_and_filters() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(record(0, 10.0, 5.0));
        t.push(MoveRecord {
            peer: PeerId::new(1),
            ..record(1, 7.0, 6.0)
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.moves_of(PeerId::new(1)).count(), 1);
        assert_eq!(t.moves()[0].improvement(), 5.0);
    }

    #[test]
    fn improvement_handles_infinities() {
        assert!(record(0, f64::INFINITY, 3.0).improvement().is_infinite());
        assert_eq!(record(0, f64::INFINITY, f64::INFINITY).improvement(), 0.0);
    }

    #[test]
    fn self_check_finds_non_improving_moves() {
        let mut t = Trace::new();
        t.push(record(0, 5.0, 4.0));
        assert!(t.first_non_improving().is_none());
        t.push(record(1, 4.0, 4.0));
        assert_eq!(t.first_non_improving().unwrap().step, 1);
    }
}
