//! Sequential-move dynamics for the selfish-peers game.
//!
//! The paper's Section 5 shows that selfish peers may *never* reach a
//! stable topology: best-response dynamics can cycle forever even without
//! churn. This crate provides the machinery to observe exactly that:
//!
//! * [`DynamicsRunner`] — activates one peer at a time per a
//!   [`Schedule`], letting it play a best response or the first improving
//!   move ([`ResponseRule`]);
//! * convergence detection — a profile is stable when every peer has been
//!   activated since the last change and none of them moved;
//! * cycle detection — for deterministic schedules, revisiting a
//!   `(profile, schedule position)` state proves the dynamics loops
//!   forever ([`Termination::Cycle`]);
//! * [`Trace`] — a full record of every strategy change, used by the
//!   Figure 3 experiment to print the improvement cycle;
//! * [`stats`] — batch convergence statistics over seeds;
//! * [`churn`] — an extension simulating peers joining and leaving.
//!
//! # Round engines and the determinism contract
//!
//! The sequential engine drives one `GameSession` per run and repairs its
//! caches move by move; with [`DynamicsConfig::oracle_reuse`] (the
//! default) each activation's best/better-response oracle is also served
//! from the session's persistent oracle cache — candidate rows survive
//! accepted moves via the same tightness-test repair the distance cache
//! uses, so consecutive activations stop paying `n - 1` fresh sweeps
//! each (`oracle_reuse: false` restores the fresh-oracle engine, kept as
//! the bench baseline; both are bit-identical by property-tested
//! contract). [`simultaneous::run_simultaneous`] and the churn simulator
//! instead commit each round's (respectively each churn event's)
//! accepted updates through `GameSession::apply_batch`, paying a single
//! overlay rebuild and repair pass per round however many peers
//! switched. Cycle detection in the sequential engine keys its
//! seen-state map on 64-bit profile fingerprints and confirms hits
//! against a compact canonical encoding, so the per-step cost stays
//! O(links) with no false cycle reports.
//!
//! A simultaneous round computes k independent best-response oracles
//! against the frozen round-start profile, so
//! [`simultaneous::run_simultaneous`] ships two interchangeable engines:
//! the **sequential** per-peer loop, and a **sharded** engine
//! (`GameSession::best_responses_round`) that snapshots the round-start
//! state once, fans the oracles out over `fork_readonly` worker shards
//! with per-thread Dijkstra scratch, and merges the accepted moves in
//! stable peer order into one `apply_batch`. The
//! [`simultaneous::SimultaneousConfig::parallelism`] knob (also fed to
//! `GameSession::set_parallelism`) picks the engine. **Determinism
//! contract:** both engines produce bit-identical runs — accepted-move
//! sets, traces, termination, and round counts — for any shard count,
//! enforced by `tests/proptest_parallel_round.rs`. The churn simulator's
//! [`churn::ChurnSimulator::settle_rounds`] re-stabilises through the
//! same round engine.
//!
//! For instances too large for any full-matrix engine, the
//! [`large_scale`] driver polls `GameSession::local_response` per peer
//! and commits each round through one `apply_batch` — on a sparse
//! session ([`sp_core::GameSession::new_sparse`]) that is `O(n)`
//! transient memory per round, no `n × n` state ever.
//!
//! # Example
//!
//! ```
//! use sp_core::{Game, StrategyProfile};
//! use sp_dynamics::{DynamicsConfig, DynamicsRunner, Termination};
//! use sp_metric::LineSpace;
//!
//! let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 3.0]).unwrap(), 1.0).unwrap();
//! let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
//! let outcome = runner.run(StrategyProfile::empty(3));
//! assert!(matches!(outcome.termination, Termination::Converged { .. }));
//! ```

#![forbid(unsafe_code)]
// Index loops over small fixed-size numeric tables are clearer than
// iterator chains in this codebase's shortest-path/game kernels.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod churn;
mod engine;
pub mod large_scale;
mod schedule;
pub mod simultaneous;
pub mod stats;
mod trace;

pub use engine::{
    run_config_on_session, DynamicsConfig, DynamicsOutcome, DynamicsRunner, ResponseRule,
    Termination,
};
pub use schedule::{Schedule, ScheduleState};
pub use trace::{MoveRecord, Trace};
