use rand::prelude::*;
use sp_core::PeerId;

/// The activation order of peers.
///
/// Deterministic schedules ([`Schedule::RoundRobin`], [`Schedule::Fixed`])
/// support *proof-grade* cycle detection: revisiting the same profile at
/// the same schedule position implies the dynamics repeats forever.
/// Randomized schedules are useful for convergence statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Schedule {
    /// Peers move in index order, repeatedly: `0, 1, …, n-1, 0, …`.
    #[default]
    RoundRobin,
    /// A fixed repeating order of peers.
    Fixed(Vec<PeerId>),
    /// Each round is a fresh uniformly random permutation of all peers.
    RandomPermutation {
        /// RNG seed (dynamics stay reproducible).
        seed: u64,
    },
    /// Every step activates one peer chosen uniformly at random.
    UniformRandom {
        /// RNG seed (dynamics stay reproducible).
        seed: u64,
    },
}

impl Schedule {
    /// Returns `true` when the activation sequence is a deterministic
    /// function of the step index (enabling cycle proofs).
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Schedule::RoundRobin | Schedule::Fixed(_))
    }

    /// Instantiates the stateful activation stream for `n` peers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if a [`Schedule::Fixed`] order is empty or
    /// mentions a peer `>= n`.
    #[must_use]
    pub fn start(&self, n: usize) -> ScheduleState {
        assert!(n > 0, "cannot schedule zero peers");
        match self {
            Schedule::RoundRobin => ScheduleState {
                n,
                kind: StateKind::Cyclic {
                    order: (0..n).map(PeerId::new).collect(),
                    pos: 0,
                },
            },
            Schedule::Fixed(order) => {
                assert!(!order.is_empty(), "fixed schedule must not be empty");
                for p in order {
                    assert!(p.index() < n, "peer {p} out of bounds for {n} peers");
                }
                ScheduleState {
                    n,
                    kind: StateKind::Cyclic {
                        order: order.clone(),
                        pos: 0,
                    },
                }
            }
            Schedule::RandomPermutation { seed } => ScheduleState {
                n,
                kind: StateKind::Permutation {
                    rng: StdRng::seed_from_u64(*seed),
                    order: Vec::new(),
                    pos: 0,
                },
            },
            Schedule::UniformRandom { seed } => ScheduleState {
                n,
                kind: StateKind::Uniform {
                    rng: StdRng::seed_from_u64(*seed),
                },
            },
        }
    }
}

#[derive(Debug)]
enum StateKind {
    Cyclic {
        order: Vec<PeerId>,
        pos: usize,
    },
    Permutation {
        rng: StdRng,
        order: Vec<PeerId>,
        pos: usize,
    },
    Uniform {
        rng: StdRng,
    },
}

/// The stateful activation stream produced by [`Schedule::start`].
#[derive(Debug)]
pub struct ScheduleState {
    n: usize,
    kind: StateKind,
}

impl ScheduleState {
    /// The next peer to activate.
    pub fn next_peer(&mut self) -> PeerId {
        match &mut self.kind {
            StateKind::Cyclic { order, pos } => {
                let p = order[*pos];
                *pos = (*pos + 1) % order.len();
                p
            }
            StateKind::Permutation { rng, order, pos } => {
                if *pos >= order.len() {
                    *order = (0..self.n).map(PeerId::new).collect();
                    order.shuffle(rng);
                    *pos = 0;
                }
                let p = order[*pos];
                *pos += 1;
                p
            }
            StateKind::Uniform { rng } => PeerId::new(rng.random_range(0..self.n)),
        }
    }

    /// The schedule position used as part of the cycle-detection key, or
    /// `None` for randomized schedules (where repetition proves nothing).
    #[must_use]
    pub fn position_key(&self) -> Option<usize> {
        match &self.kind {
            StateKind::Cyclic { pos, .. } => Some(*pos),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_in_order() {
        let mut s = Schedule::RoundRobin.start(3);
        let seq: Vec<usize> = (0..7).map(|_| s.next_peer().index()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn fixed_schedule_repeats_given_order() {
        let order = vec![PeerId::new(2), PeerId::new(0)];
        let mut s = Schedule::Fixed(order).start(3);
        let seq: Vec<usize> = (0..5).map(|_| s.next_peer().index()).collect();
        assert_eq!(seq, vec![2, 0, 2, 0, 2]);
    }

    #[test]
    fn permutation_covers_all_peers_each_round() {
        let mut s = Schedule::RandomPermutation { seed: 1 }.start(5);
        for _round in 0..4 {
            let mut seen: Vec<usize> = (0..5).map(|_| s.next_peer().index()).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn uniform_random_is_reproducible() {
        let mut a = Schedule::UniformRandom { seed: 9 }.start(4);
        let mut b = Schedule::UniformRandom { seed: 9 }.start(4);
        for _ in 0..20 {
            assert_eq!(a.next_peer(), b.next_peer());
        }
    }

    #[test]
    fn determinism_flags() {
        assert!(Schedule::RoundRobin.is_deterministic());
        assert!(Schedule::Fixed(vec![PeerId::new(0)]).is_deterministic());
        assert!(!Schedule::RandomPermutation { seed: 0 }.is_deterministic());
        assert!(!Schedule::UniformRandom { seed: 0 }.is_deterministic());
    }

    #[test]
    fn position_keys_only_for_deterministic() {
        let s = Schedule::RoundRobin.start(2);
        assert_eq!(s.position_key(), Some(0));
        let r = Schedule::UniformRandom { seed: 0 }.start(2);
        assert_eq!(r.position_key(), None);
    }

    #[test]
    #[should_panic(expected = "zero peers")]
    fn zero_peers_rejected() {
        let _ = Schedule::RoundRobin.start(0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn fixed_schedule_validates_bounds() {
        let _ = Schedule::Fixed(vec![PeerId::new(5)]).start(3);
    }
}
