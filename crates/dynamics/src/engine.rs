use std::collections::HashMap;

use sp_core::{BestResponseMethod, Game, GameSession, Move, PeerId, StrategyProfile};

use crate::trace::{MoveRecord, Trace};
use crate::Schedule;

/// One previously seen `(profile, schedule position)` state, kept for
/// exact confirmation of fingerprint hits.
#[derive(Debug)]
struct SeenState {
    pos: usize,
    encoded: Vec<u64>,
    step: usize,
    moves: usize,
}

/// Exact state-revisit detection keyed on 64-bit fingerprints.
///
/// Hashing the full [`StrategyProfile`] on every step costs `O(n)` per
/// lookup plus a profile clone per insert; the detector instead packs the
/// profile's links into a compact canonical encoding once, keys the map
/// on an FNV-1a fingerprint of `(links, position)`, and confirms every
/// hit against the stored encoding — a fingerprint collision lands in
/// the same bucket but can never produce a false cycle report.
#[derive(Debug, Default)]
pub(crate) struct CycleDetector {
    seen: HashMap<u64, Vec<SeenState>>,
}

/// Canonical packed encoding of a profile: each directed link as
/// `from << 32 | to`, in the profile's (sorted) iteration order.
fn encode_profile(profile: &StrategyProfile) -> Vec<u64> {
    profile
        .links()
        .map(|(a, b)| ((a.index() as u64) << 32) | b.index() as u64)
        .collect()
}

/// FNV-1a over the packed links and the schedule position (the
/// workspace-shared [`sp_graph::fnv1a_extend`], chained per word).
fn fingerprint(encoded: &[u64], pos: usize) -> u64 {
    let mut h = sp_graph::FNV1A_BASIS;
    for &v in encoded.iter().chain(std::iter::once(&(pos as u64))) {
        h = sp_graph::fnv1a_extend(h, &v.to_le_bytes());
    }
    h
}

impl CycleDetector {
    /// If this exact `(profile, pos)` state was visited before, returns
    /// the `(step, moves)` counters of the first visit; otherwise records
    /// the state under the current counters.
    pub(crate) fn check_and_insert(
        &mut self,
        profile: &StrategyProfile,
        pos: usize,
        step: usize,
        moves: usize,
    ) -> Option<(usize, usize)> {
        let encoded = encode_profile(profile);
        let bucket = self.seen.entry(fingerprint(&encoded, pos)).or_default();
        if let Some(first) = bucket.iter().find(|s| s.pos == pos && s.encoded == encoded) {
            return Some((first.step, first.moves));
        }
        bucket.push(SeenState {
            pos,
            encoded,
            step,
            moves,
        });
        None
    }
}

/// How an activated peer updates its strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResponseRule {
    /// Play a best response computed with the given method. With an exact
    /// method this is classic best-response dynamics.
    #[default]
    BestResponse,
    /// Play a best response computed with the given (possibly heuristic)
    /// method.
    BestResponseWith(BestResponseMethod),
    /// Play the first improving single-link change (drop/add/swap) —
    /// "better-response" dynamics with minimal topology churn per step.
    BetterResponse,
}

/// Configuration of a dynamics run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsConfig {
    /// Update rule for activated peers.
    pub rule: ResponseRule,
    /// Activation schedule.
    pub schedule: Schedule,
    /// Stop after this many rounds (a round is `n` activations).
    pub max_rounds: usize,
    /// Relative improvement threshold below which a peer keeps its
    /// strategy (guards against floating-point churn).
    pub tolerance: f64,
    /// Record every accepted move into [`DynamicsOutcome::trace`].
    pub record_trace: bool,
    /// Detect state revisits (deterministic schedules only) and stop with
    /// [`Termination::Cycle`].
    pub detect_cycles: bool,
    /// Serve each activation's response oracle from the session's
    /// persistent oracle cache (`true`, the default): candidate rows are
    /// reused across moves and only re-swept when an accepted move could
    /// actually have changed them. `false` forces a fresh `G_{-i}`
    /// oracle per activation — the pre-cache engine, kept as the
    /// baseline for the `sequential_reuse` bench and the equivalence
    /// property tests (both engines are bit-identical by contract).
    pub oracle_reuse: bool,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            rule: ResponseRule::BestResponse,
            schedule: Schedule::RoundRobin,
            max_rounds: 200,
            tolerance: 1e-9,
            record_trace: false,
            detect_cycles: true,
            oracle_reuse: true,
        }
    }
}

/// Why a dynamics run stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum Termination {
    /// Every peer was activated since the last change and none moved: the
    /// profile is stable under the configured response rule. With an exact
    /// best-response rule this certifies a Nash equilibrium.
    Converged {
        /// Rounds executed before convergence was detected.
        rounds: usize,
    },
    /// The same `(profile, schedule position)` state recurred under a
    /// deterministic schedule — the dynamics provably loops forever.
    /// This is the observable form of the paper's Theorem 5.1.
    Cycle {
        /// Step at which the revisited state was first seen.
        first_seen_step: usize,
        /// Length of the loop in steps.
        period_steps: usize,
        /// Number of accepted strategy changes inside one loop.
        moves_in_cycle: usize,
    },
    /// `max_rounds` elapsed without convergence or a detected cycle.
    RoundLimit,
}

/// The result of a dynamics run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsOutcome {
    /// The final profile (for [`Termination::Cycle`], the profile at the
    /// moment the revisit was detected).
    pub profile: StrategyProfile,
    /// Why the run stopped.
    pub termination: Termination,
    /// Total activations executed.
    pub steps: usize,
    /// Accepted strategy changes.
    pub moves: usize,
    /// The move log (only if [`DynamicsConfig::record_trace`]).
    pub trace: Option<Trace>,
}

/// Executes sequential-move dynamics on a game.
///
/// # Example
///
/// ```
/// use sp_core::{Game, StrategyProfile, is_nash, NashTest};
/// use sp_dynamics::{DynamicsConfig, DynamicsRunner, Termination};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(
///     &LineSpace::new(vec![0.0, 1.0, 2.5, 4.0]).unwrap(), 2.0).unwrap();
/// let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
/// let out = runner.run(StrategyProfile::empty(4));
/// if let Termination::Converged { .. } = out.termination {
///     // Exact best-response convergence certifies a Nash equilibrium.
///     assert!(is_nash(&game, &out.profile, &NashTest::exact()).unwrap().is_nash());
/// }
/// ```
#[derive(Debug)]
pub struct DynamicsRunner<'g> {
    game: &'g Game,
    config: DynamicsConfig,
}

impl<'g> DynamicsRunner<'g> {
    /// Creates a runner for `game` with the given configuration.
    #[must_use]
    pub fn new(game: &'g Game, config: DynamicsConfig) -> Self {
        DynamicsRunner { game, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DynamicsConfig {
        &self.config
    }

    /// Runs the dynamics from `start` until convergence, a proven cycle,
    /// or the round limit.
    ///
    /// Internally drives a [`GameSession`] so each activation reuses the
    /// cached overlay distances and accepted moves repair the cache
    /// incrementally instead of forcing rebuilds. With
    /// [`DynamicsConfig::oracle_reuse`] (the default) the best/better
    /// response oracles themselves are served from the session's
    /// persistent oracle cache, so consecutive activations stop paying
    /// `n - 1` fresh sweeps each.
    ///
    /// # Panics
    ///
    /// Panics if `start` has a different peer count than the game, or if
    /// the game has no peers.
    #[must_use]
    pub fn run(&mut self, start: StrategyProfile) -> DynamicsOutcome {
        let n = self.game.n();
        assert!(n > 0, "cannot run dynamics on an empty game");
        assert_eq!(start.n(), n, "profile size must match the game");
        let mut session =
            GameSession::new(self.game.clone(), start).expect("profile size checked above");
        self.run_session(&mut session)
    }

    /// Like [`DynamicsRunner::run`], but drives a caller-owned session
    /// (starting from its current profile) so the caller can inspect
    /// [`GameSession::stats`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the session's game differs from the runner's, or if the
    /// game has no peers.
    #[must_use]
    pub fn run_session(&mut self, session: &mut GameSession) -> DynamicsOutcome {
        let n = self.game.n();
        assert!(n > 0, "cannot run dynamics on an empty game");
        assert_eq!(
            session.game(),
            self.game,
            "session must wrap the runner's game"
        );

        let mut schedule = self.config.schedule.start(n);
        let mut trace = if self.config.record_trace {
            Some(Trace::new())
        } else {
            None
        };
        let mut seen = CycleDetector::default();
        let detect = self.config.detect_cycles && self.config.schedule.is_deterministic();

        // Convergence: all peers activated since the last accepted change,
        // none of them changed anything.
        let mut quiet = vec![false; n];
        let mut quiet_count = 0usize;

        let max_steps = self.config.max_rounds.saturating_mul(n);
        let mut moves = 0usize;
        let mut step = 0usize;

        while step < max_steps {
            if detect {
                if let Some(pos) = schedule.position_key() {
                    if let Some((first_step, first_moves)) =
                        seen.check_and_insert(session.profile(), pos, step, moves)
                    {
                        return DynamicsOutcome {
                            profile: session.profile().clone(),
                            termination: Termination::Cycle {
                                first_seen_step: first_step,
                                period_steps: step - first_step,
                                moves_in_cycle: moves - first_moves,
                            },
                            steps: step,
                            moves,
                            trace,
                        };
                    }
                }
            }

            let peer = schedule.next_peer();
            let accepted = self.activate(session, peer, step, trace.as_mut());
            step += 1;

            if accepted {
                moves += 1;
                quiet.fill(false);
                quiet_count = 0;
            } else if !quiet[peer.index()] {
                // Only a do-nothing activation makes a peer quiet. An
                // accepted move must NOT mark the mover: under
                // `ResponseRule::BetterResponse` it played the *first*
                // improving single-link change and may hold another, so
                // counting it toward convergence without re-activating it
                // can certify a false fixed point.
                quiet[peer.index()] = true;
                quiet_count += 1;
            }
            if quiet_count == n {
                return DynamicsOutcome {
                    profile: session.profile().clone(),
                    termination: Termination::Converged {
                        rounds: step.div_ceil(n),
                    },
                    steps: step,
                    moves,
                    trace,
                };
            }
        }

        DynamicsOutcome {
            profile: session.profile().clone(),
            termination: Termination::RoundLimit,
            steps: step,
            moves,
            trace,
        }
    }

    /// Activates one peer; applies the accepted move to the session.
    /// Returns `true` when the strategy changed.
    fn activate(
        &self,
        session: &mut GameSession,
        peer: PeerId,
        step: usize,
        trace: Option<&mut Trace>,
    ) -> bool {
        let tol = self.config.tolerance;
        let reuse = self.config.oracle_reuse;
        let (new_links, old_cost, new_cost) = match self.config.rule {
            ResponseRule::BestResponse | ResponseRule::BestResponseWith(_) => {
                let method = match self.config.rule {
                    ResponseRule::BestResponseWith(m) => m,
                    _ => BestResponseMethod::Exact,
                };
                let br = if reuse {
                    session.best_response(peer, method)
                } else {
                    session.best_response_uncached(peer, method)
                }
                .expect("validated inputs cannot fail");
                if !br.improves(tol) {
                    return false;
                }
                (br.links, br.current_cost, br.cost)
            }
            ResponseRule::BetterResponse => {
                let mv = if reuse {
                    session.first_improving_move(peer, tol)
                } else {
                    session.first_improving_move_uncached(peer, tol)
                }
                .expect("validated inputs cannot fail");
                match mv {
                    None => return false,
                    Some(mv) => (mv.links, mv.current_cost, mv.cost),
                }
            }
        };
        if &new_links == session.profile().strategy(peer) {
            return false;
        }
        let old_links = session
            .apply(Move::SetStrategy {
                peer,
                links: new_links.clone(),
            })
            .expect("response links are valid by construction");
        if let Some(t) = trace {
            t.push(MoveRecord {
                step,
                peer,
                old_links,
                new_links,
                old_cost,
                new_cost,
            });
        }
        true
    }
}

/// Drives `config` on a caller-owned session starting from its current
/// profile — the service entry point used by `sp-serve`'s `run_dynamics`
/// request, where the session (and the game inside it) lives in a
/// registry slot and no separate `&Game` is on hand. The game handle is
/// cloned out of the session ([`GameSession::game_arc`], an atomic
/// increment, not an O(n²) matrix copy) so the runner can borrow game
/// and session simultaneously.
///
/// # Panics
///
/// Panics if the session's game has no peers.
pub fn run_config_on_session(config: DynamicsConfig, session: &mut GameSession) -> DynamicsOutcome {
    let game = session.game_arc();
    DynamicsRunner::new(&game, config).run_session(session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::{is_nash, NashTest};
    use sp_metric::LineSpace;

    fn line_game(positions: Vec<f64>, alpha: f64) -> Game {
        Game::from_space(&LineSpace::new(positions).unwrap(), alpha).unwrap()
    }

    #[test]
    fn converges_on_small_line_and_result_is_nash() {
        let game = line_game(vec![0.0, 1.0, 3.0, 6.0], 1.5);
        let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
        let out = runner.run(StrategyProfile::empty(4));
        assert!(matches!(out.termination, Termination::Converged { .. }));
        assert!(is_nash(&game, &out.profile, &NashTest::exact())
            .unwrap()
            .is_nash());
        assert!(out.moves >= 4, "every peer must link up at least once");
    }

    #[test]
    fn starting_at_equilibrium_converges_immediately() {
        let game = line_game(vec![0.0, 1.0], 1.0);
        let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
        let out = runner.run(StrategyProfile::complete(2));
        assert!(matches!(
            out.termination,
            Termination::Converged { rounds: 1 }
        ));
        assert_eq!(out.moves, 0);
        assert_eq!(out.steps, 2);
    }

    #[test]
    fn trace_records_only_improving_moves() {
        let game = line_game(vec![0.0, 1.0, 2.0, 4.0, 8.0], 0.8);
        let config = DynamicsConfig {
            record_trace: true,
            ..DynamicsConfig::default()
        };
        let mut runner = DynamicsRunner::new(&game, config);
        let out = runner.run(StrategyProfile::empty(5));
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.len(), out.moves);
        assert!(trace.first_non_improving().is_none());
    }

    #[test]
    fn better_response_also_converges_here() {
        let game = line_game(vec![0.0, 1.0, 3.0], 1.0);
        let config = DynamicsConfig {
            rule: ResponseRule::BetterResponse,
            ..DynamicsConfig::default()
        };
        let mut runner = DynamicsRunner::new(&game, config);
        let out = runner.run(StrategyProfile::empty(3));
        assert!(matches!(out.termination, Termination::Converged { .. }));
        // Better-response convergence certifies exactly: no single-link
        // move improves for any peer (a weaker condition than full Nash).
        for i in 0..3 {
            assert!(sp_core::first_improving_move(
                &game,
                &out.profile,
                sp_core::PeerId::new(i),
                1e-9
            )
            .unwrap()
            .is_none());
        }
    }

    #[test]
    fn better_response_is_not_declared_converged_with_moves_left() {
        // Regression test for the premature-convergence bug: an accepted
        // move used to mark the mover itself quiet, so a peer needing TWO
        // successive single-link improvements could be counted toward
        // convergence after its first move.
        //
        // Line 0-1-2-3, α = 1. Peers 1..3 hold the bidirectional chain —
        // stable under any single-link change (drops disconnect, adds and
        // swaps never pay off on a line). Peer 0 starts with the chain
        // link plus two redundant long links {1, 2, 3}; dropping 0→2 and
        // dropping 0→3 are two separate strictly improving moves (each
        // saves α and costs no stretch), and `first_improving_move` only
        // ever plays one of them per activation.
        let game = line_game(vec![0.0, 1.0, 2.0, 3.0], 1.0);
        let start = StrategyProfile::from_links(
            4,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
            ],
        )
        .unwrap();
        let config = DynamicsConfig {
            rule: ResponseRule::BetterResponse,
            ..DynamicsConfig::default()
        };
        let mut runner = DynamicsRunner::new(&game, config);
        let out = runner.run(start);
        assert!(
            matches!(out.termination, Termination::Converged { .. }),
            "expected convergence, got {:?}",
            out.termination
        );
        assert_eq!(out.moves, 2, "peer 0 must get to play both drops");
        // The certified fixed point really is single-link stable — the
        // pre-fix engine returned here after ONE move, with peer 0 still
        // holding an improving drop.
        for i in 0..4 {
            assert!(
                sp_core::first_improving_move(&game, &out.profile, PeerId::new(i), 1e-9)
                    .unwrap()
                    .is_none(),
                "peer {i} still has an improving move at \"convergence\""
            );
        }
        assert_eq!(out.profile.strategy(PeerId::new(0)).len(), 1);
    }

    #[test]
    fn cycle_detector_confirms_hits_exactly() {
        let a = StrategyProfile::from_links(3, &[(0, 1), (1, 2)]).unwrap();
        let b = StrategyProfile::from_links(3, &[(0, 1), (2, 1)]).unwrap();
        let mut det = CycleDetector::default();
        assert_eq!(det.check_and_insert(&a, 0, 0, 0), None);
        assert_eq!(det.check_and_insert(&b, 0, 1, 1), None, "different profile");
        assert_eq!(
            det.check_and_insert(&a, 1, 2, 1),
            None,
            "different position"
        );
        assert_eq!(
            det.check_and_insert(&a, 0, 3, 2),
            Some((0, 0)),
            "exact revisit reports the first visit's counters"
        );
        assert_eq!(det.check_and_insert(&b, 0, 4, 2), Some((1, 1)));
    }

    #[test]
    fn profile_encoding_is_canonical() {
        let a = StrategyProfile::from_links(4, &[(0, 1), (0, 3), (2, 1)]).unwrap();
        let b = StrategyProfile::from_links(4, &[(2, 1), (0, 3), (0, 1)]).unwrap();
        assert_eq!(encode_profile(&a), encode_profile(&b));
        assert_eq!(
            fingerprint(&encode_profile(&a), 5),
            fingerprint(&encode_profile(&b), 5)
        );
        let c = StrategyProfile::from_links(4, &[(0, 1), (0, 3), (2, 3)]).unwrap();
        assert_ne!(encode_profile(&a), encode_profile(&c));
        assert_ne!(
            fingerprint(&encode_profile(&a), 0),
            fingerprint(&encode_profile(&a), 1)
        );
    }

    #[test]
    fn random_schedules_converge_too() {
        let game = line_game(vec![0.0, 1.0, 2.0, 3.0], 1.0);
        for schedule in [
            Schedule::RandomPermutation { seed: 5 },
            Schedule::UniformRandom { seed: 5 },
        ] {
            let config = DynamicsConfig {
                schedule,
                ..DynamicsConfig::default()
            };
            let mut runner = DynamicsRunner::new(&game, config);
            let out = runner.run(StrategyProfile::empty(4));
            assert!(
                matches!(out.termination, Termination::Converged { .. }),
                "schedule failed: {:?}",
                runner.config().schedule
            );
        }
    }

    #[test]
    fn round_limit_is_respected() {
        let game = line_game(vec![0.0, 1.0, 2.0, 3.0], 1.0);
        let config = DynamicsConfig {
            max_rounds: 0,
            ..DynamicsConfig::default()
        };
        let mut runner = DynamicsRunner::new(&game, config);
        let out = runner.run(StrategyProfile::empty(4));
        assert_eq!(out.termination, Termination::RoundLimit);
        assert_eq!(out.steps, 0);
    }

    #[test]
    #[should_panic(expected = "profile size")]
    fn mismatched_profile_panics() {
        let game = line_game(vec![0.0, 1.0], 1.0);
        let mut runner = DynamicsRunner::new(&game, DynamicsConfig::default());
        let _ = runner.run(StrategyProfile::empty(3));
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let game = line_game(vec![0.0, 2.0, 3.0, 7.0, 8.0], 1.2);
        let mut a = DynamicsRunner::new(&game, DynamicsConfig::default());
        let mut b = DynamicsRunner::new(&game, DynamicsConfig::default());
        let oa = a.run(StrategyProfile::empty(5));
        let ob = b.run(StrategyProfile::empty(5));
        assert_eq!(oa.profile, ob.profile);
        assert_eq!(oa.steps, ob.steps);
    }
}
