//! Batch convergence statistics.
//!
//! The conclusion of the paper's Section 5 — selfish dynamics need not
//! stabilise — raises the empirical question *how often* and *how fast*
//! dynamics do converge on ordinary instances. These helpers run many
//! seeded dynamics and aggregate outcomes (experiment E7).

use sp_core::{Game, StrategyProfile};

use crate::{DynamicsConfig, DynamicsOutcome, DynamicsRunner, Termination};

/// Aggregated outcomes of a batch of dynamics runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergenceStats {
    /// Total runs.
    pub runs: usize,
    /// Runs that converged.
    pub converged: usize,
    /// Runs that provably cycled.
    pub cycled: usize,
    /// Runs stopped by the round limit.
    pub round_limited: usize,
    /// Steps used by each converged run.
    pub steps_to_converge: Vec<usize>,
    /// Accepted moves per converged run.
    pub moves_to_converge: Vec<usize>,
}

impl ConvergenceStats {
    /// Fraction of runs that converged (0.0 for an empty batch).
    #[must_use]
    pub fn convergence_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.converged as f64 / self.runs as f64
        }
    }

    /// Mean steps among converged runs (`None` if none converged).
    #[must_use]
    pub fn mean_steps(&self) -> Option<f64> {
        if self.steps_to_converge.is_empty() {
            None
        } else {
            Some(
                self.steps_to_converge.iter().sum::<usize>() as f64
                    / self.steps_to_converge.len() as f64,
            )
        }
    }

    /// Maximum steps among converged runs (`None` if none converged).
    #[must_use]
    pub fn max_steps(&self) -> Option<usize> {
        self.steps_to_converge.iter().copied().max()
    }

    /// Folds one outcome into the statistics.
    pub fn record(&mut self, outcome: &DynamicsOutcome) {
        self.runs += 1;
        match outcome.termination {
            Termination::Converged { .. } => {
                self.converged += 1;
                self.steps_to_converge.push(outcome.steps);
                self.moves_to_converge.push(outcome.moves);
            }
            Termination::Cycle { .. } => self.cycled += 1,
            Termination::RoundLimit => self.round_limited += 1,
        }
    }
}

/// Runs the same dynamics from `starts` and aggregates the outcomes.
#[must_use]
pub fn run_batch(
    game: &Game,
    config: &DynamicsConfig,
    starts: impl IntoIterator<Item = StrategyProfile>,
) -> ConvergenceStats {
    let mut stats = ConvergenceStats::default();
    for start in starts {
        let mut runner = DynamicsRunner::new(game, config.clone());
        let outcome = runner.run(start);
        stats.record(&outcome);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;
    use sp_metric::LineSpace;

    #[test]
    fn batch_on_easy_instances_converges_everywhere() {
        let game =
            sp_core::Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0, 4.0]).unwrap(), 1.0)
                .unwrap();
        let starts = vec![
            StrategyProfile::empty(4),
            StrategyProfile::complete(4),
            StrategyProfile::from_links(4, &[(0, 1), (1, 2)]).unwrap(),
        ];
        let stats = run_batch(&game, &DynamicsConfig::default(), starts);
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.converged, 3);
        assert_eq!(stats.convergence_rate(), 1.0);
        assert!(stats.mean_steps().unwrap() > 0.0);
        assert!(stats.max_steps().unwrap() >= 4);
    }

    #[test]
    fn round_limit_shows_up_in_stats() {
        let game =
            sp_core::Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0]).unwrap(), 1.0).unwrap();
        let config = DynamicsConfig {
            max_rounds: 0,
            schedule: Schedule::UniformRandom { seed: 3 },
            ..DynamicsConfig::default()
        };
        let stats = run_batch(&game, &config, vec![StrategyProfile::empty(3)]);
        assert_eq!(stats.round_limited, 1);
        assert_eq!(stats.convergence_rate(), 0.0);
        assert_eq!(stats.mean_steps(), None);
    }

    #[test]
    fn empty_batch_is_harmless() {
        let stats = ConvergenceStats::default();
        assert_eq!(stats.convergence_rate(), 0.0);
        assert_eq!(stats.mean_steps(), None);
        assert_eq!(stats.max_steps(), None);
    }
}
