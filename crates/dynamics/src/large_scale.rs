//! Round-based better-response dynamics for large sparse sessions.
//!
//! The sequential [`DynamicsRunner`](crate::DynamicsRunner) and the
//! simultaneous round engine both freeze full `n × n` distance state
//! between activations — exactly what a 10⁵-peer instance cannot afford.
//! This driver never requests a full matrix: every peer is polled with
//! [`GameSession::local_response`] against the round-start profile
//! (sparse sessions answer from bounded balls plus landmark sketches,
//! dense sessions from the exact cached scan), and all accepted moves
//! commit through **one** [`GameSession::apply_batch`] per round — one
//! CSR rebuild, one sketch repair, however many peers moved.
//!
//! The semantics are simultaneous (every peer reacts to the same
//! round-start state), matching `run_simultaneous`; the budget per round
//! is `O(n · window · ball_cap · log)` time and `O(n)` transient memory
//! on a sparse session.

use sp_core::{CoreError, GameSession, Move, PeerId, SessionStats};

/// Configuration for [`run_large_scale`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LargeScaleConfig {
    /// Maximum rounds before giving up (`converged: false`).
    pub max_rounds: usize,
    /// Relative improvement tolerance handed to
    /// [`GameSession::local_response`].
    pub tolerance: f64,
}

impl Default for LargeScaleConfig {
    fn default() -> Self {
        LargeScaleConfig {
            max_rounds: 64,
            tolerance: 1e-9,
        }
    }
}

/// Outcome of a [`run_large_scale`] drive.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeScaleReport {
    /// Rounds executed (a terminal all-quiet round counts).
    pub rounds: usize,
    /// Accepted moves committed across all rounds.
    pub moves: usize,
    /// `true` when a round passed with no peer wanting to move (under
    /// the session's response estimator — a heuristic quiescence on
    /// sparse sessions, exact on dense ones).
    pub converged: bool,
    /// Largest [`GameSession::memory_bytes`] observed at any round
    /// boundary — the counter the `large_n_scale` bench gates to prove
    /// the sparse path never materialised a matrix.
    pub peak_memory_bytes: usize,
    /// The session's work counters accumulated over the drive.
    pub stats: SessionStats,
}

/// Drives round-based better-response dynamics on `session` until an
/// all-quiet round or `config.max_rounds`.
///
/// Works on either backend; its reason to exist is the **sparse** one,
/// where a round costs `O(n)` memory. The session's profile is mutated
/// in place; inspect it through [`GameSession::profile`] afterwards.
///
/// # Errors
///
/// Propagates any [`CoreError`] from response evaluation or the batch
/// commit (none occur for in-range peers; the driver only activates
/// peers the session owns).
pub fn run_large_scale(
    session: &mut GameSession,
    config: &LargeScaleConfig,
) -> Result<LargeScaleReport, CoreError> {
    let n = session.n();
    let mut report = LargeScaleReport {
        rounds: 0,
        moves: 0,
        converged: false,
        peak_memory_bytes: session.memory_bytes(),
        stats: SessionStats::default(),
    };
    let mut batch: Vec<Move> = Vec::new();
    for _ in 0..config.max_rounds {
        report.rounds += 1;
        batch.clear();
        for u in 0..n {
            let peer = PeerId::new(u);
            if let Some(br) = session.local_response(peer, config.tolerance)? {
                batch.push(Move::SetStrategy {
                    peer,
                    links: br.links,
                });
            }
        }
        report.peak_memory_bytes = report.peak_memory_bytes.max(session.memory_bytes());
        if batch.is_empty() {
            report.converged = true;
            break;
        }
        report.moves += batch.len();
        session.apply_batch(&batch)?;
        report.peak_memory_bytes = report.peak_memory_bytes.max(session.memory_bytes());
    }
    report.stats = session.stats();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::{Game, StrategyProfile};

    fn line_positions(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn sparse_drive_connects_empty_start() {
        let game = Game::from_line_positions(line_positions(40), 0.8).unwrap();
        let mut session = GameSession::new_sparse(game, StrategyProfile::empty(40)).unwrap();
        let report = run_large_scale(&mut session, &LargeScaleConfig::default()).unwrap();
        assert!(report.moves > 0, "empty start must provoke moves");
        assert!(
            session.profile().link_count() > 0,
            "accepted moves must land in the profile"
        );
        assert!(report.stats.sparse_ball_sweeps > 0);
    }

    #[test]
    fn quiet_round_reports_convergence() {
        // α high enough that no peer wants any link under the estimator's
        // stretch floor: the very first round is all-quiet.
        let game = Game::from_line_positions(line_positions(30), 1e9).unwrap();
        let mut session = GameSession::new_sparse(game, StrategyProfile::empty(30)).unwrap();
        let report = run_large_scale(&mut session, &LargeScaleConfig::default()).unwrap();
        assert!(report.converged);
        assert_eq!(report.moves, 0);
        assert!(report.stats.sparse_pruned_candidates > 0);
    }

    #[test]
    fn dense_session_drives_through_exact_path() {
        let game = Game::from_line_positions(line_positions(12), 0.5).unwrap();
        let mut session = GameSession::new(game, StrategyProfile::empty(12)).unwrap();
        let report = run_large_scale(&mut session, &LargeScaleConfig::default()).unwrap();
        assert!(report.converged, "exact better-response must converge here");
        assert_eq!(report.stats.sparse_ball_sweeps, 0);
    }

    #[test]
    fn peak_memory_stays_linear_on_sparse_sessions() {
        let n = 2000;
        let game = Game::from_line_positions(line_positions(n), 0.8).unwrap();
        let mut session = GameSession::new_sparse(game, StrategyProfile::empty(n)).unwrap();
        let cfg = LargeScaleConfig {
            max_rounds: 2,
            ..LargeScaleConfig::default()
        };
        let report = run_large_scale(&mut session, &cfg).unwrap();
        let dense_matrix = n * n * std::mem::size_of::<f64>();
        assert!(
            report.peak_memory_bytes < dense_matrix / 4,
            "peak {} must stay far below the {} bytes a dense matrix costs",
            report.peak_memory_bytes,
            dense_matrix
        );
    }
}
