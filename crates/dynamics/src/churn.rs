//! Churn extension: peers joining and leaving a running system.
//!
//! The paper proves instability *without* churn (Theorem 5.1); this module
//! provides the complementary simulation with churn, so experiments can
//! quantify how much re-stabilisation work arrivals/departures cause on
//! instances that do converge.
//!
//! A [`ChurnSimulator`] keeps a universe game (all potential peers), an
//! alive set, and a [`GameSession`] holding the strategy profile over the
//! universe. Departures clear the leaver's strategy and everybody's links
//! to it; arrivals start with an empty strategy. [`ChurnSimulator::settle`]
//! then runs dynamics on the alive sub-game. Every churn event — the
//! multi-peer link teardown of a departure, the settle write-back — is a
//! single [`GameSession::apply_batch`] transaction: one overlay rebuild
//! and one repair pass however many peers the event touches.

use sp_core::{Game, GameSession, LinkSet, Move, PeerId, SessionStats, StrategyProfile};
use sp_graph::DistanceMatrix;

use crate::simultaneous::{run_simultaneous, SimultaneousConfig};
use crate::{DynamicsConfig, DynamicsRunner, Termination};

/// The restriction of `game` to the peers listed in `alive`
/// (in the given order). Returns the sub-game; index `k` of the sub-game
/// corresponds to peer `alive[k]` of the original.
///
/// # Panics
///
/// Panics if `alive` contains an out-of-bounds or duplicate index.
#[must_use]
pub fn subgame(game: &Game, alive: &[usize]) -> Game {
    let mut seen = vec![false; game.n()];
    for &i in alive {
        assert!(i < game.n(), "peer {i} out of bounds");
        assert!(!seen[i], "duplicate peer {i} in alive set");
        seen[i] = true;
    }
    // sp-lint: allow(dense-alloc, reason = "the alive sub-game is rebuilt dense by design; churn scenarios run at dense-backend sizes")
    let m = DistanceMatrix::from_fn(alive.len(), |a, b| game.distance(alive[a], alive[b]));
    Game::new(m, game.alpha()).expect("restriction of a valid game is valid")
}

/// Projects a universe profile onto the alive sub-game: links to dead
/// peers are dropped, indices are remapped to sub-game positions.
///
/// # Panics
///
/// Panics if `alive` contains out-of-bounds or duplicate indices, or if
/// `profile` is smaller than the universe implied by its own length.
#[must_use]
pub fn project_profile(profile: &StrategyProfile, alive: &[usize]) -> StrategyProfile {
    let mut position = vec![usize::MAX; profile.n()];
    for (k, &i) in alive.iter().enumerate() {
        assert!(i < profile.n(), "peer {i} out of bounds");
        assert!(position[i] == usize::MAX, "duplicate peer {i} in alive set");
        position[i] = k;
    }
    let strategies: Vec<LinkSet> = alive
        .iter()
        .map(|&i| {
            profile
                .strategy(PeerId::new(i))
                .iter()
                .filter_map(|j| {
                    let p = position[j.index()];
                    (p != usize::MAX).then_some(p)
                })
                .collect()
        })
        .collect();
    StrategyProfile::from_strategies(strategies).expect("projection preserves validity")
}

/// Outcome of settling the system after one churn event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRecord {
    /// Alive peers when the settle ran.
    pub alive: Vec<usize>,
    /// Activations performed.
    pub steps: usize,
    /// Accepted strategy changes.
    pub moves: usize,
    /// Whether the system re-stabilised.
    pub converged: bool,
}

/// Simulates a system under churn: peers leave and join, and the survivors
/// re-run selfish dynamics between events.
///
/// # Example
///
/// ```
/// use sp_core::{Game, StrategyProfile};
/// use sp_dynamics::churn::ChurnSimulator;
/// use sp_dynamics::DynamicsConfig;
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(
///     &LineSpace::new(vec![0.0, 1.0, 2.0, 4.0]).unwrap(), 1.0).unwrap();
/// let mut sim = ChurnSimulator::new(&game);
/// let r0 = sim.settle(&DynamicsConfig::default());
/// assert!(r0.converged);
/// sim.leave(2).unwrap();
/// let r1 = sim.settle(&DynamicsConfig::default());
/// assert!(r1.converged);
/// assert_eq!(r1.alive, vec![0, 1, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct ChurnSimulator {
    alive: Vec<bool>,
    /// Universe-wide session (it owns the universe game); churn events
    /// mutate it through [`GameSession::apply_batch`] so its caches
    /// survive each event.
    session: GameSession,
    history: Vec<ChurnRecord>,
}

impl ChurnSimulator {
    /// Starts with every peer alive and the empty profile.
    #[must_use]
    pub fn new(universe: &Game) -> Self {
        ChurnSimulator {
            alive: vec![true; universe.n()],
            session: GameSession::new(universe.clone(), StrategyProfile::empty(universe.n()))
                .expect("empty profile matches the universe"),
            history: Vec::new(),
        }
    }

    /// The universe game (all potential peers).
    #[must_use]
    pub fn universe(&self) -> &Game {
        self.session.game()
    }

    /// Indices of currently alive peers, ascending.
    #[must_use]
    pub fn alive_peers(&self) -> Vec<usize> {
        (0..self.universe().n())
            .filter(|&i| self.alive[i])
            .collect()
    }

    /// The current profile over the universe (dead peers have empty
    /// strategies).
    #[must_use]
    pub fn profile(&self) -> &StrategyProfile {
        self.session.profile()
    }

    /// Work counters of the underlying universe session (batch counts,
    /// sweeps saved across churn events).
    #[must_use]
    pub fn session_stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// Settle records accumulated so far.
    #[must_use]
    pub fn history(&self) -> &[ChurnRecord] {
        &self.history
    }

    /// Removes `peer` from the system: clears its strategy and everyone's
    /// links to it.
    ///
    /// # Errors
    ///
    /// Returns an error string if `peer` is out of bounds or already gone.
    pub fn leave(&mut self, peer: usize) -> Result<(), String> {
        if peer >= self.universe().n() {
            return Err(format!("peer {peer} out of bounds"));
        }
        if !self.alive[peer] {
            return Err(format!("peer {peer} is not alive"));
        }
        self.alive[peer] = false;
        let p = PeerId::new(peer);
        // One batch for the whole departure: the leaver's strategy reset
        // plus every link pointing at it.
        let mut event = vec![Move::SetStrategy {
            peer: p,
            links: LinkSet::new(),
        }];
        for i in 0..self.universe().n() {
            if i != peer && self.session.profile().has_link(PeerId::new(i), p) {
                event.push(Move::RemoveLink {
                    from: PeerId::new(i),
                    to: p,
                });
            }
        }
        self.session
            .apply_batch(&event)
            .expect("departure moves use validated indices");
        Ok(())
    }

    /// Re-adds `peer` with an empty strategy.
    ///
    /// # Errors
    ///
    /// Returns an error string if `peer` is out of bounds or already
    /// alive.
    pub fn join(&mut self, peer: usize) -> Result<(), String> {
        if peer >= self.universe().n() {
            return Err(format!("peer {peer} out of bounds"));
        }
        if self.alive[peer] {
            return Err(format!("peer {peer} is already alive"));
        }
        self.alive[peer] = true;
        Ok(())
    }

    /// Runs dynamics among alive peers until stable (or the config's round
    /// limit) and writes the resulting strategies back.
    pub fn settle(&mut self, config: &DynamicsConfig) -> ChurnRecord {
        self.settle_with(|sub, start| {
            let mut runner = DynamicsRunner::new(sub, config.clone());
            let out = runner.run(start);
            (
                out.profile,
                out.steps,
                out.moves,
                matches!(out.termination, Termination::Converged { .. }),
            )
        })
    }

    /// Like [`ChurnSimulator::settle`], but re-stabilises with
    /// **simultaneous rounds** ([`run_simultaneous`]) instead of one
    /// activation at a time — the settle phase this drives is the sharded
    /// round engine, so a churn burst on a large alive set re-settles
    /// with its best-response oracles fanned out over worker shards
    /// (`config.parallelism`). `steps` counts activations
    /// (`rounds × alive`), keeping records comparable with
    /// [`ChurnSimulator::settle`].
    pub fn settle_rounds(&mut self, config: &SimultaneousConfig) -> ChurnRecord {
        self.settle_with(|sub, start| {
            let out = run_simultaneous(sub, start, config);
            (
                out.profile,
                out.rounds * sub.n(),
                out.moves,
                matches!(out.termination, Termination::Converged { .. }),
            )
        })
    }

    /// Shared settle scaffolding: project the alive sub-game, run the
    /// supplied engine, and write the settled strategies back in universe
    /// coordinates as one batch.
    fn settle_with(
        &mut self,
        engine: impl FnOnce(&Game, StrategyProfile) -> (StrategyProfile, usize, usize, bool),
    ) -> ChurnRecord {
        let alive = self.alive_peers();
        let record = if alive.is_empty() {
            ChurnRecord {
                alive,
                steps: 0,
                moves: 0,
                converged: true,
            }
        } else {
            let sub = subgame(self.universe(), &alive);
            let start = project_profile(self.session.profile(), &alive);
            let (settled, steps, moves, converged) = engine(&sub, start);
            // Write strategies back in universe coordinates — one batch
            // for the whole settled sub-profile.
            let write_back: Vec<Move> = alive
                .iter()
                .enumerate()
                .map(|(k, &i)| Move::SetStrategy {
                    peer: PeerId::new(i),
                    links: settled
                        .strategy(PeerId::new(k))
                        .iter()
                        .map(|j| alive[j.index()])
                        .collect(),
                })
                .collect();
            self.session
                .apply_batch(&write_back)
                .expect("write-back uses valid indices");
            ChurnRecord {
                alive,
                steps,
                moves,
                converged,
            }
        };
        self.history.push(record.clone());
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::{is_nash, NashTest};
    use sp_metric::LineSpace;

    fn game() -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0, 4.0, 7.0]).unwrap(), 1.0).unwrap()
    }

    #[test]
    fn subgame_restricts_distances() {
        let g = game();
        let sub = subgame(&g, &[0, 2, 4]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.distance(0, 1), 2.0);
        assert_eq!(sub.distance(1, 2), 5.0);
        assert_eq!(sub.alpha(), 1.0);
    }

    #[test]
    fn project_profile_drops_dead_links() {
        let p = StrategyProfile::from_links(4, &[(0, 1), (0, 2), (3, 0)]).unwrap();
        let q = project_profile(&p, &[0, 2, 3]);
        assert_eq!(q.n(), 3);
        // Link 0 -> 1 died with peer 1; 0 -> 2 remaps to 0 -> 1.
        assert!(q.has_link(PeerId::new(0), PeerId::new(1)));
        assert_eq!(q.strategy(PeerId::new(0)).len(), 1);
        // 3 -> 0 remaps to index 2 -> 0.
        assert!(q.has_link(PeerId::new(2), PeerId::new(0)));
    }

    #[test]
    fn full_churn_cycle_restabilises() {
        let g = game();
        let mut sim = ChurnSimulator::new(&g);
        let r = sim.settle(&DynamicsConfig::default());
        assert!(r.converged);
        // Departure of an interior peer forces its neighbours to relink.
        sim.leave(2).unwrap();
        let r2 = sim.settle(&DynamicsConfig::default());
        assert!(r2.converged);
        assert_eq!(r2.alive, vec![0, 1, 3, 4]);
        // The settled sub-profile is a Nash equilibrium of the sub-game.
        let sub = subgame(&g, &r2.alive);
        let proj = project_profile(sim.profile(), &r2.alive);
        assert!(is_nash(&sub, &proj, &NashTest::exact()).unwrap().is_nash());
        // Rejoin.
        sim.join(2).unwrap();
        let r3 = sim.settle(&DynamicsConfig::default());
        assert!(r3.converged);
        assert_eq!(r3.alive.len(), 5);
        assert_eq!(sim.history().len(), 3);
    }

    #[test]
    fn churn_events_are_batched_transactions() {
        let g = game();
        let mut sim = ChurnSimulator::new(&g);
        let _ = sim.settle(&DynamicsConfig::default());
        let after_settle = sim.session_stats();
        assert_eq!(
            after_settle.batch_applies, 1,
            "the settle write-back is one batch"
        );
        sim.leave(2).unwrap();
        let after_leave = sim.session_stats();
        assert_eq!(
            after_leave.batch_applies - after_settle.batch_applies,
            1,
            "a departure commits as one batch however many links die"
        );
        assert!(after_leave.batch_moves > after_settle.batch_moves);
    }

    #[test]
    fn leave_and_join_validate() {
        let g = game();
        let mut sim = ChurnSimulator::new(&g);
        assert!(sim.leave(99).is_err());
        sim.leave(0).unwrap();
        assert!(sim.leave(0).is_err());
        assert!(sim.join(1).is_err());
        sim.join(0).unwrap();
        assert!(sim.join(0).is_err());
    }

    #[test]
    fn dead_peers_have_no_links() {
        let g = game();
        let mut sim = ChurnSimulator::new(&g);
        let _ = sim.settle(&DynamicsConfig::default());
        sim.leave(1).unwrap();
        let p = sim.profile();
        assert!(p.strategy(PeerId::new(1)).is_empty());
        for i in 0..5 {
            assert!(!p.has_link(PeerId::new(i), PeerId::new(1)));
        }
    }
}
