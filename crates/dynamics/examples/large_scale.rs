//! Demo: two rounds of better-response dynamics on 100 000 peers.
//!
//! Run with `cargo run --release -p sp-dynamics --example large_scale`.
//! The sparse backend keeps peak session memory in the tens of
//! megabytes; the dense matrix alone would cost 80 GB at this size.

use sp_core::{Game, GameSession, StrategyProfile};
use sp_dynamics::large_scale::{run_large_scale, LargeScaleConfig};
use std::time::Instant;

fn main() {
    let n = 100_000;
    let positions: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
    let game = Game::from_line_positions(positions, 0.8).unwrap();
    let t0 = Instant::now();
    let mut session = GameSession::new_sparse(game, StrategyProfile::empty(n)).unwrap();
    println!("session setup: {:?}", t0.elapsed());
    let cfg = LargeScaleConfig {
        max_rounds: 2,
        tolerance: 1e-9,
    };
    let t1 = Instant::now();
    let report = run_large_scale(&mut session, &cfg).unwrap();
    println!("{} rounds: {:?}", report.rounds, t1.elapsed());
    println!(
        "moves={} peak_memory={:.1} MB ball_sweeps={} sketch_hits={} pruned={} sketch_rows={}",
        report.moves,
        report.peak_memory_bytes as f64 / 1e6,
        report.stats.sparse_ball_sweeps,
        report.stats.sparse_sketch_hits,
        report.stats.sparse_pruned_candidates,
        report.stats.sparse_sketch_rows
    );
}
