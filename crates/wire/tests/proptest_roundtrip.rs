//! Property tests for codec fidelity: every typed [`Request`] /
//! [`Response`] the protocol can express must survive **both** codecs
//! unchanged, the two codecs must agree with each other (decoding a
//! binary frame and re-encoding through the JSON codec yields exactly
//! what encoding through JSON directly yields — the equivalence the
//! replay gate's bit-identity claim leans on), and malformed frames —
//! truncated, trailing-garbage, oversized — must be rejected, never
//! misread.

use proptest::prelude::*;
use sp_core::{BackendMode, BestResponseMethod, Move, PeerId};
use sp_dynamics::Termination;
use sp_json::frame;
use sp_wire::{
    binary, json, BestResponseBody, DynamicsBody, DynamicsRule, DynamicsSpec, ErrorCode, GameSpec,
    Geometry, OpCode, Request, Response, ResultBody, ServiceStats, SessionOp, SessionRequest,
    SocialCostBody, WireError,
};

/// Ids kept below 2^32: the JSON codec carries them as numbers, so the
/// protocol's usable id space is the exactly-representable integers
/// (the binary codec varints the full u64, but cross-codec equivalence
/// is only promised where both codecs are lossless).
fn arb_id() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (0u64..1 << 32).prop_map(Some)]
}

fn arb_name() -> impl Strategy<Value = String> {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";
    (
        0usize..FIRST.len(),
        proptest::collection::vec(0usize..REST.len(), 0..15),
    )
        .prop_map(|(f, rest)| {
            let mut name = String::new();
            name.push(char::from(FIRST[f]));
            for r in rest {
                name.push(char::from(REST[r]));
            }
            name
        })
}

/// Printable ASCII, deliberately including quotes and backslashes to
/// exercise JSON string escaping.
fn arb_msg() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..40)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_finite() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e9f64..1e9,
        Just(0.0),
        Just(-0.0),
        Just(1.0 / 3.0),
        Just(f64::MIN_POSITIVE),
    ]
}

/// Costs may legitimately be `+∞` (disconnected overlays).
fn arb_cost() -> impl Strategy<Value = f64> {
    prop_oneof![arb_finite(), Just(f64::INFINITY)]
}

fn arb_mode() -> impl Strategy<Value = BackendMode> {
    prop_oneof![Just(BackendMode::Dense), Just(BackendMode::Sparse)]
}

fn arb_method() -> impl Strategy<Value = BestResponseMethod> {
    prop_oneof![
        Just(BestResponseMethod::Exact),
        Just(BestResponseMethod::ExactEnumeration),
        Just(BestResponseMethod::Greedy),
        Just(BestResponseMethod::LocalSearch),
    ]
}

fn arb_move() -> impl Strategy<Value = Move> {
    let peer = || 0usize..64;
    prop_oneof![
        (peer(), peer()).prop_map(|(a, b)| Move::AddLink {
            from: PeerId::new(a),
            to: PeerId::new(b),
        }),
        (peer(), peer()).prop_map(|(a, b)| Move::RemoveLink {
            from: PeerId::new(a),
            to: PeerId::new(b),
        }),
        (peer(), proptest::collection::vec(peer(), 0..6)).prop_map(|(p, links)| {
            Move::SetStrategy {
                peer: PeerId::new(p),
                links: links.into_iter().collect(),
            }
        }),
    ]
}

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        proptest::collection::vec(arb_finite(), 0..6).prop_map(Geometry::Line),
        proptest::collection::vec((arb_finite(), arb_finite()), 0..6).prop_map(Geometry::Points2D),
        (0usize..4)
            .prop_flat_map(|n| proptest::collection::vec(
                proptest::collection::vec(arb_finite(), n..=n),
                n..=n
            ))
            .prop_map(Geometry::Matrix),
    ]
}

fn arb_spec() -> impl Strategy<Value = GameSpec> {
    let links = || proptest::collection::vec((0usize..64, 0usize..64), 0..8);
    // The decoders enforce the backend invariant (sparse mode requires a
    // line geometry), so the generator respects it too: the property is
    // about decodable specs, not about re-testing validation.
    prop_oneof![
        (0.01f64..100.0, arb_geometry(), links()).prop_map(|(alpha, geometry, links)| GameSpec {
            alpha,
            geometry,
            links,
            mode: BackendMode::Dense,
        }),
        (
            0.01f64..100.0,
            proptest::collection::vec(arb_finite(), 0..6).prop_map(Geometry::Line),
            links(),
        )
            .prop_map(|(alpha, geometry, links)| GameSpec {
                alpha,
                geometry,
                links,
                mode: BackendMode::Sparse,
            }),
    ]
}

fn arb_dynamics_spec() -> impl Strategy<Value = DynamicsSpec> {
    (
        prop_oneof![
            Just(DynamicsRule::Better),
            arb_method().prop_map(DynamicsRule::Best),
        ],
        prop_oneof![Just(None), (1usize..10_000).prop_map(Some)],
        prop_oneof![Just(None), (0.0f64..1.0).prop_map(Some)],
        prop_oneof![Just(None), proptest::bool::ANY.prop_map(Some)],
    )
        .prop_map(
            |(rule, max_rounds, tolerance, detect_cycles)| DynamicsSpec {
                rule,
                max_rounds,
                tolerance,
                detect_cycles,
            },
        )
}

fn arb_session_op() -> impl Strategy<Value = SessionOp> {
    prop_oneof![
        arb_spec().prop_map(SessionOp::Create),
        Just(SessionOp::Load),
        arb_move().prop_map(|mv| SessionOp::Apply { mv }),
        proptest::collection::vec(arb_move(), 0..5)
            .prop_map(|moves| SessionOp::ApplyBatch { moves }),
        (0usize..64, arb_method()).prop_map(|(p, method)| SessionOp::BestResponse {
            peer: PeerId::new(p),
            method,
        }),
        arb_method().prop_map(|method| SessionOp::NashGap { method }),
        Just(SessionOp::SocialCost),
        Just(SessionOp::Stretch),
        arb_dynamics_spec().prop_map(SessionOp::RunDynamics),
        Just(SessionOp::Snapshot),
        Just(SessionOp::Evict),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_id(), 0u8..8).prop_map(|(id, proto)| Request::Hello { id, proto }),
        arb_id().prop_map(|id| Request::Ping { id }),
        arb_id().prop_map(|id| Request::Stats { id }),
        (arb_id(), arb_name(), arb_session_op())
            .prop_map(|(id, session, op)| { Request::Session(SessionRequest { id, session, op }) }),
    ]
}

fn arb_termination() -> impl Strategy<Value = Termination> {
    prop_oneof![
        (0usize..1000).prop_map(|rounds| Termination::Converged { rounds }),
        (0usize..1000, 1usize..1000, 0usize..1000).prop_map(
            |(first_seen_step, period_steps, moves_in_cycle)| Termination::Cycle {
                first_seen_step,
                period_steps,
                moves_in_cycle,
            }
        ),
        Just(Termination::RoundLimit),
    ]
}

fn arb_social() -> impl Strategy<Value = SocialCostBody> {
    (arb_finite(), arb_cost(), arb_cost()).prop_map(|(link_cost, stretch_cost, total)| {
        SocialCostBody {
            link_cost,
            stretch_cost,
            total,
        }
    })
}

/// A result body paired with the op code it answers — the pairing the
/// JSON decoder needs (protocol-1 results are not self-describing; the
/// binary codec tags them and needs no hint).
fn arb_op_body() -> impl Strategy<Value = (OpCode, ResultBody)> {
    let small = || 0u64..1 << 32;
    prop_oneof![
        (1u8..=2).prop_map(|proto| (OpCode::Hello, ResultBody::Hello { proto })),
        Just((OpCode::Ping, ResultBody::Pong)),
        (
            (small(), small(), small(), small()),
            (0usize..100, 0usize..100, 0usize..1 << 32),
        )
            .prop_map(|((a, b, c, d), (e, f, g))| (
                OpCode::Stats,
                ResultBody::Stats(ServiceStats {
                    requests_served: a,
                    sessions_created: b,
                    sessions_evicted: c,
                    sessions_restored: d,
                    queue_depth_hwm: e,
                    resident_sessions: f,
                    resident_bytes: g,
                })
            )),
        (1usize..200, 0.01f64..100.0, 0usize..400, arb_mode()).prop_map(
            |(n, alpha, links, mode)| (
                OpCode::Create,
                ResultBody::Created {
                    n,
                    alpha,
                    links,
                    mode
                }
            )
        ),
        arb_mode().prop_map(|mode| (OpCode::Load, ResultBody::Loaded { mode })),
        proptest::collection::vec(0usize..64, 0..6)
            .prop_map(|previous| (OpCode::Apply, ResultBody::Applied { previous })),
        proptest::collection::vec(proptest::collection::vec(0usize..64, 0..6), 0..4)
            .prop_map(|previous| (OpCode::ApplyBatch, ResultBody::BatchApplied { previous })),
        (
            0usize..64,
            proptest::collection::vec(0usize..64, 0..6),
            arb_cost(),
            arb_cost(),
            proptest::bool::ANY,
        )
            .prop_map(|(peer, links, cost, current_cost, exact)| (
                OpCode::BestResponse,
                ResultBody::BestResponse(BestResponseBody {
                    peer,
                    links,
                    cost,
                    current_cost,
                    exact,
                })
            )),
        arb_cost().prop_map(|gap| (OpCode::NashGap, ResultBody::NashGap { gap })),
        arb_social().prop_map(|s| (OpCode::SocialCost, ResultBody::SocialCost(s))),
        arb_cost().prop_map(|max_stretch| (OpCode::Stretch, ResultBody::Stretch { max_stretch })),
        (
            arb_termination(),
            0usize..10_000,
            0usize..10_000,
            arb_social()
        )
            .prop_map(|(termination, steps, moves, social_cost)| (
                OpCode::RunDynamics,
                ResultBody::Dynamics(DynamicsBody {
                    termination,
                    steps,
                    moves,
                    social_cost,
                })
            )),
        Just((OpCode::Snapshot, ResultBody::Persisted)),
        Just((OpCode::Evict, ResultBody::Evicted)),
    ]
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::UnknownOp),
        Just(ErrorCode::BadField),
        Just(ErrorCode::BadName),
        Just(ErrorCode::BadSpec),
        Just(ErrorCode::SessionExists),
        Just(ErrorCode::UnknownSession),
        Just(ErrorCode::Core),
        Just(ErrorCode::Io),
        Just(ErrorCode::Shutdown),
        Just(ErrorCode::BadProto),
        Just(ErrorCode::BadFrame),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Requests round-trip both codecs, and the codecs agree with each
    /// other on every decodable value.
    #[test]
    fn requests_roundtrip_both_codecs(request in arb_request()) {
        let v = json::encode_request(&request);
        let via_json = json::decode_request(&v).expect("JSON decode");
        prop_assert_eq!(&via_json, &request);

        let b = binary::encode_request(&request);
        let via_binary = binary::decode_request(&b).expect("binary decode");
        prop_assert_eq!(&via_binary, &request);

        // Cross-codec equivalence stated directly: re-encoding the
        // binary-decoded value through JSON reproduces the JSON frame.
        prop_assert_eq!(json::encode_request(&via_binary), v);
    }

    /// Success responses round-trip both codecs; decoding the binary
    /// frame and re-encoding through JSON reproduces the JSON frame
    /// byte-for-byte (this is the property `Client::call_request` leans
    /// on for protocol-2 bit-identity).
    #[test]
    fn ok_responses_roundtrip_both_codecs(
        id in arb_id(),
        (op, body) in arb_op_body(),
    ) {
        let response = Response::ok(id, body);
        let v = json::encode_response(&response);
        prop_assert_eq!(&json::decode_response(&v, op).expect("JSON decode"), &response);

        let b = binary::encode_response(&response);
        let via_binary = binary::decode_response(&b).expect("binary decode");
        prop_assert_eq!(&via_binary, &response);
        prop_assert_eq!(
            json::encode_response(&via_binary).to_string_compact(),
            v.to_string_compact()
        );
    }

    /// Error responses round-trip both codecs with their stable code
    /// strings intact, whatever op they answer.
    #[test]
    fn error_responses_roundtrip_both_codecs(
        id in arb_id(),
        code in arb_error_code(),
        msg in arb_msg(),
        (op, _) in arb_op_body(),
    ) {
        let response = Response::err(id, WireError::new(code, msg));
        let v = json::encode_response(&response);
        prop_assert_eq!(v["code"].as_str(), Some(code.as_str()));
        prop_assert_eq!(&json::decode_response(&v, op).expect("JSON decode"), &response);

        let b = binary::encode_response(&response);
        let via_binary = binary::decode_response(&b).expect("binary decode");
        prop_assert_eq!(&via_binary, &response);
        prop_assert_eq!(
            json::encode_response(&via_binary).to_string_compact(),
            v.to_string_compact()
        );
    }

    /// Every proper prefix of a binary frame is rejected — a truncated
    /// payload can never silently decode to anything — and so is a
    /// frame with trailing bytes (the decoder demands exact
    /// consumption).
    #[test]
    fn truncated_and_padded_binary_requests_are_rejected(
        request in arb_request(),
        cut in 0usize..1 << 16,
    ) {
        let full = binary::encode_request(&request);
        let k = cut % full.len(); // 0..len: always a *proper* prefix
        prop_assert!(
            binary::decode_request(full.get(..k).unwrap_or_default()).is_err(),
            "prefix of {}/{} bytes decoded", k, full.len()
        );
        let mut padded = full;
        padded.push(0);
        prop_assert!(binary::decode_request(&padded).is_err(), "trailing byte accepted");
    }

    /// Same for response frames.
    #[test]
    fn truncated_and_padded_binary_responses_are_rejected(
        id in arb_id(),
        (_, body) in arb_op_body(),
        cut in 0usize..1 << 16,
    ) {
        let full = binary::encode_response(&Response::ok(id, body));
        let k = cut % full.len();
        prop_assert!(
            binary::decode_response(full.get(..k).unwrap_or_default()).is_err(),
            "prefix of {}/{} bytes decoded", k, full.len()
        );
        let mut padded = full;
        padded.push(0);
        prop_assert!(binary::decode_response(&padded).is_err(), "trailing byte accepted");
    }
}

/// The frame envelope itself rejects oversized declarations and
/// truncated payloads (both the incremental and the blocking reader).
#[test]
fn frame_layer_rejects_oversized_and_truncated_frames() {
    // Oversized length prefix: the incremental buffer refuses it
    // without waiting for (or allocating) the body.
    let mut fb = frame::FrameBuffer::new();
    let huge = u32::try_from(frame::MAX_FRAME_BYTES + 1).unwrap();
    fb.extend(&huge.to_be_bytes());
    assert!(fb.next_frame().is_err(), "oversized frame accepted");

    // Truncated payload: a blocking reader hitting EOF mid-frame is an
    // error, not a clean end-of-stream.
    let mut buf = Vec::new();
    frame::append_frame_bytes(&mut buf, b"hello frame").unwrap();
    buf.truncate(buf.len() - 2);
    let mut cursor = std::io::Cursor::new(buf);
    assert!(
        frame::read_frame_bytes(&mut cursor).is_err(),
        "mid-frame EOF read as clean close"
    );
}
