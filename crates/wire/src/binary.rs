//! The compact binary codec (protocol version 2).
//!
//! Binary frames ride behind the same 4-byte big-endian length prefix
//! as JSON frames — only the payload bytes differ. The payload grammar:
//!
//! ```text
//! request  := op:u8 flags:u8 [id:varint] body
//! response := status:u8 flags:u8 [id:varint] body
//!
//! varint   := LEB128-encoded u64 (≤ 10 bytes)
//! f64      := IEEE-754 bits, little-endian (lossless, ±∞ included)
//! string   := len:varint bytes:UTF-8
//! ```
//!
//! `flags` bit 0 marks an `id` as present. For responses, `status` is
//! `0` (ok — body is a tagged result mirroring the op codes) or `1`
//! (error — `code:u8` then `message:string`). Every decoder is
//! bounds-checked: truncation, trailing garbage, overlong varints, and
//! absurd collection counts all fail with [`ErrorCode::BadFrame`]
//! rather than panicking or over-allocating.

use sp_core::{BackendMode, BestResponseMethod, LinkSet, Move, PeerId};
use sp_dynamics::Termination;

use crate::{
    BestResponseBody, DecodeError, DynamicsBody, DynamicsRule, DynamicsSpec, ErrorCode, GameSpec,
    Geometry, MetricHistogramBody, MetricsBody, OpCode, Request, Response, ResultBody,
    ServiceStats, SessionOp, SessionRequest, SocialCostBody, TraceSpanBody, WireError,
    TRACE_PHASES,
};

const FLAG_HAS_ID: u8 = 0b0000_0001;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

const MOVE_SET: u8 = 0;
const MOVE_ADD: u8 = 1;
const MOVE_REMOVE: u8 = 2;

const GEOM_LINE: u8 = 0;
const GEOM_POINTS_2D: u8 = 1;
const GEOM_MATRIX: u8 = 2;

const RULE_BETTER: u8 = 0;
const RULE_BEST: u8 = 1;

const DYN_HAS_MAX_ROUNDS: u8 = 0b0000_0001;
const DYN_HAS_TOLERANCE: u8 = 0b0000_0010;
const DYN_HAS_DETECT_CYCLES: u8 = 0b0000_0100;

const TRACE_HAS_SLOW_NS: u8 = 0b0000_0001;

const TERM_CONVERGED: u8 = 0;
const TERM_CYCLE: u8 = 1;
const TERM_ROUND_LIMIT: u8 = 2;

fn bad(m: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::BadFrame, m)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// The binary codec's primitive encoder: LEB128 varints, little-endian
/// IEEE-754 floats, length-prefixed UTF-8 strings. Public so other
/// on-disk formats (the sp-serve write-ahead log) can share the exact
/// wire grammar instead of inventing a second varint.
pub struct Writer {
    buf: Vec<u8>,
}

impl Default for Writer {
    fn default() -> Writer {
        Writer::new()
    }
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends a LEB128 varint (≤ 10 bytes).
    pub fn varint(&mut self, mut x: u64) {
        loop {
            let byte = (x & 0x7F) as u8;
            x >>= 7;
            if x == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a `usize` as a varint.
    pub fn usize(&mut self, x: usize) {
        self.varint(x as u64);
    }

    /// Appends IEEE-754 bits, little-endian (lossless, ±∞ included).
    pub fn f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no framing (the caller has already
    /// written a length, or the bytes run to the end of the record).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// The binary codec's bounds-checked decoder, the inverse of
/// [`Writer`]. Every failure is a typed [`ErrorCode::BadFrame`] error —
/// never a panic, never an attacker-sized allocation.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over one frame payload.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadFrame`] on truncation.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| bad("frame truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadFrame`] on truncation, overlong encodings, or
    /// u64 overflow.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut x: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let part = u64::from(byte & 0x7F);
            if shift == 63 && part > 1 {
                return Err(bad("varint overflows u64"));
            }
            x |= part << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
        }
        Err(bad("varint longer than 10 bytes"))
    }

    /// Reads a varint that must fit a `usize`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadFrame`] as [`Reader::varint`], plus range
    /// overflow on 32-bit targets.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.varint()?).map_err(|_| bad("integer out of range"))
    }

    /// A collection count, sanity-checked against the bytes actually
    /// present (each element costs ≥ `min_bytes_each`) so a hostile
    /// count cannot drive a huge allocation from a tiny frame.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadFrame`] when the claimed count could not fit the
    /// remaining payload.
    pub fn count(&mut self, min_bytes_each: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n > self.remaining() / min_bytes_each.max(1) {
            return Err(bad("collection count exceeds frame size"));
        }
        Ok(n)
    }

    /// Reads IEEE-754 bits, little-endian.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadFrame`] on truncation.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let end = self
            .pos
            .checked_add(8)
            .ok_or_else(|| bad("frame truncated"))?;
        let bytes: [u8; 8] = self
            .buf
            .get(self.pos..end)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| bad("frame truncated"))?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadFrame`] on truncation or invalid UTF-8.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.count(1)?;
        let end = self.pos + len;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| bad("frame truncated"))?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| bad("string is not UTF-8"))?
            .to_owned();
        self.pos = end;
        Ok(s)
    }

    /// Reads `n` raw bytes as a borrowed slice (length decided by the
    /// caller, e.g. from a varint it just read — the WAL record codec
    /// embeds whole request payloads this way).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadFrame`] on truncation.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| bad("frame truncated"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| bad("frame truncated"))?;
        self.pos = end;
        Ok(slice)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadFrame`] when trailing bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(bad(format!(
                "{} trailing bytes after frame payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Shared field codecs
// ---------------------------------------------------------------------

fn write_method(w: &mut Writer, m: BestResponseMethod) {
    w.u8(match m {
        BestResponseMethod::Exact => 0,
        BestResponseMethod::ExactEnumeration => 1,
        BestResponseMethod::Greedy => 2,
        BestResponseMethod::LocalSearch => 3,
    });
}

fn read_method(r: &mut Reader<'_>) -> Result<BestResponseMethod, WireError> {
    Ok(match r.u8()? {
        0 => BestResponseMethod::Exact,
        1 => BestResponseMethod::ExactEnumeration,
        2 => BestResponseMethod::Greedy,
        3 => BestResponseMethod::LocalSearch,
        other => return Err(bad(format!("unknown method tag {other}"))),
    })
}

fn write_mode(w: &mut Writer, m: BackendMode) {
    w.u8(match m {
        BackendMode::Dense => 0,
        BackendMode::Sparse => 1,
    });
}

fn read_mode(r: &mut Reader<'_>) -> Result<BackendMode, WireError> {
    Ok(match r.u8()? {
        0 => BackendMode::Dense,
        1 => BackendMode::Sparse,
        other => return Err(bad(format!("unknown mode tag {other}"))),
    })
}

fn write_move(w: &mut Writer, mv: &Move) {
    match mv {
        Move::SetStrategy { peer, links } => {
            w.u8(MOVE_SET);
            w.usize(peer.index());
            w.usize(links.len());
            for t in links.iter() {
                w.usize(t.index());
            }
        }
        Move::AddLink { from, to } => {
            w.u8(MOVE_ADD);
            w.usize(from.index());
            w.usize(to.index());
        }
        Move::RemoveLink { from, to } => {
            w.u8(MOVE_REMOVE);
            w.usize(from.index());
            w.usize(to.index());
        }
    }
}

fn read_move(r: &mut Reader<'_>) -> Result<Move, WireError> {
    Ok(match r.u8()? {
        MOVE_SET => {
            let peer = PeerId::new(r.usize()?);
            let k = r.count(1)?;
            let mut targets = Vec::with_capacity(k);
            for _ in 0..k {
                targets.push(r.usize()?);
            }
            Move::SetStrategy {
                peer,
                links: targets.into_iter().collect::<LinkSet>(),
            }
        }
        MOVE_ADD => Move::AddLink {
            from: PeerId::new(r.usize()?),
            to: PeerId::new(r.usize()?),
        },
        MOVE_REMOVE => Move::RemoveLink {
            from: PeerId::new(r.usize()?),
            to: PeerId::new(r.usize()?),
        },
        other => return Err(bad(format!("unknown move tag {other}"))),
    })
}

fn write_geometry(w: &mut Writer, g: &Geometry) {
    match g {
        Geometry::Line(positions) => {
            w.u8(GEOM_LINE);
            w.usize(positions.len());
            for &x in positions {
                w.f64(x);
            }
        }
        Geometry::Points2D(points) => {
            w.u8(GEOM_POINTS_2D);
            w.usize(points.len());
            for &(x, y) in points {
                w.f64(x);
                w.f64(y);
            }
        }
        Geometry::Matrix(rows) => {
            w.u8(GEOM_MATRIX);
            w.usize(rows.len());
            for row in rows {
                w.usize(row.len());
                for &x in row {
                    w.f64(x);
                }
            }
        }
    }
}

fn read_geometry(r: &mut Reader<'_>) -> Result<Geometry, WireError> {
    Ok(match r.u8()? {
        GEOM_LINE => {
            let n = r.count(8)?;
            let mut positions = Vec::with_capacity(n);
            for _ in 0..n {
                positions.push(r.f64()?);
            }
            Geometry::Line(positions)
        }
        GEOM_POINTS_2D => {
            let n = r.count(16)?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push((r.f64()?, r.f64()?));
            }
            Geometry::Points2D(points)
        }
        GEOM_MATRIX => {
            let n = r.count(1)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let len = r.count(8)?;
                let mut row = Vec::with_capacity(len);
                for _ in 0..len {
                    row.push(r.f64()?);
                }
                rows.push(row);
            }
            Geometry::Matrix(rows)
        }
        other => return Err(bad(format!("unknown geometry tag {other}"))),
    })
}

fn write_social_cost(w: &mut Writer, sc: &SocialCostBody) {
    w.f64(sc.link_cost);
    w.f64(sc.stretch_cost);
    w.f64(sc.total);
}

fn read_social_cost(r: &mut Reader<'_>) -> Result<SocialCostBody, WireError> {
    Ok(SocialCostBody {
        link_cost: r.f64()?,
        stretch_cost: r.f64()?,
        total: r.f64()?,
    })
}

fn write_usize_array(w: &mut Writer, xs: &[usize]) {
    w.usize(xs.len());
    for &x in xs {
        w.usize(x);
    }
}

fn read_usize_array(r: &mut Reader<'_>) -> Result<Vec<usize>, WireError> {
    let n = r.count(1)?;
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        xs.push(r.usize()?);
    }
    Ok(xs)
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

fn write_header(w: &mut Writer, tag: u8, id: Option<u64>) {
    w.u8(tag);
    w.u8(if id.is_some() { FLAG_HAS_ID } else { 0 });
    if let Some(id) = id {
        w.varint(id);
    }
}

/// Encodes a request into a binary frame payload (the bytes behind the
/// length prefix).
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    write_header(&mut w, request.code() as u8, request.id());
    match request {
        Request::Hello { proto, .. } => w.u8(*proto),
        Request::Ping { .. } | Request::Stats { .. } | Request::Metrics { .. } => {}
        Request::TraceTail { limit, slow_ns, .. } => {
            w.usize(*limit);
            w.u8(if slow_ns.is_some() {
                TRACE_HAS_SLOW_NS
            } else {
                0
            });
            if let Some(s) = slow_ns {
                w.varint(*s);
            }
        }
        Request::Session(s) => {
            w.string(&s.session);
            match &s.op {
                SessionOp::Create(spec) => {
                    w.f64(spec.alpha);
                    write_mode(&mut w, spec.mode);
                    write_geometry(&mut w, &spec.geometry);
                    w.usize(spec.links.len());
                    for &(a, b) in &spec.links {
                        w.usize(a);
                        w.usize(b);
                    }
                }
                SessionOp::Load
                | SessionOp::SocialCost
                | SessionOp::Stretch
                | SessionOp::Snapshot
                | SessionOp::Evict
                | SessionOp::WalHead
                | SessionOp::WalVerify => {}
                SessionOp::Apply { mv } => write_move(&mut w, mv),
                SessionOp::ApplyBatch { moves } => {
                    w.usize(moves.len());
                    for mv in moves {
                        write_move(&mut w, mv);
                    }
                }
                SessionOp::BestResponse { peer, method } => {
                    w.usize(peer.index());
                    write_method(&mut w, *method);
                }
                SessionOp::NashGap { method } => write_method(&mut w, *method),
                SessionOp::RunDynamics(spec) => {
                    match spec.rule {
                        DynamicsRule::Better => w.u8(RULE_BETTER),
                        DynamicsRule::Best(method) => {
                            w.u8(RULE_BEST);
                            write_method(&mut w, method);
                        }
                    }
                    let mut flags = 0u8;
                    if spec.max_rounds.is_some() {
                        flags |= DYN_HAS_MAX_ROUNDS;
                    }
                    if spec.tolerance.is_some() {
                        flags |= DYN_HAS_TOLERANCE;
                    }
                    if spec.detect_cycles.is_some() {
                        flags |= DYN_HAS_DETECT_CYCLES;
                    }
                    w.u8(flags);
                    if let Some(r) = spec.max_rounds {
                        w.usize(r);
                    }
                    if let Some(t) = spec.tolerance {
                        w.f64(t);
                    }
                    if let Some(d) = spec.detect_cycles {
                        w.u8(u8::from(d));
                    }
                }
            }
        }
    }
    w.buf
}

fn read_header(r: &mut Reader<'_>) -> Result<(u8, Option<u64>), WireError> {
    let tag = r.u8()?;
    let flags = r.u8()?;
    if flags & !FLAG_HAS_ID != 0 {
        return Err(bad(format!("unknown header flags {flags:#04x}")));
    }
    let id = if flags & FLAG_HAS_ID != 0 {
        Some(r.varint()?)
    } else {
        None
    };
    Ok((tag, id))
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(bad(format!("boolean byte must be 0 or 1, got {other}"))),
    }
}

/// Decodes a binary request frame payload.
///
/// # Errors
///
/// Returns a [`ErrorCode::BadFrame`] failure — with the request id when
/// the header was intact — on any malformed payload. Name validation
/// failures surface as [`ErrorCode::BadName`], matching the JSON path.
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut r = Reader::new(payload);
    let (tag, id) = read_header(&mut r).map_err(|error| DecodeError { id: None, error })?;
    let fail = |error: WireError| DecodeError { id, error };
    let Some(code) = OpCode::from_u8(tag) else {
        return Err(fail(bad(format!("unknown op tag {tag:#04x}"))));
    };
    let request = match code {
        OpCode::Hello => {
            let proto = r.u8().map_err(fail)?;
            Request::Hello { id, proto }
        }
        OpCode::Ping => Request::Ping { id },
        OpCode::Stats => Request::Stats { id },
        OpCode::Metrics => Request::Metrics { id },
        OpCode::TraceTail => {
            let limit = r.usize().map_err(fail)?;
            let flags = r.u8().map_err(fail)?;
            if flags & !TRACE_HAS_SLOW_NS != 0 {
                return Err(fail(bad(format!("unknown trace_tail flags {flags:#04x}"))));
            }
            let slow_ns = if flags & TRACE_HAS_SLOW_NS != 0 {
                Some(r.varint().map_err(fail)?)
            } else {
                None
            };
            Request::TraceTail { id, limit, slow_ns }
        }
        _ => {
            let session = r.string().map_err(fail)?;
            crate::validate_name(&session).map_err(fail)?;
            let op = read_session_op(&mut r, code).map_err(fail)?;
            Request::Session(SessionRequest { id, session, op })
        }
    };
    r.finish().map_err(fail)?;
    Ok(request)
}

fn read_session_op(r: &mut Reader<'_>, code: OpCode) -> Result<SessionOp, WireError> {
    Ok(match code {
        OpCode::Create => {
            let alpha = r.f64()?;
            let mode = read_mode(r)?;
            let geometry = read_geometry(r)?;
            let n = r.count(2)?;
            let mut links = Vec::with_capacity(n);
            for _ in 0..n {
                links.push((r.usize()?, r.usize()?));
            }
            SessionOp::Create(GameSpec {
                alpha,
                geometry,
                links,
                mode,
            })
        }
        OpCode::Load => SessionOp::Load,
        OpCode::Apply => SessionOp::Apply { mv: read_move(r)? },
        OpCode::ApplyBatch => {
            let n = r.count(1)?;
            let mut moves = Vec::with_capacity(n);
            for _ in 0..n {
                moves.push(read_move(r)?);
            }
            SessionOp::ApplyBatch { moves }
        }
        OpCode::BestResponse => SessionOp::BestResponse {
            peer: PeerId::new(r.usize()?),
            method: read_method(r)?,
        },
        OpCode::NashGap => SessionOp::NashGap {
            method: read_method(r)?,
        },
        OpCode::SocialCost => SessionOp::SocialCost,
        OpCode::Stretch => SessionOp::Stretch,
        OpCode::RunDynamics => {
            let rule = match r.u8()? {
                RULE_BETTER => DynamicsRule::Better,
                RULE_BEST => DynamicsRule::Best(read_method(r)?),
                other => return Err(bad(format!("unknown dynamics rule tag {other}"))),
            };
            let flags = r.u8()?;
            let known = DYN_HAS_MAX_ROUNDS | DYN_HAS_TOLERANCE | DYN_HAS_DETECT_CYCLES;
            if flags & !known != 0 {
                return Err(bad(format!("unknown dynamics flags {flags:#04x}")));
            }
            let max_rounds = if flags & DYN_HAS_MAX_ROUNDS != 0 {
                Some(r.usize()?)
            } else {
                None
            };
            let tolerance = if flags & DYN_HAS_TOLERANCE != 0 {
                Some(r.f64()?)
            } else {
                None
            };
            let detect_cycles = if flags & DYN_HAS_DETECT_CYCLES != 0 {
                Some(read_bool(r)?)
            } else {
                None
            };
            SessionOp::RunDynamics(DynamicsSpec {
                rule,
                max_rounds,
                tolerance,
                detect_cycles,
            })
        }
        OpCode::Snapshot => SessionOp::Snapshot,
        OpCode::Evict => SessionOp::Evict,
        OpCode::WalHead => SessionOp::WalHead,
        OpCode::WalVerify => SessionOp::WalVerify,
        // The caller routed registry-level ops before calling; reaching
        // here means the tag byte named one in session position.
        OpCode::Hello | OpCode::Ping | OpCode::Stats | OpCode::Metrics | OpCode::TraceTail => {
            return Err(bad(format!("op {:?} cannot target a session", code.name())))
        }
    })
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

fn write_termination(w: &mut Writer, t: &Termination) {
    match t {
        Termination::Converged { rounds } => {
            w.u8(TERM_CONVERGED);
            w.usize(*rounds);
        }
        Termination::Cycle {
            first_seen_step,
            period_steps,
            moves_in_cycle,
        } => {
            w.u8(TERM_CYCLE);
            w.usize(*first_seen_step);
            w.usize(*period_steps);
            w.usize(*moves_in_cycle);
        }
        Termination::RoundLimit => w.u8(TERM_ROUND_LIMIT),
    }
}

fn read_termination(r: &mut Reader<'_>) -> Result<Termination, WireError> {
    Ok(match r.u8()? {
        TERM_CONVERGED => Termination::Converged { rounds: r.usize()? },
        TERM_CYCLE => Termination::Cycle {
            first_seen_step: r.usize()?,
            period_steps: r.usize()?,
            moves_in_cycle: r.usize()?,
        },
        TERM_ROUND_LIMIT => Termination::RoundLimit,
        other => return Err(bad(format!("unknown termination tag {other}"))),
    })
}

fn result_tag(body: &ResultBody) -> u8 {
    (match body {
        ResultBody::Hello { .. } => OpCode::Hello,
        ResultBody::Pong => OpCode::Ping,
        ResultBody::Stats(_) => OpCode::Stats,
        ResultBody::Created { .. } => OpCode::Create,
        ResultBody::Loaded { .. } => OpCode::Load,
        ResultBody::Applied { .. } => OpCode::Apply,
        ResultBody::BatchApplied { .. } => OpCode::ApplyBatch,
        ResultBody::BestResponse(_) => OpCode::BestResponse,
        ResultBody::NashGap { .. } => OpCode::NashGap,
        ResultBody::SocialCost(_) => OpCode::SocialCost,
        ResultBody::Stretch { .. } => OpCode::Stretch,
        ResultBody::Dynamics(_) => OpCode::RunDynamics,
        ResultBody::Persisted => OpCode::Snapshot,
        ResultBody::Evicted => OpCode::Evict,
        ResultBody::WalHead { .. } => OpCode::WalHead,
        ResultBody::WalVerified { .. } => OpCode::WalVerify,
        ResultBody::Metrics(_) => OpCode::Metrics,
        ResultBody::TraceTail { .. } => OpCode::TraceTail,
    }) as u8
}

/// Encodes a response into a binary frame payload. Unlike JSON result
/// bodies, binary ones are self-describing (the tag byte mirrors the
/// op code), so decoding needs no request context.
#[must_use]
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match &response.outcome {
        Ok(body) => {
            write_header(&mut w, STATUS_OK, response.id);
            w.u8(result_tag(body));
            match body {
                ResultBody::Hello { proto } => w.u8(*proto),
                ResultBody::Pong | ResultBody::Persisted | ResultBody::Evicted => {}
                ResultBody::Stats(s) => {
                    w.varint(s.requests_served);
                    w.varint(s.sessions_created);
                    w.varint(s.sessions_evicted);
                    w.varint(s.sessions_restored);
                    w.usize(s.queue_depth_hwm);
                    w.usize(s.resident_sessions);
                    w.usize(s.resident_bytes);
                }
                ResultBody::Created {
                    n,
                    alpha,
                    links,
                    mode,
                } => {
                    w.usize(*n);
                    w.f64(*alpha);
                    w.usize(*links);
                    write_mode(&mut w, *mode);
                }
                ResultBody::Loaded { mode } => write_mode(&mut w, *mode),
                ResultBody::Applied { previous } => write_usize_array(&mut w, previous),
                ResultBody::BatchApplied { previous } => {
                    w.usize(previous.len());
                    for row in previous {
                        write_usize_array(&mut w, row);
                    }
                }
                ResultBody::BestResponse(br) => {
                    w.usize(br.peer);
                    write_usize_array(&mut w, &br.links);
                    w.f64(br.cost);
                    w.f64(br.current_cost);
                    w.u8(u8::from(br.exact));
                }
                ResultBody::NashGap { gap } => w.f64(*gap),
                ResultBody::SocialCost(sc) => write_social_cost(&mut w, sc),
                ResultBody::Stretch { max_stretch } => w.f64(*max_stretch),
                ResultBody::Dynamics(d) => {
                    write_termination(&mut w, &d.termination);
                    w.usize(d.steps);
                    w.usize(d.moves);
                    write_social_cost(&mut w, &d.social_cost);
                }
                ResultBody::WalHead { records, head_hash }
                | ResultBody::WalVerified { records, head_hash } => {
                    w.varint(*records);
                    w.varint(*head_hash);
                }
                ResultBody::Metrics(m) => {
                    w.usize(m.counters.len());
                    for (name, value) in &m.counters {
                        w.string(name);
                        w.varint(*value);
                    }
                    w.usize(m.gauges.len());
                    for (name, value) in &m.gauges {
                        w.string(name);
                        w.varint(*value);
                    }
                    w.usize(m.histograms.len());
                    for h in &m.histograms {
                        w.string(&h.name);
                        w.varint(h.count);
                        w.varint(h.min_ns);
                        w.varint(h.p50_ns);
                        w.varint(h.p99_ns);
                        w.varint(h.p999_ns);
                        w.varint(h.max_ns);
                    }
                }
                ResultBody::TraceTail { spans } => {
                    w.usize(spans.len());
                    for s in spans {
                        w.varint(s.seq);
                        w.string(&s.op);
                        w.varint(s.total_ns);
                        for &p in &s.phases_ns {
                            w.varint(p);
                        }
                    }
                }
            }
        }
        Err(e) => {
            write_header(&mut w, STATUS_ERR, response.id);
            w.u8(e.code as u8);
            w.string(&e.message);
        }
    }
    w.buf
}

/// Decodes a binary response frame payload.
///
/// # Errors
///
/// Returns a [`ErrorCode::BadFrame`] failure on any malformed payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut r = Reader::new(payload);
    let (status, id) = read_header(&mut r).map_err(|error| DecodeError { id: None, error })?;
    let fail = |error: WireError| DecodeError { id, error };
    let response = match status {
        STATUS_OK => {
            let tag = r.u8().map_err(fail)?;
            let body = read_result(&mut r, tag).map_err(fail)?;
            Response::ok(id, body)
        }
        STATUS_ERR => {
            let code_byte = r.u8().map_err(fail)?;
            let code = ErrorCode::from_u8(code_byte)
                .ok_or_else(|| fail(bad(format!("unknown error code {code_byte}"))))?;
            let message = r.string().map_err(fail)?;
            Response::err(id, WireError { code, message })
        }
        other => return Err(fail(bad(format!("unknown response status {other}")))),
    };
    r.finish().map_err(fail)?;
    Ok(response)
}

fn read_result(r: &mut Reader<'_>, tag: u8) -> Result<ResultBody, WireError> {
    let Some(code) = OpCode::from_u8(tag) else {
        return Err(bad(format!("unknown result tag {tag:#04x}")));
    };
    Ok(match code {
        OpCode::Hello => ResultBody::Hello { proto: r.u8()? },
        OpCode::Ping => ResultBody::Pong,
        OpCode::Stats => ResultBody::Stats(ServiceStats {
            requests_served: r.varint()?,
            sessions_created: r.varint()?,
            sessions_evicted: r.varint()?,
            sessions_restored: r.varint()?,
            queue_depth_hwm: r.usize()?,
            resident_sessions: r.usize()?,
            resident_bytes: r.usize()?,
        }),
        OpCode::Create => ResultBody::Created {
            n: r.usize()?,
            alpha: r.f64()?,
            links: r.usize()?,
            mode: read_mode(r)?,
        },
        OpCode::Load => ResultBody::Loaded {
            mode: read_mode(r)?,
        },
        OpCode::Apply => ResultBody::Applied {
            previous: read_usize_array(r)?,
        },
        OpCode::ApplyBatch => {
            let n = r.count(1)?;
            let mut previous = Vec::with_capacity(n);
            for _ in 0..n {
                previous.push(read_usize_array(r)?);
            }
            ResultBody::BatchApplied { previous }
        }
        OpCode::BestResponse => ResultBody::BestResponse(BestResponseBody {
            peer: r.usize()?,
            links: read_usize_array(r)?,
            cost: r.f64()?,
            current_cost: r.f64()?,
            exact: read_bool(r)?,
        }),
        OpCode::NashGap => ResultBody::NashGap { gap: r.f64()? },
        OpCode::SocialCost => ResultBody::SocialCost(read_social_cost(r)?),
        OpCode::Stretch => ResultBody::Stretch {
            max_stretch: r.f64()?,
        },
        OpCode::RunDynamics => ResultBody::Dynamics(DynamicsBody {
            termination: read_termination(r)?,
            steps: r.usize()?,
            moves: r.usize()?,
            social_cost: read_social_cost(r)?,
        }),
        OpCode::Snapshot => ResultBody::Persisted,
        OpCode::Evict => ResultBody::Evicted,
        OpCode::WalHead => ResultBody::WalHead {
            records: r.varint()?,
            head_hash: r.varint()?,
        },
        OpCode::WalVerify => ResultBody::WalVerified {
            records: r.varint()?,
            head_hash: r.varint()?,
        },
        OpCode::Metrics => {
            let n = r.count(2)?;
            let mut counters = Vec::with_capacity(n);
            for _ in 0..n {
                counters.push((r.string()?, r.varint()?));
            }
            let n = r.count(2)?;
            let mut gauges = Vec::with_capacity(n);
            for _ in 0..n {
                gauges.push((r.string()?, r.varint()?));
            }
            let n = r.count(7)?;
            let mut histograms = Vec::with_capacity(n);
            for _ in 0..n {
                histograms.push(MetricHistogramBody {
                    name: r.string()?,
                    count: r.varint()?,
                    min_ns: r.varint()?,
                    p50_ns: r.varint()?,
                    p99_ns: r.varint()?,
                    p999_ns: r.varint()?,
                    max_ns: r.varint()?,
                });
            }
            ResultBody::Metrics(MetricsBody {
                counters,
                gauges,
                histograms,
            })
        }
        OpCode::TraceTail => {
            let n = r.count(3 + TRACE_PHASES)?;
            let mut spans = Vec::with_capacity(n);
            for _ in 0..n {
                let seq = r.varint()?;
                let op = r.string()?;
                let total_ns = r.varint()?;
                let mut phases_ns = [0u64; TRACE_PHASES];
                for p in &mut phases_ns {
                    *p = r.varint()?;
                }
                spans.push(TraceSpanBody {
                    seq,
                    op,
                    total_ns,
                    phases_ns,
                });
            }
            ResultBody::TraceTail { spans }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let payload = encode_request(req);
        assert_eq!(&decode_request(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: &Response) {
        let payload = encode_response(resp);
        assert_eq!(&decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn varint_edges() {
        for x in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut w = Writer::new();
            w.varint(x);
            let mut r = Reader::new(&w.buf);
            assert_eq!(r.varint().unwrap(), x);
            assert!(r.finish().is_ok());
        }
        // Overlong: 11 continuation bytes.
        let mut r = Reader::new(&[0x80u8; 11]);
        assert!(r.varint().is_err());
        // Overflow: 10 bytes whose top part exceeds the final bit.
        let mut r = Reader::new(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7F]);
        assert!(r.varint().is_err());
    }

    #[test]
    fn request_round_trips() {
        round_trip_request(&Request::Ping { id: Some(0) });
        round_trip_request(&Request::Stats { id: None });
        round_trip_request(&Request::Hello {
            id: Some(9),
            proto: 2,
        });
        round_trip_request(&Request::Session(SessionRequest {
            id: Some(1_000_000),
            session: "s0007".to_owned(),
            op: SessionOp::Create(GameSpec {
                alpha: 1.5,
                geometry: Geometry::Points2D(vec![(0.0, 0.0), (3.0, 4.0)]),
                links: vec![(0, 1)],
                mode: BackendMode::Dense,
            }),
        }));
        round_trip_request(&Request::Session(SessionRequest {
            id: None,
            session: "s1".to_owned(),
            op: SessionOp::ApplyBatch {
                moves: vec![
                    Move::AddLink {
                        from: PeerId::new(0),
                        to: PeerId::new(3),
                    },
                    Move::SetStrategy {
                        peer: PeerId::new(2),
                        links: [1usize, 4, 0].into_iter().collect(),
                    },
                ],
            },
        }));
        round_trip_request(&Request::Session(SessionRequest {
            id: Some(5),
            session: "s3".to_owned(),
            op: SessionOp::WalHead,
        }));
        round_trip_request(&Request::Session(SessionRequest {
            id: None,
            session: "s4".to_owned(),
            op: SessionOp::WalVerify,
        }));
        round_trip_request(&Request::Session(SessionRequest {
            id: Some(3),
            session: "s2".to_owned(),
            op: SessionOp::RunDynamics(DynamicsSpec {
                rule: DynamicsRule::Best(BestResponseMethod::LocalSearch),
                max_rounds: Some(7),
                tolerance: None,
                detect_cycles: Some(false),
            }),
        }));
        round_trip_request(&Request::Metrics { id: Some(6) });
        round_trip_request(&Request::TraceTail {
            id: None,
            limit: 16,
            slow_ns: Some(2_000_000),
        });
        round_trip_request(&Request::TraceTail {
            id: Some(1),
            limit: 0,
            slow_ns: None,
        });
    }

    #[test]
    fn observability_results_round_trip() {
        round_trip_response(&Response::ok(
            Some(12),
            ResultBody::Metrics(MetricsBody {
                counters: vec![
                    ("obs.spans_completed".to_owned(), u64::MAX - 5),
                    ("wal.fsync_batches".to_owned(), 0),
                ],
                gauges: vec![("queue.depth_hwm".to_owned(), 9)],
                histograms: vec![MetricHistogramBody {
                    name: "op.ping".to_owned(),
                    count: 3,
                    min_ns: 100,
                    p50_ns: 127,
                    p99_ns: 255,
                    p999_ns: 255,
                    max_ns: 240,
                }],
            }),
        ));
        round_trip_response(&Response::ok(
            None,
            ResultBody::Metrics(MetricsBody::default()),
        ));
        round_trip_response(&Response::ok(
            Some(13),
            ResultBody::TraceTail {
                spans: vec![TraceSpanBody {
                    seq: 77,
                    op: "best_response".to_owned(),
                    total_ns: 1_000_000,
                    phases_ns: [0, 10, 20, 900_000, 0, 0, 990_000, 1_000_000],
                }],
            },
        ));
        round_trip_response(&Response::ok(
            Some(1),
            ResultBody::TraceTail { spans: vec![] },
        ));
    }

    #[test]
    fn metrics_in_session_position_is_rejected() {
        let mut w = Writer::new();
        w.u8(OpCode::Metrics as u8);
        w.u8(0);
        // A metrics request has an empty body; a trailing string is
        // garbage, rejected by the exhaustive-consumption check.
        w.string("s0");
        let e = decode_request(&w.buf).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadFrame);

        let mut w = Writer::new();
        w.u8(OpCode::TraceTail as u8);
        w.u8(0);
        w.usize(4);
        w.u8(0xFE); // unknown flags
        let e = decode_request(&w.buf).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadFrame);
    }

    #[test]
    fn response_round_trips_including_infinity() {
        round_trip_response(&Response::ok(Some(4), ResultBody::Pong));
        round_trip_response(&Response::ok(
            None,
            ResultBody::Stretch {
                max_stretch: f64::INFINITY,
            },
        ));
        round_trip_response(&Response::ok(
            Some(11),
            ResultBody::Dynamics(DynamicsBody {
                termination: Termination::Cycle {
                    first_seen_step: 5,
                    period_steps: 2,
                    moves_in_cycle: 2,
                },
                steps: 12,
                moves: 7,
                social_cost: SocialCostBody {
                    link_cost: 4.0,
                    stretch_cost: f64::INFINITY,
                    total: f64::INFINITY,
                },
            }),
        ));
        round_trip_response(&Response::err(
            Some(2),
            WireError::new(ErrorCode::UnknownSession, "unknown session \"x\""),
        ));
        // The 64-bit chain hash must survive the varint path verbatim.
        round_trip_response(&Response::ok(
            Some(7),
            ResultBody::WalHead {
                records: 1_000_003,
                head_hash: u64::MAX - 11,
            },
        ));
        round_trip_response(&Response::ok(
            None,
            ResultBody::WalVerified {
                records: 0,
                head_hash: 0xcbf2_9ce4_8422_2325,
            },
        ));
        round_trip_response(&Response::err(
            Some(8),
            WireError::new(ErrorCode::ChainBroken, "record 3: crc mismatch"),
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let req = Request::Session(SessionRequest {
            id: Some(42),
            session: "s9".to_owned(),
            op: SessionOp::BestResponse {
                peer: PeerId::new(3),
                method: BestResponseMethod::Greedy,
            },
        });
        let payload = encode_request(&req);
        for cut in 0..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Ping { id: None });
        payload.push(0);
        let e = decode_request(&payload).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadFrame);
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A set-move claiming u32::MAX links inside a 10-byte frame.
        let mut w = Writer::new();
        w.u8(OpCode::Apply as u8);
        w.u8(0);
        w.string("s0");
        w.u8(MOVE_SET);
        w.usize(0);
        w.varint(u64::from(u32::MAX));
        let e = decode_request(&w.buf).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadFrame);
    }

    #[test]
    fn bad_name_is_typed_not_framed() {
        let mut w = Writer::new();
        w.u8(OpCode::SocialCost as u8);
        w.u8(0);
        w.string("../escape");
        let e = decode_request(&w.buf).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadName);
    }
}
