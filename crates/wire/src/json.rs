//! The JSON codec (protocol version 1).
//!
//! Frames are compact JSON objects behind the shared length prefix.
//! Requests carry a string `"op"`, an optional integer `"id"`, and —
//! for session ops — a string `"session"` plus op-specific fields.
//! Responses are the historical envelopes
//!
//! ```json
//! { "id": 7, "ok": true, "result": { … } }
//! { "id": 7, "ok": false, "error": "…", "code": "…" }
//! ```
//!
//! (The `"code"` field is new with the typed protocol; v1 clients that
//! only look at `"error"` are unaffected.)
//!
//! Decoding is deliberately lenient the way the pre-typed server was:
//! unknown fields are ignored, field order is free, and an `"id"` that
//! is not a non-negative integer is treated as absent. Encoding is
//! canonical — one fixed key order per op — so the same typed value
//! always produces the same bytes.

use sp_core::{BackendMode, BestResponseMethod, LinkSet, Move, PeerId};
use sp_dynamics::Termination;
use sp_json::{decode_f64, encode_f64, json, Value};

use crate::{
    method_from_name, method_name, validate_name, BestResponseBody, DecodeError, DynamicsBody,
    DynamicsRule, DynamicsSpec, ErrorCode, GameSpec, Geometry, MetricHistogramBody, MetricsBody,
    OpCode, Request, Response, ResultBody, ServiceStats, SessionOp, SessionRequest, TraceSpanBody,
    WireError, TRACE_PHASES, TRACE_TAIL_DEFAULT_LIMIT,
};

/// The request `"id"` as the protocol's integer id: present and a
/// non-negative integer, else absent. (Historical clients could send
/// any numeric id; fractional ids were never produced by first-party
/// tools and are narrowed out here so both codecs agree on the type.)
#[must_use]
pub fn request_id(request: &Value) -> Option<u64> {
    let x = request.get("id").and_then(Value::as_f64)?;
    (x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64).then_some(x as u64)
}

fn id_value(id: u64) -> Value {
    // Ids travel as JSON numbers; f64 represents every id the protocol
    // accepts from JSON (they were parsed out of an f64 to begin with).
    Value::Number(id as f64)
}

// ---------------------------------------------------------------------
// Request encoding
// ---------------------------------------------------------------------

fn links_value(links: &LinkSet) -> Value {
    Value::Array(links.iter().map(|t| Value::from(t.index())).collect())
}

fn pair_value(a: usize, b: usize) -> Value {
    Value::Array(vec![Value::from(a), Value::from(b)])
}

fn move_value(mv: &Move) -> Value {
    match mv {
        Move::SetStrategy { peer, links } => json!({
            "set": json!({ "peer": peer.index(), "links": links_value(links) }),
        }),
        Move::AddLink { from, to } => json!({ "add": pair_value(from.index(), to.index()) }),
        Move::RemoveLink { from, to } => json!({ "remove": pair_value(from.index(), to.index()) }),
    }
}

fn geometry_fields(fields: &mut Vec<(String, Value)>, g: &Geometry) {
    match g {
        Geometry::Line(positions) => fields.push((
            "positions_1d".to_owned(),
            Value::Array(positions.iter().map(|x| Value::Number(*x)).collect()),
        )),
        Geometry::Points2D(points) => fields.push((
            "points_2d".to_owned(),
            Value::Array(
                points
                    .iter()
                    .map(|(x, y)| Value::Array(vec![Value::Number(*x), Value::Number(*y)]))
                    .collect(),
            ),
        )),
        Geometry::Matrix(rows) => fields.push((
            "matrix".to_owned(),
            Value::Array(
                rows.iter()
                    .map(|r| Value::Array(r.iter().map(|x| Value::Number(*x)).collect()))
                    .collect(),
            ),
        )),
    }
}

/// Encodes a request in the canonical key order: `id`, `op`,
/// `session`, then op-specific fields.
#[must_use]
pub fn encode_request(request: &Request) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::new();
    if let Some(id) = request.id() {
        fields.push(("id".to_owned(), id_value(id)));
    }
    fields.push(("op".to_owned(), Value::from(request.code().name())));
    match request {
        Request::Hello { proto, .. } => {
            fields.push(("proto".to_owned(), Value::from(usize::from(*proto))));
        }
        Request::Ping { .. } | Request::Stats { .. } | Request::Metrics { .. } => {}
        Request::TraceTail { limit, slow_ns, .. } => {
            fields.push(("limit".to_owned(), Value::from(*limit)));
            if let Some(s) = slow_ns {
                fields.push(("slow_ns".to_owned(), Value::from(*s as usize)));
            }
        }
        Request::Session(s) => {
            fields.push(("session".to_owned(), Value::from(s.session.as_str())));
            match &s.op {
                SessionOp::Create(spec) => {
                    fields.push(("alpha".to_owned(), Value::Number(spec.alpha)));
                    if spec.mode == BackendMode::Sparse {
                        fields.push(("mode".to_owned(), Value::from(spec.mode.as_str())));
                    }
                    geometry_fields(&mut fields, &spec.geometry);
                    if !spec.links.is_empty() {
                        fields.push((
                            "links".to_owned(),
                            Value::Array(
                                spec.links.iter().map(|&(a, b)| pair_value(a, b)).collect(),
                            ),
                        ));
                    }
                }
                SessionOp::Load
                | SessionOp::SocialCost
                | SessionOp::Stretch
                | SessionOp::Snapshot
                | SessionOp::Evict
                | SessionOp::WalHead
                | SessionOp::WalVerify => {}
                SessionOp::Apply { mv } => fields.push(("move".to_owned(), move_value(mv))),
                SessionOp::ApplyBatch { moves } => fields.push((
                    "moves".to_owned(),
                    Value::Array(moves.iter().map(move_value).collect()),
                )),
                SessionOp::BestResponse { peer, method } => {
                    fields.push(("peer".to_owned(), Value::from(peer.index())));
                    fields.push(("method".to_owned(), Value::from(method_name(*method))));
                }
                SessionOp::NashGap { method } => {
                    fields.push(("method".to_owned(), Value::from(method_name(*method))));
                }
                SessionOp::RunDynamics(spec) => {
                    match spec.rule {
                        DynamicsRule::Better => {
                            fields.push(("rule".to_owned(), Value::from("better")));
                        }
                        DynamicsRule::Best(method) => {
                            fields.push(("rule".to_owned(), Value::from("best")));
                            fields.push(("method".to_owned(), Value::from(method_name(method))));
                        }
                    }
                    if let Some(r) = spec.max_rounds {
                        fields.push(("max_rounds".to_owned(), Value::from(r)));
                    }
                    if let Some(t) = spec.tolerance {
                        fields.push(("tolerance".to_owned(), Value::Number(t)));
                    }
                    if let Some(d) = spec.detect_cycles {
                        fields.push(("detect_cycles".to_owned(), Value::Bool(d)));
                    }
                }
            }
        }
    }
    Value::Object(fields)
}

// ---------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------

fn parse_method(v: &Value) -> Result<BestResponseMethod, WireError> {
    match v.get("method").and_then(Value::as_str) {
        None => Ok(BestResponseMethod::Greedy),
        Some(name) => method_from_name(name)
            .ok_or_else(|| WireError::new(ErrorCode::BadField, format!("unknown method {name:?}"))),
    }
}

fn parse_peer(v: &Value, key: &str) -> Result<PeerId, WireError> {
    v.get(key)
        .and_then(Value::as_usize)
        .map(PeerId::new)
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::BadField,
                format!("missing peer index field {key:?}"),
            )
        })
}

fn parse_index_pair(v: &Value, what: &str) -> Result<(PeerId, PeerId), WireError> {
    let bad = |m: String| WireError::new(ErrorCode::BadField, m);
    let pair = v
        .as_array()
        .ok_or_else(|| bad(format!("{what} must be a [from, to] pair")))?;
    match pair {
        [a, b] => match (a.as_usize(), b.as_usize()) {
            (Some(a), Some(b)) => Ok((PeerId::new(a), PeerId::new(b))),
            _ => Err(bad(format!("{what} must hold peer indices"))),
        },
        _ => Err(bad(format!("{what} must be a [from, to] pair"))),
    }
}

/// Parses one move object: `{"set": {"peer": i, "links": [..]}}`,
/// `{"add": [from, to]}`, or `{"remove": [from, to]}`.
///
/// # Errors
///
/// Returns a [`ErrorCode::BadField`] error naming the malformed field.
pub fn parse_move(v: &Value) -> Result<Move, WireError> {
    let bad = |m: &str| WireError::new(ErrorCode::BadField, m);
    if let Some(set) = v.get("set") {
        let peer = parse_peer(set, "peer")?;
        let links: LinkSet = set
            .get("links")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("set move needs a 'links' array"))?
            .iter()
            .map(|t| {
                t.as_usize()
                    .ok_or_else(|| bad("links must hold peer indices"))
            })
            .collect::<Result<Vec<usize>, _>>()?
            .into_iter()
            .collect();
        return Ok(Move::SetStrategy { peer, links });
    }
    if let Some(add) = v.get("add") {
        let (from, to) = parse_index_pair(add, "add move")?;
        return Ok(Move::AddLink { from, to });
    }
    if let Some(remove) = v.get("remove") {
        let (from, to) = parse_index_pair(remove, "remove move")?;
        return Ok(Move::RemoveLink { from, to });
    }
    Err(bad("move must be one of {set, add, remove}"))
}

fn parse_dynamics_spec(v: &Value) -> Result<DynamicsSpec, WireError> {
    let bad = |m: &str| WireError::new(ErrorCode::BadField, m);
    let rule = match v.get("rule").and_then(Value::as_str) {
        None | Some("better") => DynamicsRule::Better,
        Some("best") => DynamicsRule::Best(parse_method(v)?),
        Some(other) => {
            return Err(WireError::new(
                ErrorCode::BadField,
                format!("unknown dynamics rule {other:?}"),
            ))
        }
    };
    let max_rounds = match v.get("max_rounds") {
        None => None,
        Some(r) => Some(
            r.as_usize()
                .ok_or_else(|| bad("max_rounds must be a non-negative integer"))?,
        ),
    };
    let tolerance = match v.get("tolerance") {
        None => None,
        Some(t) => Some(
            t.as_f64()
                .ok_or_else(|| bad("tolerance must be a number"))?,
        ),
    };
    let detect_cycles = match v.get("detect_cycles") {
        None => None,
        Some(d) => Some(
            d.as_bool()
                .ok_or_else(|| bad("detect_cycles must be a boolean"))?,
        ),
    };
    Ok(DynamicsSpec {
        rule,
        max_rounds,
        tolerance,
        detect_cycles,
    })
}

fn f64_array(v: &Value, what: &str) -> Result<Vec<f64>, WireError> {
    v.as_array()
        .ok_or_else(|| WireError::new(ErrorCode::BadSpec, format!("{what} must be an array")))?
        .iter()
        .map(|x| {
            x.as_f64().ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadSpec,
                    format!("{what} entries must be numbers"),
                )
            })
        })
        .collect()
}

fn parse_mode(request: &Value) -> Result<BackendMode, WireError> {
    let bad = |m: String| WireError::new(ErrorCode::BadSpec, m);
    match request.get("mode").filter(|m| !m.is_null()) {
        None => Ok(BackendMode::Dense),
        Some(m) => match m.as_str() {
            Some("dense") => Ok(BackendMode::Dense),
            Some("sparse") => Ok(BackendMode::Sparse),
            Some(other) => Err(bad(format!("unknown mode {other:?}"))),
            None => Err(bad("mode must be a string".to_owned())),
        },
    }
}

/// Parses the spec fields of a `create` request into a typed
/// [`GameSpec`]. Structural validation (shapes, exactly one geometry,
/// sparse-needs-line) happens here with the historical error messages;
/// *semantic* validation (matrix symmetry, link bounds, …) stays with
/// game construction in the server.
///
/// # Errors
///
/// Returns a [`ErrorCode::BadSpec`] error naming the problem.
pub fn parse_game_spec(v: &Value) -> Result<GameSpec, WireError> {
    let bad = |m: String| WireError::new(ErrorCode::BadSpec, m);
    let alpha = v
        .get("alpha")
        .and_then(Value::as_f64)
        .ok_or_else(|| bad("create needs a numeric 'alpha' field".to_owned()))?;
    let mode = parse_mode(v)?;
    let field = |key: &str| v.get(key).filter(|f| !f.is_null());
    let positions_1d = field("positions_1d");
    let points_2d = field("points_2d");
    let matrix = field("matrix");
    let geoms = usize::from(positions_1d.is_some())
        + usize::from(points_2d.is_some())
        + usize::from(matrix.is_some());
    if geoms != 1 {
        return Err(bad(format!(
            "exactly one of positions_1d / points_2d / matrix must be given, found {geoms}"
        )));
    }
    if mode == BackendMode::Sparse && positions_1d.is_none() {
        return Err(bad(
            "sparse mode requires a positions_1d geometry".to_owned()
        ));
    }

    let geometry = if let Some(p) = positions_1d {
        Geometry::Line(f64_array(p, "positions_1d")?)
    } else if let Some(p) = points_2d {
        let points = p
            .as_array()
            .ok_or_else(|| bad("points_2d must be an array".to_owned()))?
            .iter()
            .map(|pair| {
                let xy = f64_array(pair, "points_2d entries")?;
                match xy.as_slice() {
                    [x, y] => Ok((*x, *y)),
                    _ => Err(bad("points_2d entries must be [x, y] pairs".to_owned())),
                }
            })
            .collect::<Result<_, WireError>>()?;
        Geometry::Points2D(points)
    } else {
        let rows = matrix
            .ok_or_else(|| bad("spec needs positions_1d, points_2d, or matrix".to_owned()))?
            .as_array()
            .ok_or_else(|| bad("matrix must be an array of rows".to_owned()))?
            .iter()
            .map(|row| f64_array(row, "matrix rows"))
            .collect::<Result<_, WireError>>()?;
        Geometry::Matrix(rows)
    };

    let links = match field("links") {
        None => Vec::new(),
        Some(l) => l
            .as_array()
            .ok_or_else(|| bad("links must be an array".to_owned()))?
            .iter()
            .map(|pair| {
                let p = pair
                    .as_array()
                    .ok_or_else(|| bad("links entries must be [from, to] pairs".to_owned()))?;
                match p {
                    [a, b] => match (a.as_usize(), b.as_usize()) {
                        (Some(a), Some(b)) => Ok((a, b)),
                        _ => Err(bad(
                            "links entries must be [from, to] index pairs".to_owned()
                        )),
                    },
                    _ => Err(bad("links entries must be [from, to] pairs".to_owned())),
                }
            })
            .collect::<Result<_, WireError>>()?,
    };
    Ok(GameSpec {
        alpha,
        geometry,
        links,
        mode,
    })
}

/// Decodes one request frame.
///
/// # Errors
///
/// Returns the typed failure together with whatever `id` the frame
/// carried, so the caller can build a proper error envelope.
pub fn decode_request(v: &Value) -> Result<Request, DecodeError> {
    let id = request_id(v);
    let fail = |code: ErrorCode, m: String| {
        Err(DecodeError {
            id,
            error: WireError::new(code, m),
        })
    };
    let Some(op_name) = v.get("op").and_then(Value::as_str) else {
        return fail(
            ErrorCode::BadRequest,
            "request needs a string 'op' field".to_owned(),
        );
    };
    let Some(code) = OpCode::from_name(op_name) else {
        return fail(ErrorCode::UnknownOp, format!("unknown op {op_name:?}"));
    };
    match code {
        OpCode::Hello => {
            let Some(proto) = v.get("proto").and_then(Value::as_usize) else {
                return fail(
                    ErrorCode::BadProto,
                    "hello needs an integer 'proto' field".to_owned(),
                );
            };
            let Ok(proto) = u8::try_from(proto) else {
                return fail(
                    ErrorCode::BadProto,
                    format!("unsupported protocol version {proto}"),
                );
            };
            return Ok(Request::Hello { id, proto });
        }
        OpCode::Ping => return Ok(Request::Ping { id }),
        OpCode::Stats => return Ok(Request::Stats { id }),
        OpCode::Metrics => return Ok(Request::Metrics { id }),
        OpCode::TraceTail => {
            let limit = match v.get("limit").filter(|l| !l.is_null()) {
                None => TRACE_TAIL_DEFAULT_LIMIT,
                Some(l) => match l.as_usize() {
                    Some(x) => x,
                    None => {
                        return fail(
                            ErrorCode::BadField,
                            "limit must be a non-negative integer".to_owned(),
                        )
                    }
                },
            };
            let slow_ns = match v.get("slow_ns").filter(|s| !s.is_null()) {
                None => None,
                Some(s) => match s.as_usize() {
                    Some(x) => Some(x as u64),
                    None => {
                        return fail(
                            ErrorCode::BadField,
                            "slow_ns must be a non-negative integer".to_owned(),
                        )
                    }
                },
            };
            return Ok(Request::TraceTail { id, limit, slow_ns });
        }
        _ => {}
    }
    let Some(session) = v.get("session").and_then(Value::as_str) else {
        return fail(
            ErrorCode::BadRequest,
            "request needs a string 'session' field".to_owned(),
        );
    };
    let session = session.to_owned();
    if let Err(e) = validate_name(&session) {
        return Err(DecodeError { id, error: e });
    }
    let wrap = |r: Result<SessionOp, WireError>| match r {
        Ok(op) => Ok(Request::Session(SessionRequest {
            id,
            session: session.clone(),
            op,
        })),
        Err(error) => Err(DecodeError { id, error }),
    };
    match code {
        OpCode::Create => wrap(parse_game_spec(v).map(SessionOp::Create)),
        OpCode::Load => wrap(Ok(SessionOp::Load)),
        OpCode::Apply => wrap(
            v.get("move")
                .ok_or_else(|| WireError::new(ErrorCode::BadField, "apply needs a 'move' object"))
                .and_then(parse_move)
                .map(|mv| SessionOp::Apply { mv }),
        ),
        OpCode::ApplyBatch => wrap(
            v.get("moves")
                .and_then(Value::as_array)
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadField, "apply_batch needs a 'moves' array")
                })
                .and_then(|moves| {
                    moves
                        .iter()
                        .map(parse_move)
                        .collect::<Result<Vec<Move>, WireError>>()
                })
                .map(|moves| SessionOp::ApplyBatch { moves }),
        ),
        OpCode::BestResponse => wrap(parse_peer(v, "peer").and_then(|peer| {
            Ok(SessionOp::BestResponse {
                peer,
                method: parse_method(v)?,
            })
        })),
        OpCode::NashGap => wrap(parse_method(v).map(|method| SessionOp::NashGap { method })),
        OpCode::SocialCost => wrap(Ok(SessionOp::SocialCost)),
        OpCode::Stretch => wrap(Ok(SessionOp::Stretch)),
        OpCode::RunDynamics => wrap(parse_dynamics_spec(v).map(SessionOp::RunDynamics)),
        OpCode::Snapshot => wrap(Ok(SessionOp::Snapshot)),
        OpCode::Evict => wrap(Ok(SessionOp::Evict)),
        OpCode::WalHead => wrap(Ok(SessionOp::WalHead)),
        OpCode::WalVerify => wrap(Ok(SessionOp::WalVerify)),
        // Already returned above; kept as a typed error so no panic can
        // live on the request path.
        OpCode::Hello | OpCode::Ping | OpCode::Stats | OpCode::Metrics | OpCode::TraceTail => fail(
            ErrorCode::BadRequest,
            format!("op {op_name:?} cannot target a session"),
        ),
    }
}

// ---------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------

fn social_cost_value(sc: &crate::SocialCostBody) -> Value {
    json!({
        "link_cost": encode_f64(sc.link_cost),
        "stretch_cost": encode_f64(sc.stretch_cost),
        "total": encode_f64(sc.total),
    })
}

fn termination_value(t: &Termination) -> Value {
    match t {
        Termination::Converged { rounds } => json!({ "kind": "converged", "rounds": *rounds }),
        Termination::Cycle {
            first_seen_step,
            period_steps,
            moves_in_cycle,
        } => json!({
            "kind": "cycle",
            "first_seen_step": *first_seen_step,
            "period_steps": *period_steps,
            "moves_in_cycle": *moves_in_cycle,
        }),
        Termination::RoundLimit => json!({ "kind": "round_limit" }),
    }
}

fn usize_array(xs: &[usize]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::from(x)).collect())
}

/// Encodes a result body exactly as the historical untyped builders in
/// `sp-serve` did — the bit-identity contract compares these bytes.
#[must_use]
pub fn encode_result(body: &ResultBody) -> Value {
    match body {
        ResultBody::Hello { proto } => json!({ "proto": usize::from(*proto) }),
        ResultBody::Pong => json!({ "pong": true }),
        ResultBody::Stats(s) => json!({
            "requests_served": s.requests_served as usize,
            "sessions_created": s.sessions_created as usize,
            "sessions_evicted": s.sessions_evicted as usize,
            "sessions_restored": s.sessions_restored as usize,
            "queue_depth_hwm": s.queue_depth_hwm,
            "resident_sessions": s.resident_sessions,
            "resident_bytes": s.resident_bytes,
        }),
        ResultBody::Created {
            n,
            alpha,
            links,
            mode,
        } => json!({
            "n": *n,
            "alpha": Value::Number(*alpha),
            "links": *links,
            "mode": mode.as_str(),
        }),
        ResultBody::Loaded { mode } => json!({ "loaded": true, "mode": mode.as_str() }),
        ResultBody::Applied { previous } => json!({ "previous": usize_array(previous) }),
        ResultBody::BatchApplied { previous } => json!({
            "previous": Value::Array(previous.iter().map(|row| usize_array(row)).collect()),
        }),
        ResultBody::BestResponse(br) => json!({
            "peer": br.peer,
            "links": usize_array(&br.links),
            "cost": encode_f64(br.cost),
            "current_cost": encode_f64(br.current_cost),
            "exact": br.exact,
        }),
        ResultBody::NashGap { gap } => json!({ "gap": encode_f64(*gap) }),
        ResultBody::SocialCost(sc) => social_cost_value(sc),
        ResultBody::Stretch { max_stretch } => {
            json!({ "max_stretch": encode_f64(*max_stretch) })
        }
        ResultBody::Dynamics(d) => json!({
            "termination": termination_value(&d.termination),
            "steps": d.steps,
            "moves": d.moves,
            "social_cost": social_cost_value(&d.social_cost),
        }),
        ResultBody::Persisted => json!({ "persisted": true }),
        ResultBody::Evicted => json!({ "evicted": true }),
        // The chain hash is a full u64; JSON numbers are f64, so it
        // travels as a fixed-width hex string to stay lossless.
        ResultBody::WalHead { records, head_hash } => json!({
            "records": *records as usize,
            "head_hash": format!("{head_hash:016x}"),
        }),
        ResultBody::WalVerified { records, head_hash } => json!({
            "verified": true,
            "records": *records as usize,
            "head_hash": format!("{head_hash:016x}"),
        }),
        ResultBody::Metrics(m) => {
            let counters: Vec<(String, Value)> = m
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), Value::from(*c as usize)))
                .collect();
            let gauges: Vec<(String, Value)> = m
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), Value::from(*g as usize)))
                .collect();
            let histograms: Vec<(String, Value)> = m
                .histograms
                .iter()
                .map(|h| {
                    (
                        h.name.clone(),
                        json!({
                            "count": h.count as usize,
                            "min_ns": h.min_ns as usize,
                            "p50_ns": h.p50_ns as usize,
                            "p99_ns": h.p99_ns as usize,
                            "p999_ns": h.p999_ns as usize,
                            "max_ns": h.max_ns as usize,
                        }),
                    )
                })
                .collect();
            json!({
                "counters": Value::Object(counters),
                "gauges": Value::Object(gauges),
                "histograms": Value::Object(histograms),
            })
        }
        ResultBody::TraceTail { spans } => json!({
            "spans": Value::Array(
                spans
                    .iter()
                    .map(|s| {
                        json!({
                            "seq": s.seq as usize,
                            "op": s.op.as_str(),
                            "total_ns": s.total_ns as usize,
                            "phases_ns": Value::Array(
                                s.phases_ns.iter().map(|&p| Value::from(p as usize)).collect(),
                            ),
                        })
                    })
                    .collect(),
            ),
        }),
    }
}

/// Encodes a response envelope: `{id?, ok, result}` on success,
/// `{id?, ok, error, code}` on failure.
#[must_use]
pub fn encode_response(response: &Response) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::with_capacity(4);
    if let Some(id) = response.id {
        fields.push(("id".to_owned(), id_value(id)));
    }
    match &response.outcome {
        Ok(body) => {
            fields.push(("ok".to_owned(), Value::Bool(true)));
            fields.push(("result".to_owned(), encode_result(body)));
        }
        Err(e) => {
            fields.push(("ok".to_owned(), Value::Bool(false)));
            fields.push(("error".to_owned(), Value::from(e.message.as_str())));
            fields.push(("code".to_owned(), Value::from(e.code.as_str())));
        }
    }
    Value::Object(fields)
}

// ---------------------------------------------------------------------
// Response decoding
// ---------------------------------------------------------------------

fn need_f64(v: &Value, key: &str) -> Result<f64, WireError> {
    v.get(key).and_then(decode_f64).ok_or_else(|| {
        WireError::new(
            ErrorCode::BadFrame,
            format!("result needs a numeric {key:?} field"),
        )
    })
}

fn need_usize(v: &Value, key: &str) -> Result<usize, WireError> {
    v.get(key).and_then(Value::as_usize).ok_or_else(|| {
        WireError::new(
            ErrorCode::BadFrame,
            format!("result needs an integer {key:?} field"),
        )
    })
}

fn need_hash(v: &Value, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::BadFrame,
                format!("result needs a hex-string {key:?} field"),
            )
        })
}

fn need_usize_array(v: &Value) -> Result<Vec<usize>, WireError> {
    v.as_array()
        .ok_or_else(|| WireError::new(ErrorCode::BadFrame, "expected an index array"))?
        .iter()
        .map(|x| {
            x.as_usize()
                .ok_or_else(|| WireError::new(ErrorCode::BadFrame, "expected peer indices"))
        })
        .collect()
}

fn decode_mode(v: &Value) -> Result<BackendMode, WireError> {
    match v.get("mode").and_then(Value::as_str) {
        Some("dense") => Ok(BackendMode::Dense),
        Some("sparse") => Ok(BackendMode::Sparse),
        _ => Err(WireError::new(
            ErrorCode::BadFrame,
            "result needs a backend 'mode' field",
        )),
    }
}

fn decode_social_cost(v: &Value) -> Result<crate::SocialCostBody, WireError> {
    Ok(crate::SocialCostBody {
        link_cost: need_f64(v, "link_cost")?,
        stretch_cost: need_f64(v, "stretch_cost")?,
        total: need_f64(v, "total")?,
    })
}

fn decode_termination(v: &Value) -> Result<Termination, WireError> {
    match v.get("kind").and_then(Value::as_str) {
        Some("converged") => Ok(Termination::Converged {
            rounds: need_usize(v, "rounds")?,
        }),
        Some("cycle") => Ok(Termination::Cycle {
            first_seen_step: need_usize(v, "first_seen_step")?,
            period_steps: need_usize(v, "period_steps")?,
            moves_in_cycle: need_usize(v, "moves_in_cycle")?,
        }),
        Some("round_limit") => Ok(Termination::RoundLimit),
        _ => Err(WireError::new(
            ErrorCode::BadFrame,
            "unknown dynamics termination kind",
        )),
    }
}

fn metric_pairs(v: &Value, key: &str) -> Result<Vec<(String, u64)>, WireError> {
    v.get(key)
        .and_then(Value::as_object)
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::BadFrame,
                format!("metrics result needs an object {key:?} field"),
            )
        })?
        .iter()
        .map(|(k, x)| {
            x.as_usize().map(|n| (k.clone(), n as u64)).ok_or_else(|| {
                WireError::new(ErrorCode::BadFrame, "metric values must be integers")
            })
        })
        .collect()
}

fn decode_trace_span(v: &Value) -> Result<TraceSpanBody, WireError> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::new(ErrorCode::BadFrame, "trace span needs a string 'op' field"))?
        .to_owned();
    let offsets = v
        .get("phases_ns")
        .map(need_usize_array)
        .transpose()?
        .ok_or_else(|| WireError::new(ErrorCode::BadFrame, "trace span needs 'phases_ns'"))?;
    if offsets.len() != TRACE_PHASES {
        return Err(WireError::new(
            ErrorCode::BadFrame,
            format!("trace span phases_ns must have {TRACE_PHASES} entries"),
        ));
    }
    let mut phases_ns = [0u64; TRACE_PHASES];
    for (dst, src) in phases_ns.iter_mut().zip(&offsets) {
        *dst = *src as u64;
    }
    Ok(TraceSpanBody {
        seq: need_usize(v, "seq")? as u64,
        op,
        total_ns: need_usize(v, "total_ns")? as u64,
        phases_ns,
    })
}

fn decode_result(v: &Value, op: OpCode) -> Result<ResultBody, WireError> {
    Ok(match op {
        OpCode::Hello => ResultBody::Hello {
            proto: u8::try_from(need_usize(v, "proto")?).map_err(|_| {
                WireError::new(ErrorCode::BadFrame, "hello result proto out of range")
            })?,
        },
        OpCode::Ping => ResultBody::Pong,
        OpCode::Stats => ResultBody::Stats(ServiceStats {
            requests_served: need_usize(v, "requests_served")? as u64,
            sessions_created: need_usize(v, "sessions_created")? as u64,
            sessions_evicted: need_usize(v, "sessions_evicted")? as u64,
            sessions_restored: need_usize(v, "sessions_restored")? as u64,
            queue_depth_hwm: need_usize(v, "queue_depth_hwm")?,
            resident_sessions: need_usize(v, "resident_sessions")?,
            resident_bytes: need_usize(v, "resident_bytes")?,
        }),
        OpCode::Create => ResultBody::Created {
            n: need_usize(v, "n")?,
            alpha: need_f64(v, "alpha")?,
            links: need_usize(v, "links")?,
            mode: decode_mode(v)?,
        },
        OpCode::Load => ResultBody::Loaded {
            mode: decode_mode(v)?,
        },
        OpCode::Apply => ResultBody::Applied {
            previous: v
                .get("previous")
                .map(need_usize_array)
                .transpose()?
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadFrame, "apply result needs 'previous'")
                })?,
        },
        OpCode::ApplyBatch => ResultBody::BatchApplied {
            previous: v
                .get("previous")
                .and_then(Value::as_array)
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadFrame, "apply_batch result needs 'previous'")
                })?
                .iter()
                .map(need_usize_array)
                .collect::<Result<_, _>>()?,
        },
        OpCode::BestResponse => ResultBody::BestResponse(BestResponseBody {
            peer: need_usize(v, "peer")?,
            links: v
                .get("links")
                .map(need_usize_array)
                .transpose()?
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadFrame, "best_response result needs 'links'")
                })?,
            cost: need_f64(v, "cost")?,
            current_cost: need_f64(v, "current_cost")?,
            exact: v.get("exact").and_then(Value::as_bool).ok_or_else(|| {
                WireError::new(ErrorCode::BadFrame, "best_response result needs 'exact'")
            })?,
        }),
        OpCode::NashGap => ResultBody::NashGap {
            gap: need_f64(v, "gap")?,
        },
        OpCode::SocialCost => ResultBody::SocialCost(decode_social_cost(v)?),
        OpCode::Stretch => ResultBody::Stretch {
            max_stretch: need_f64(v, "max_stretch")?,
        },
        OpCode::RunDynamics => {
            let termination = v.get("termination").ok_or_else(|| {
                WireError::new(ErrorCode::BadFrame, "dynamics result needs 'termination'")
            })?;
            ResultBody::Dynamics(DynamicsBody {
                termination: decode_termination(termination)?,
                steps: need_usize(v, "steps")?,
                moves: need_usize(v, "moves")?,
                social_cost: v
                    .get("social_cost")
                    .map(decode_social_cost)
                    .transpose()?
                    .ok_or_else(|| {
                        WireError::new(ErrorCode::BadFrame, "dynamics result needs 'social_cost'")
                    })?,
            })
        }
        OpCode::Snapshot => ResultBody::Persisted,
        OpCode::Evict => ResultBody::Evicted,
        OpCode::WalHead => ResultBody::WalHead {
            records: need_usize(v, "records")? as u64,
            head_hash: need_hash(v, "head_hash")?,
        },
        OpCode::WalVerify => ResultBody::WalVerified {
            records: need_usize(v, "records")? as u64,
            head_hash: need_hash(v, "head_hash")?,
        },
        OpCode::Metrics => {
            let histograms = v
                .get("histograms")
                .and_then(Value::as_object)
                .ok_or_else(|| {
                    WireError::new(
                        ErrorCode::BadFrame,
                        "metrics result needs an object 'histograms' field",
                    )
                })?
                .iter()
                .map(|(name, h)| {
                    Ok(MetricHistogramBody {
                        name: name.clone(),
                        count: need_usize(h, "count")? as u64,
                        min_ns: need_usize(h, "min_ns")? as u64,
                        p50_ns: need_usize(h, "p50_ns")? as u64,
                        p99_ns: need_usize(h, "p99_ns")? as u64,
                        p999_ns: need_usize(h, "p999_ns")? as u64,
                        max_ns: need_usize(h, "max_ns")? as u64,
                    })
                })
                .collect::<Result<_, WireError>>()?;
            ResultBody::Metrics(MetricsBody {
                counters: metric_pairs(v, "counters")?,
                gauges: metric_pairs(v, "gauges")?,
                histograms,
            })
        }
        OpCode::TraceTail => ResultBody::TraceTail {
            spans: v
                .get("spans")
                .and_then(Value::as_array)
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadFrame, "trace_tail result needs 'spans'")
                })?
                .iter()
                .map(decode_trace_span)
                .collect::<Result<_, _>>()?,
        },
    })
}

/// Decodes one response frame. The `op` hint names the request the
/// response answers — JSON result bodies are not self-describing (an
/// empty `{"previous": []}` could be `apply` or `apply_batch`), so the
/// caller, who matched the response to its request, supplies it.
///
/// # Errors
///
/// Returns a [`ErrorCode::BadFrame`] failure (with the frame's `id`
/// when present) on any shape mismatch.
pub fn decode_response(v: &Value, op: OpCode) -> Result<Response, DecodeError> {
    let id = request_id(v);
    let fail = |error: WireError| DecodeError { id, error };
    let Some(ok) = v.get("ok").and_then(Value::as_bool) else {
        return Err(fail(WireError::new(
            ErrorCode::BadFrame,
            "response needs a boolean 'ok' field",
        )));
    };
    if ok {
        let result = v.get("result").ok_or_else(|| {
            fail(WireError::new(
                ErrorCode::BadFrame,
                "ok response needs 'result'",
            ))
        })?;
        let body = decode_result(result, op).map_err(fail)?;
        Ok(Response::ok(id, body))
    } else {
        let message = v
            .get("error")
            .and_then(Value::as_str)
            .ok_or_else(|| {
                fail(WireError::new(
                    ErrorCode::BadFrame,
                    "error response needs 'error'",
                ))
            })?
            .to_owned();
        // Pre-typed servers sent no "code"; classify those as the
        // generic envelope-level failure.
        let code = v
            .get("code")
            .and_then(Value::as_str)
            .and_then(ErrorCode::parse)
            .unwrap_or(ErrorCode::BadRequest);
        Ok(Response::err(id, WireError { code, message }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_canonically() {
        let req = Request::Session(SessionRequest {
            id: Some(7),
            session: "s0".to_owned(),
            op: SessionOp::BestResponse {
                peer: PeerId::new(3),
                method: BestResponseMethod::LocalSearch,
            },
        });
        let v = encode_request(&req);
        assert_eq!(
            v.to_string_compact(),
            r#"{"id":7,"op":"best_response","session":"s0","peer":3,"method":"local_search"}"#
        );
        assert_eq!(decode_request(&v).unwrap(), req);
    }

    #[test]
    fn create_encoding_matches_the_historical_shape() {
        let req = Request::Session(SessionRequest {
            id: None,
            session: "s1".to_owned(),
            op: SessionOp::Create(GameSpec {
                alpha: 1.5,
                geometry: Geometry::Line(vec![0.0, 2.0]),
                links: vec![(0, 1), (1, 0)],
                mode: BackendMode::Dense,
            }),
        });
        let v = encode_request(&req);
        assert_eq!(
            v.to_string_compact(),
            r#"{"op":"create","session":"s1","alpha":1.5,"positions_1d":[0,2],"links":[[0,1],[1,0]]}"#
        );
        assert_eq!(decode_request(&v).unwrap(), req);
    }

    #[test]
    fn decode_errors_carry_codes_and_ids() {
        let e = decode_request(&json!({ "id": 4, "session": "x" })).unwrap_err();
        assert_eq!(e.id, Some(4));
        assert_eq!(e.error.code, ErrorCode::BadRequest);

        let e = decode_request(&json!({ "op": "warp", "session": "x" })).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::UnknownOp);
        assert_eq!(e.error.message, "unknown op \"warp\"");

        let e = decode_request(&json!({ "op": "social_cost", "session": "../x" })).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadName);

        let e = decode_request(&json!({ "op": "apply", "session": "x" })).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadField);

        let e = decode_request(&json!({ "op": "create", "session": "x" })).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadSpec);

        let e = decode_request(&json!({ "op": "hello", "proto": "x" })).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadProto);
    }

    #[test]
    fn response_envelopes_round_trip() {
        let ok = Response::ok(
            Some(3),
            ResultBody::Applied {
                previous: vec![1, 4],
            },
        );
        let v = encode_response(&ok);
        assert_eq!(
            v.to_string_compact(),
            r#"{"id":3,"ok":true,"result":{"previous":[1,4]}}"#
        );
        assert_eq!(decode_response(&v, OpCode::Apply).unwrap(), ok);

        let err = Response::err(
            None,
            WireError::new(ErrorCode::UnknownSession, "unknown session \"x\""),
        );
        let v = encode_response(&err);
        assert_eq!(
            v.to_string_compact(),
            r#"{"ok":false,"error":"unknown session \"x\"","code":"unknown_session"}"#
        );
        assert_eq!(decode_response(&v, OpCode::SocialCost).unwrap(), err);
    }

    #[test]
    fn infinities_survive_result_round_trips() {
        let body = ResultBody::Stretch {
            max_stretch: f64::INFINITY,
        };
        let v = encode_result(&body);
        assert_eq!(v.to_string_compact(), r#"{"max_stretch":"inf"}"#);
        assert_eq!(decode_result(&v, OpCode::Stretch).unwrap(), body);
    }

    #[test]
    fn wal_results_round_trip_losslessly() {
        let head = ResultBody::WalHead {
            records: 42,
            head_hash: u64::MAX - 3,
        };
        let v = encode_result(&head);
        assert_eq!(
            v.to_string_compact(),
            r#"{"records":42,"head_hash":"fffffffffffffffc"}"#
        );
        assert_eq!(decode_result(&v, OpCode::WalHead).unwrap(), head);

        let verified = ResultBody::WalVerified {
            records: 0,
            head_hash: 0xcbf2_9ce4_8422_2325,
        };
        let v = encode_result(&verified);
        assert_eq!(decode_result(&v, OpCode::WalVerify).unwrap(), verified);
    }

    #[test]
    fn metrics_and_trace_requests_round_trip() {
        let req = Request::Metrics { id: Some(9) };
        let v = encode_request(&req);
        assert_eq!(v.to_string_compact(), r#"{"id":9,"op":"metrics"}"#);
        assert_eq!(decode_request(&v).unwrap(), req);

        let req = Request::TraceTail {
            id: None,
            limit: 5,
            slow_ns: Some(2_000_000),
        };
        let v = encode_request(&req);
        assert_eq!(
            v.to_string_compact(),
            r#"{"op":"trace_tail","limit":5,"slow_ns":2000000}"#
        );
        assert_eq!(decode_request(&v).unwrap(), req);

        // An omitted limit defaults; omitted slow_ns means no filter.
        let v = json!({ "op": "trace_tail" });
        assert_eq!(
            decode_request(&v).unwrap(),
            Request::TraceTail {
                id: None,
                limit: TRACE_TAIL_DEFAULT_LIMIT,
                slow_ns: None,
            }
        );

        let e = decode_request(&json!({ "op": "trace_tail", "limit": "x" })).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadField);
        let e = decode_request(&json!({ "op": "trace_tail", "slow_ns": "x" })).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadField);
    }

    #[test]
    fn metrics_results_round_trip() {
        let body = ResultBody::Metrics(MetricsBody {
            counters: vec![
                ("obs.spans_completed".to_owned(), 12),
                ("wal.fsync_batches".to_owned(), 3),
            ],
            gauges: vec![("queue.depth_hwm".to_owned(), 4)],
            histograms: vec![MetricHistogramBody {
                name: "op.ping".to_owned(),
                count: 2,
                min_ns: 10,
                p50_ns: 11,
                p99_ns: 11,
                p999_ns: 11,
                max_ns: 11,
            }],
        });
        let v = encode_result(&body);
        assert_eq!(
            v.to_string_compact(),
            concat!(
                r#"{"counters":{"obs.spans_completed":12,"wal.fsync_batches":3},"#,
                r#""gauges":{"queue.depth_hwm":4},"#,
                r#""histograms":{"op.ping":{"count":2,"min_ns":10,"p50_ns":11,"#,
                r#""p99_ns":11,"p999_ns":11,"max_ns":11}}}"#
            )
        );
        assert_eq!(decode_result(&v, OpCode::Metrics).unwrap(), body);
    }

    #[test]
    fn trace_tail_results_round_trip() {
        let body = ResultBody::TraceTail {
            spans: vec![TraceSpanBody {
                seq: 41,
                op: "social_cost".to_owned(),
                total_ns: 900,
                phases_ns: [0, 100, 200, 300, 0, 0, 800, 900],
            }],
        };
        let v = encode_result(&body);
        assert_eq!(
            v.to_string_compact(),
            concat!(
                r#"{"spans":[{"seq":41,"op":"social_cost","total_ns":900,"#,
                r#""phases_ns":[0,100,200,300,0,0,800,900]}]}"#
            )
        );
        assert_eq!(decode_result(&v, OpCode::TraceTail).unwrap(), body);

        let short =
            json!({ "seq": 1, "op": "ping", "total_ns": 2, "phases_ns": usize_array(&[1, 2]) });
        let e = decode_result(
            &json!({ "spans": Value::Array(vec![short]) }),
            OpCode::TraceTail,
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadFrame);
    }

    #[test]
    fn dynamics_round_trip() {
        let body = ResultBody::Dynamics(DynamicsBody {
            termination: Termination::Cycle {
                first_seen_step: 4,
                period_steps: 2,
                moves_in_cycle: 2,
            },
            steps: 9,
            moves: 5,
            social_cost: crate::SocialCostBody {
                link_cost: 3.0,
                stretch_cost: f64::INFINITY,
                total: f64::INFINITY,
            },
        });
        let v = encode_result(&body);
        assert_eq!(decode_result(&v, OpCode::RunDynamics).unwrap(), body);
    }
}
