//! The typed sp-serve wire protocol.
//!
//! One set of types — [`Request`], [`Response`], [`WireError`] — is the
//! protocol; the two codec modules ([`json`] and [`binary`]) are
//! interchangeable serializations of it. The server, the load
//! generator, and the single-threaded reference executor all dispatch
//! on these enums, so "the concurrent server answers bit-identically to
//! the reference" is a statement about *typed values*, checked after
//! decoding, not about accidental agreement between two hand-rolled
//! JSON builders.
//!
//! # Versions and negotiation
//!
//! * **Proto 1** is the historical JSON protocol: length-prefixed
//!   compact-JSON frames (`sp_json::frame`). A connection that never
//!   sends a `hello` speaks proto 1 implicitly — every pre-existing
//!   client keeps working unchanged.
//! * **Proto 2** is the compact binary codec over the same length
//!   prefix. A client opts in by making its *first* frame a JSON
//!   `hello {proto: 2}`; the server answers in JSON (so the client can
//!   read the verdict with the codec it already speaks) and both sides
//!   switch to binary for every subsequent frame.
//!
//! A malformed or unsupported `hello` is answered with a typed reject
//! ([`ErrorCode::BadProto`]) before the connection closes — never a
//! silent close.
//!
//! # Error taxonomy
//!
//! Every failure carries a stable machine-readable [`ErrorCode`] beside
//! its human-readable message. Codes are part of the protocol: the JSON
//! envelope carries them as a `"code"` string, the binary codec as a
//! single byte, and both renderings are produced by the same shared
//! constructors, which is what keeps error responses inside the
//! bit-identity contract.

#![forbid(unsafe_code)]

use sp_core::{BackendMode, BestResponseMethod, Move, PeerId};
use sp_dynamics::Termination;

pub mod binary;
pub mod json;

/// The implicit, historical JSON protocol version.
pub const PROTO_JSON: u8 = 1;
/// The negotiated compact binary protocol version.
pub const PROTO_BINARY: u8 = 2;

/// Largest session-name length the service accepts.
pub const MAX_NAME_LEN: usize = 64;

/// Stable operation codes. The numeric values are the binary codec's
/// on-wire tags and the README's op-code table; the names are the JSON
/// codec's `"op"` strings. Neither may change once released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Version negotiation (first frame only).
    Hello = 0x01,
    /// Liveness probe, answered inline.
    Ping = 0x02,
    /// Registry counters, answered inline.
    Stats = 0x03,
    /// Create a session from an embedded game spec.
    Create = 0x10,
    /// Explicitly restore a session from its snapshot file.
    Load = 0x11,
    /// Apply one move.
    Apply = 0x12,
    /// Apply a batch of moves as one cache transaction.
    ApplyBatch = 0x13,
    /// Best response of one peer against the frozen rest.
    BestResponse = 0x14,
    /// Largest unilateral improvement over all peers.
    NashGap = 0x15,
    /// Social cost of the current profile.
    SocialCost = 0x16,
    /// Maximum stretch of the current profile.
    Stretch = 0x17,
    /// Run sequential dynamics in-place.
    RunDynamics = 0x18,
    /// Persist the session, keeping it resident.
    Snapshot = 0x19,
    /// Persist the session and drop it from memory.
    Evict = 0x1A,
    /// Read the session's WAL head: record count + chain head hash.
    WalHead = 0x1B,
    /// Re-scan the session's WAL, verifying CRCs and the hash chain.
    WalVerify = 0x1C,
    /// Server-side metrics registry snapshot, answered inline.
    Metrics = 0x1D,
    /// Last-N completed request spans with phase breakdowns, answered
    /// inline (opt-in slow-threshold filter).
    TraceTail = 0x1E,
}

impl OpCode {
    /// The JSON `"op"` string.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpCode::Hello => "hello",
            OpCode::Ping => "ping",
            OpCode::Stats => "stats",
            OpCode::Create => "create",
            OpCode::Load => "load",
            OpCode::Apply => "apply",
            OpCode::ApplyBatch => "apply_batch",
            OpCode::BestResponse => "best_response",
            OpCode::NashGap => "nash_gap",
            OpCode::SocialCost => "social_cost",
            OpCode::Stretch => "stretch",
            OpCode::RunDynamics => "run_dynamics",
            OpCode::Snapshot => "snapshot",
            OpCode::Evict => "evict",
            OpCode::WalHead => "wal_head",
            OpCode::WalVerify => "wal_verify",
            OpCode::Metrics => "metrics",
            OpCode::TraceTail => "trace_tail",
        }
    }

    /// Inverse of [`OpCode::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<OpCode> {
        Some(match name {
            "hello" => OpCode::Hello,
            "ping" => OpCode::Ping,
            "stats" => OpCode::Stats,
            "create" => OpCode::Create,
            "load" => OpCode::Load,
            "apply" => OpCode::Apply,
            "apply_batch" => OpCode::ApplyBatch,
            "best_response" => OpCode::BestResponse,
            "nash_gap" => OpCode::NashGap,
            "social_cost" => OpCode::SocialCost,
            "stretch" => OpCode::Stretch,
            "run_dynamics" => OpCode::RunDynamics,
            "snapshot" => OpCode::Snapshot,
            "evict" => OpCode::Evict,
            "wal_head" => OpCode::WalHead,
            "wal_verify" => OpCode::WalVerify,
            "metrics" => OpCode::Metrics,
            "trace_tail" => OpCode::TraceTail,
            _ => return None,
        })
    }

    /// Inverse of the `repr(u8)` value (the binary tag).
    #[must_use]
    pub fn from_u8(tag: u8) -> Option<OpCode> {
        Some(match tag {
            0x01 => OpCode::Hello,
            0x02 => OpCode::Ping,
            0x03 => OpCode::Stats,
            0x10 => OpCode::Create,
            0x11 => OpCode::Load,
            0x12 => OpCode::Apply,
            0x13 => OpCode::ApplyBatch,
            0x14 => OpCode::BestResponse,
            0x15 => OpCode::NashGap,
            0x16 => OpCode::SocialCost,
            0x17 => OpCode::Stretch,
            0x18 => OpCode::RunDynamics,
            0x19 => OpCode::Snapshot,
            0x1A => OpCode::Evict,
            0x1B => OpCode::WalHead,
            0x1C => OpCode::WalVerify,
            0x1D => OpCode::Metrics,
            0x1E => OpCode::TraceTail,
            _ => return None,
        })
    }
}

/// Stable error codes — the machine-readable half of every error
/// response. `repr(u8)` values are the binary codec's bytes; the
/// strings are the JSON envelope's `"code"` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// The envelope itself is malformed (no `op`, not an object, …).
    BadRequest = 1,
    /// The `op` is not part of the protocol.
    UnknownOp = 2,
    /// A required field is missing or has the wrong shape.
    BadField = 3,
    /// The session name violates the naming rules.
    BadName = 4,
    /// The embedded game spec is invalid.
    BadSpec = 5,
    /// `create` on a name that already exists.
    SessionExists = 6,
    /// A session op addressed a name that was never created.
    UnknownSession = 7,
    /// The evaluation engine rejected the operation.
    Core = 8,
    /// Snapshot/restore I/O failed.
    Io = 9,
    /// The service is shutting down.
    Shutdown = 10,
    /// Unsupported or malformed version negotiation.
    BadProto = 11,
    /// The frame payload could not be decoded at all.
    BadFrame = 12,
    /// The write-ahead log failed verification (CRC or hash chain).
    ChainBroken = 13,
}

impl ErrorCode {
    /// The JSON `"code"` string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::BadField => "bad_field",
            ErrorCode::BadName => "bad_name",
            ErrorCode::BadSpec => "bad_spec",
            ErrorCode::SessionExists => "session_exists",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::Core => "core",
            ErrorCode::Io => "io",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::BadProto => "bad_proto",
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::ChainBroken => "chain_broken",
        }
    }

    /// Inverse of [`ErrorCode::as_str`]. (Not [`std::str::FromStr`] —
    /// unknown codes are an `Option`, not an error value.)
    #[must_use]
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "unknown_op" => ErrorCode::UnknownOp,
            "bad_field" => ErrorCode::BadField,
            "bad_name" => ErrorCode::BadName,
            "bad_spec" => ErrorCode::BadSpec,
            "session_exists" => ErrorCode::SessionExists,
            "unknown_session" => ErrorCode::UnknownSession,
            "core" => ErrorCode::Core,
            "io" => ErrorCode::Io,
            "shutdown" => ErrorCode::Shutdown,
            "bad_proto" => ErrorCode::BadProto,
            "bad_frame" => ErrorCode::BadFrame,
            "chain_broken" => ErrorCode::ChainBroken,
            _ => return None,
        })
    }

    /// Inverse of the `repr(u8)` value.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::UnknownOp,
            3 => ErrorCode::BadField,
            4 => ErrorCode::BadName,
            5 => ErrorCode::BadSpec,
            6 => ErrorCode::SessionExists,
            7 => ErrorCode::UnknownSession,
            8 => ErrorCode::Core,
            9 => ErrorCode::Io,
            10 => ErrorCode::Shutdown,
            11 => ErrorCode::BadProto,
            12 => ErrorCode::BadFrame,
            13 => ErrorCode::ChainBroken,
            _ => return None,
        })
    }
}

/// A typed protocol error: stable code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable classification.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error from a code and message.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.code.as_str())
    }
}

/// A decode failure, carrying whatever request `id` could still be
/// extracted so the error response can echo it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The request id, when the decoder got far enough to read it.
    pub id: Option<u64>,
    /// The failure itself.
    pub error: WireError,
}

/// The geometry of an embedded game spec — exactly one representation,
/// by construction (the old JSON layer had to *check* "exactly one of
/// `positions_1d` / `points_2d` / `matrix`"; the type makes the
/// ambiguity unrepresentable).
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// Points on a line, by coordinate.
    Line(Vec<f64>),
    /// Points in the Euclidean plane.
    Points2D(Vec<(f64, f64)>),
    /// An explicit distance matrix, row-major (squareness is validated
    /// when the game is built).
    Matrix(Vec<Vec<f64>>),
}

/// An embedded game spec: the payload of a `create` request.
#[derive(Debug, Clone, PartialEq)]
pub struct GameSpec {
    /// Link cost coefficient.
    pub alpha: f64,
    /// The metric the peers live in.
    pub geometry: Geometry,
    /// Initial directed links; empty means the empty profile.
    pub links: Vec<(usize, usize)>,
    /// Evaluation backend; dense is the default and the JSON codec
    /// omits it.
    pub mode: BackendMode,
}

/// The update rule of a `run_dynamics` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicsRule {
    /// First improving single-link change per activation.
    Better,
    /// Best response computed with the given method.
    Best(BestResponseMethod),
}

/// The engine knobs a `run_dynamics` request may override; `None`
/// means "engine default". Kept optional (rather than resolved) so a
/// request round-trips codecs without losing which fields were
/// explicit.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsSpec {
    /// Update rule.
    pub rule: DynamicsRule,
    /// Round cap.
    pub max_rounds: Option<usize>,
    /// Relative improvement threshold.
    pub tolerance: Option<f64>,
    /// Whether to detect state revisits.
    pub detect_cycles: Option<bool>,
}

/// The session-targeted operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOp {
    /// Create the session from an embedded game spec.
    Create(GameSpec),
    /// Ensure the session is resident (explicit cold start).
    Load,
    /// Apply one move.
    Apply {
        /// The move.
        mv: Move,
    },
    /// Apply a batch of moves as one cache transaction.
    ApplyBatch {
        /// The moves, in order.
        moves: Vec<Move>,
    },
    /// Best response of one peer against the frozen rest.
    BestResponse {
        /// The responding peer.
        peer: PeerId,
        /// UFL solve method.
        method: BestResponseMethod,
    },
    /// Largest unilateral improvement over all peers.
    NashGap {
        /// UFL solve method.
        method: BestResponseMethod,
    },
    /// Social cost of the current profile.
    SocialCost,
    /// Maximum stretch of the current profile.
    Stretch,
    /// Run sequential dynamics in-place on the session.
    RunDynamics(DynamicsSpec),
    /// Persist the session to its snapshot file, keeping it resident.
    Snapshot,
    /// Persist the session and drop it from memory.
    Evict,
    /// Read the session's WAL head (record count + chain head hash).
    WalHead,
    /// Re-scan the session's WAL, verifying every CRC and chain link.
    WalVerify,
}

impl SessionOp {
    /// The op's stable code.
    #[must_use]
    pub fn code(&self) -> OpCode {
        match self {
            SessionOp::Create(_) => OpCode::Create,
            SessionOp::Load => OpCode::Load,
            SessionOp::Apply { .. } => OpCode::Apply,
            SessionOp::ApplyBatch { .. } => OpCode::ApplyBatch,
            SessionOp::BestResponse { .. } => OpCode::BestResponse,
            SessionOp::NashGap { .. } => OpCode::NashGap,
            SessionOp::SocialCost => OpCode::SocialCost,
            SessionOp::Stretch => OpCode::Stretch,
            SessionOp::RunDynamics(_) => OpCode::RunDynamics,
            SessionOp::Snapshot => OpCode::Snapshot,
            SessionOp::Evict => OpCode::Evict,
            SessionOp::WalHead => OpCode::WalHead,
            SessionOp::WalVerify => OpCode::WalVerify,
        }
    }

    /// Whether the op changes the session's logical state (profile or
    /// existence) — what decides if a later spill must rewrite the file.
    #[must_use]
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            SessionOp::Create(_)
                | SessionOp::Apply { .. }
                | SessionOp::ApplyBatch { .. }
                | SessionOp::RunDynamics(_)
        )
    }

    /// Whether the op is recorded in the session's write-ahead log.
    /// Broader than [`SessionOp::is_mutating`]: `load` and `evict` do
    /// not dirty the snapshot, but they are lifecycle transitions the
    /// audit chain must witness — a verifier replaying the log has to
    /// see the same residency history the service acknowledged.
    #[must_use]
    pub fn is_wal_logged(&self) -> bool {
        matches!(
            self,
            SessionOp::Create(_)
                | SessionOp::Load
                | SessionOp::Apply { .. }
                | SessionOp::ApplyBatch { .. }
                | SessionOp::RunDynamics(_)
                | SessionOp::Evict
        )
    }
}

/// A session-targeted request: id, session name, operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// Echoed back in the response envelope.
    pub id: Option<u64>,
    /// The session the request addresses.
    pub session: String,
    /// What to do.
    pub op: SessionOp,
}

/// One request frame, fully typed.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation (first frame of a connection).
    Hello {
        /// Echoed back.
        id: Option<u64>,
        /// Requested protocol version ([`PROTO_JSON`] or
        /// [`PROTO_BINARY`]).
        proto: u8,
    },
    /// Liveness probe.
    Ping {
        /// Echoed back.
        id: Option<u64>,
    },
    /// Registry counters.
    Stats {
        /// Echoed back.
        id: Option<u64>,
    },
    /// Server-side metrics registry snapshot (requires the server to
    /// run with observability enabled).
    Metrics {
        /// Echoed back.
        id: Option<u64>,
    },
    /// The last completed request spans, phase breakdowns included.
    TraceTail {
        /// Echoed back.
        id: Option<u64>,
        /// Maximum number of spans to return.
        limit: usize,
        /// Only spans at least this slow (total ns); `None` = all.
        slow_ns: Option<u64>,
    },
    /// A session-targeted operation.
    Session(SessionRequest),
}

impl Request {
    /// The request id, wherever it lives.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Hello { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Metrics { id }
            | Request::TraceTail { id, .. } => *id,
            Request::Session(s) => s.id,
        }
    }

    /// The request's op code.
    #[must_use]
    pub fn code(&self) -> OpCode {
        match self {
            Request::Hello { .. } => OpCode::Hello,
            Request::Ping { .. } => OpCode::Ping,
            Request::Stats { .. } => OpCode::Stats,
            Request::Metrics { .. } => OpCode::Metrics,
            Request::TraceTail { .. } => OpCode::TraceTail,
            Request::Session(s) => s.op.code(),
        }
    }
}

/// The service counters of a `stats` result. Mirrors the registry's
/// counter struct field for field (the registry converts; the wire
/// crate stays independent of the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests executed to completion by the worker pool.
    pub requests_served: u64,
    /// Sessions built by `create` requests.
    pub sessions_created: u64,
    /// Spill-and-drop events (budget-driven plus explicit `evict`).
    pub sessions_evicted: u64,
    /// Sessions restored from spill files.
    pub sessions_restored: u64,
    /// High-water mark of any single session's request queue depth.
    pub queue_depth_hwm: usize,
    /// Sessions currently resident in memory.
    pub resident_sessions: usize,
    /// Bytes currently charged against the budget.
    pub resident_bytes: usize,
}

/// The span count a `trace_tail` request asks for when it names no
/// explicit `limit`.
pub const TRACE_TAIL_DEFAULT_LIMIT: usize = 32;

/// Number of span phases a `trace_tail` result reports per span —
/// fixed by the protocol, like the op-code table.
pub const TRACE_PHASES: usize = 8;

/// The phase names, in pipeline order, matching the `phases_ns` array
/// of a [`TraceSpanBody`].
pub const TRACE_PHASE_NAMES: [&str; TRACE_PHASES] = [
    "decode", "enqueue", "dequeue", "execute", "wal", "fsync", "encode", "flush",
];

/// One histogram's summary inside a `metrics` result (ns units).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricHistogramBody {
    /// Metric name.
    pub name: String,
    /// Values recorded.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min_ns: u64,
    /// Median (bucket upper bound).
    pub p50_ns: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_ns: u64,
    /// 99.9th percentile (bucket upper bound).
    pub p999_ns: u64,
    /// Largest recorded value (exact).
    pub max_ns: u64,
}

/// The body of a `metrics` result: every registered metric, sorted by
/// name within each kind, so identical registry state encodes to
/// identical bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsBody {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<MetricHistogramBody>,
}

/// One completed request span inside a `trace_tail` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanBody {
    /// Global request sequence number (assigned at decode).
    pub seq: u64,
    /// The op the request carried.
    pub op: String,
    /// Total span duration (decode to flush).
    pub total_ns: u64,
    /// Per-phase offsets from the decode stamp, in
    /// [`TRACE_PHASE_NAMES`] order; 0 = phase never entered.
    pub phases_ns: [u64; TRACE_PHASES],
}

/// The body of a `best_response` result.
#[derive(Debug, Clone, PartialEq)]
pub struct BestResponseBody {
    /// The responding peer.
    pub peer: usize,
    /// Its best-response link set.
    pub links: Vec<usize>,
    /// Cost under the response (may be `+∞`).
    pub cost: f64,
    /// Cost under the current strategy (may be `+∞`).
    pub current_cost: f64,
    /// Whether the solve was exact.
    pub exact: bool,
}

/// The body of a `social_cost` result (also embedded in dynamics
/// results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialCostBody {
    /// Total link cost.
    pub link_cost: f64,
    /// Total stretch cost (may be `+∞`).
    pub stretch_cost: f64,
    /// Their sum.
    pub total: f64,
}

/// The body of a `run_dynamics` result.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsBody {
    /// Why the run stopped.
    pub termination: Termination,
    /// Total activations executed.
    pub steps: usize,
    /// Accepted strategy changes.
    pub moves: usize,
    /// Social cost after the run.
    pub social_cost: SocialCostBody,
}

/// The typed result of a successful request — one variant per op.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultBody {
    /// `hello` accepted; the version both sides will speak.
    Hello {
        /// Negotiated protocol version.
        proto: u8,
    },
    /// `ping`.
    Pong,
    /// `stats`.
    Stats(ServiceStats),
    /// `create`.
    Created {
        /// Peer count.
        n: usize,
        /// Link cost coefficient.
        alpha: f64,
        /// Initial link count.
        links: usize,
        /// Evaluation backend.
        mode: BackendMode,
    },
    /// `load`.
    Loaded {
        /// Evaluation backend of the restored session.
        mode: BackendMode,
    },
    /// `apply`: the peer's links before the move.
    Applied {
        /// Prior out-links of the moving peer.
        previous: Vec<usize>,
    },
    /// `apply_batch`: per-move prior links.
    BatchApplied {
        /// Prior out-links, one row per move.
        previous: Vec<Vec<usize>>,
    },
    /// `best_response`.
    BestResponse(BestResponseBody),
    /// `nash_gap`.
    NashGap {
        /// Largest unilateral improvement (may be `+∞`).
        gap: f64,
    },
    /// `social_cost`.
    SocialCost(SocialCostBody),
    /// `stretch`.
    Stretch {
        /// Maximum pairwise stretch (may be `+∞`).
        max_stretch: f64,
    },
    /// `run_dynamics`.
    Dynamics(DynamicsBody),
    /// `snapshot`.
    Persisted,
    /// `evict`.
    Evicted,
    /// `wal_head`: the audit chain's current head.
    WalHead {
        /// Records appended to the chain since its genesis (compaction
        /// does not reset this — the chain spans truncations).
        records: u64,
        /// fnv1a hash chaining every record header back to genesis.
        head_hash: u64,
    },
    /// `wal_verify`: the log re-scanned clean end to end.
    WalVerified {
        /// Records the verifier walked.
        records: u64,
        /// Chain head after the walk (matches `wal_head`).
        head_hash: u64,
    },
    /// `metrics`: the server's metrics registry snapshot.
    Metrics(MetricsBody),
    /// `trace_tail`: the last completed request spans, oldest first.
    TraceTail {
        /// Spans, ascending by sequence number.
        spans: Vec<TraceSpanBody>,
    },
}

/// One response frame, fully typed.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id, echoed.
    pub id: Option<u64>,
    /// Result or error.
    pub outcome: Result<ResultBody, WireError>,
}

impl Response {
    /// A success response.
    #[must_use]
    pub fn ok(id: Option<u64>, body: ResultBody) -> Response {
        Response {
            id,
            outcome: Ok(body),
        }
    }

    /// An error response.
    #[must_use]
    pub fn err(id: Option<u64>, error: WireError) -> Response {
        Response {
            id,
            outcome: Err(error),
        }
    }
}

/// Validates a session name: 1–[`MAX_NAME_LEN`] chars, leading ASCII
/// alphanumeric, then alphanumerics plus `.`, `_`, `-`. Names become
/// spill file names, so anything that could escape the spill directory
/// is rejected at the door.
///
/// # Errors
///
/// Returns a [`ErrorCode::BadName`] error naming the violated
/// constraint.
pub fn validate_name(name: &str) -> Result<(), WireError> {
    let bad = |m: &str| Err(WireError::new(ErrorCode::BadName, m));
    if name.is_empty() || name.len() > MAX_NAME_LEN {
        return bad(&format!(
            "session name must be 1..={MAX_NAME_LEN} characters"
        ));
    }
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return bad("session name must not be empty");
    };
    if !first.is_ascii_alphanumeric() {
        return bad("session name must start with an ASCII alphanumeric");
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')) {
        return bad("session name may only contain ASCII alphanumerics, '.', '_', '-'");
    }
    Ok(())
}

/// The wire names of the best-response solve methods.
#[must_use]
pub fn method_name(m: BestResponseMethod) -> &'static str {
    match m {
        BestResponseMethod::Exact => "exact",
        BestResponseMethod::ExactEnumeration => "enumeration",
        BestResponseMethod::Greedy => "greedy",
        BestResponseMethod::LocalSearch => "local_search",
    }
}

/// Inverse of [`method_name`].
#[must_use]
pub fn method_from_name(s: &str) -> Option<BestResponseMethod> {
    Some(match s {
        "exact" => BestResponseMethod::Exact,
        "enumeration" => BestResponseMethod::ExactEnumeration,
        "greedy" => BestResponseMethod::Greedy,
        "local_search" => BestResponseMethod::LocalSearch,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_code_tables_are_inverse() {
        for op in [
            OpCode::Hello,
            OpCode::Ping,
            OpCode::Stats,
            OpCode::Create,
            OpCode::Load,
            OpCode::Apply,
            OpCode::ApplyBatch,
            OpCode::BestResponse,
            OpCode::NashGap,
            OpCode::SocialCost,
            OpCode::Stretch,
            OpCode::RunDynamics,
            OpCode::Snapshot,
            OpCode::Evict,
            OpCode::WalHead,
            OpCode::WalVerify,
            OpCode::Metrics,
            OpCode::TraceTail,
        ] {
            assert_eq!(OpCode::from_name(op.name()), Some(op));
            assert_eq!(OpCode::from_u8(op as u8), Some(op));
        }
        assert_eq!(OpCode::from_name("warp"), None);
        assert_eq!(OpCode::from_u8(0xFF), None);
    }

    #[test]
    fn error_code_tables_are_inverse() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownOp,
            ErrorCode::BadField,
            ErrorCode::BadName,
            ErrorCode::BadSpec,
            ErrorCode::SessionExists,
            ErrorCode::UnknownSession,
            ErrorCode::Core,
            ErrorCode::Io,
            ErrorCode::Shutdown,
            ErrorCode::BadProto,
            ErrorCode::BadFrame,
            ErrorCode::ChainBroken,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::parse("mystery"), None);
        assert_eq!(ErrorCode::from_u8(0), None);
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("s0012").is_ok());
        assert!(validate_name("a.b-c_D9").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name(".hidden").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name("a b").is_err());
        assert!(validate_name(&"x".repeat(65)).is_err());
        assert_eq!(validate_name("").unwrap_err().code, ErrorCode::BadName);
    }

    #[test]
    fn mutating_classification() {
        let mv = SessionOp::Apply {
            mv: Move::AddLink {
                from: PeerId::new(0),
                to: PeerId::new(1),
            },
        };
        assert!(mv.is_mutating());
        assert!(!SessionOp::SocialCost.is_mutating());
        assert!(!SessionOp::Evict.is_mutating());
        assert_eq!(mv.code(), OpCode::Apply);
    }

    #[test]
    fn wal_logged_classification() {
        // The WAL witnesses every lifecycle transition, not just the
        // snapshot-dirtying ops.
        assert!(SessionOp::Load.is_wal_logged());
        assert!(SessionOp::Evict.is_wal_logged());
        // Pure queries and the audit ops themselves stay out of the log.
        assert!(!SessionOp::SocialCost.is_wal_logged());
        assert!(!SessionOp::Snapshot.is_wal_logged());
        assert!(!SessionOp::WalHead.is_wal_logged());
        assert!(!SessionOp::WalVerify.is_wal_logged());
        assert_eq!(SessionOp::WalHead.code(), OpCode::WalHead);
        assert_eq!(SessionOp::WalVerify.code(), OpCode::WalVerify);
    }
}
