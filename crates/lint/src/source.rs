//! Loaded source files and the inline-waiver syntax.
//!
//! A waiver is a line comment of the form
//!
//! ```text
//! // sp-lint: allow(panic-path, reason = "poison recovery cannot panic")
//! ```
//!
//! placed either at the end of the offending line or on its own line
//! immediately above it. The `reason` is mandatory and non-empty — a
//! waiver without a justification is a `malformed-waiver` finding, and
//! a waiver that suppresses nothing is a `stale-waiver` finding (the
//! violation it excused has been fixed, so the waiver must go).
//!
//! The sibling marker form `// sp-lint: counters(StructName)` declares
//! a counter-coverage site; it is consumed by the `counter-coverage`
//! lint, not the waiver machinery.

use crate::lexer::{lex, Tok, TokKind};
use crate::tokens::{test_ranges, LineRange};

/// One parsed `sp-lint: allow(...)` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The lint id the waiver suppresses.
    pub lint: String,
    /// The mandatory human justification.
    pub reason: String,
    /// Line the waiver comment sits on.
    pub line: u32,
    /// Lines the waiver covers: its own line, plus — when the comment
    /// stands alone — every line of the following statement head (up to
    /// its top-level `;` or `{`).
    pub covers: Vec<u32>,
}

/// A source file prepared for linting: text, tokens, test spans, and
/// parsed waivers.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The raw source text.
    pub text: String,
    /// The lexed token stream (comments included).
    pub tokens: Vec<Tok>,
    /// Line spans of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<LineRange>,
    /// `true` for files that are test-context by location
    /// (`tests/`, `benches/`, `examples/` directories).
    pub is_test_context: bool,
    /// Parsed waivers.
    pub waivers: Vec<Waiver>,
    /// Lines of `sp-lint:` comments that parse as neither a waiver nor
    /// a marker, with a description of what is wrong.
    pub malformed: Vec<(u32, String)>,
}

impl SourceFile {
    /// Prepares `text` as the file at `path` (workspace-relative).
    #[must_use]
    pub fn from_text(path: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let ranges = test_ranges(&tokens);
        let is_test_context = path
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
        let (waivers, malformed) = parse_waivers(&tokens);
        SourceFile {
            path: path.to_owned(),
            text,
            tokens,
            test_ranges: ranges,
            is_test_context,
            waivers,
            malformed,
        }
    }

    /// `true` if `line` is test-only code (a test-context file or a
    /// line inside a `#[cfg(test)]`/`#[test]` item).
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_context || self.test_ranges.iter().any(|r| r.contains(line))
    }
}

/// The comment prefix shared by waivers and markers.
pub const MAGIC: &str = "sp-lint:";

/// Extracts the payload of an `sp-lint:` comment, if the comment is
/// one ("// sp-lint: allow(x, ...)" → "allow(x, ...)"). Doc comments
/// (`///`, `//!`) are prose — they talk *about* the syntax without
/// invoking it — so only plain `//` comments carry waivers or markers.
pub(crate) fn magic_payload(comment: &str) -> Option<&str> {
    let rest = comment.strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    let at = rest.find(MAGIC)?;
    Some(rest[at + MAGIC.len()..].trim())
}

/// Parses one `allow(<lint>, reason = "...")` payload.
fn parse_allow(payload: &str) -> Result<(String, String), String> {
    let inner = payload
        .strip_prefix("allow(")
        .and_then(|rest| rest.strip_suffix(')'))
        .ok_or("expected `allow(<lint>, reason = \"...\")`")?;
    let (lint, rest) = inner
        .split_once(',')
        .ok_or("waiver needs a `reason = \"...\"` after the lint id")?;
    let lint = lint.trim();
    if lint.is_empty() {
        return Err("waiver names no lint".to_owned());
    }
    let rest = rest.trim();
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or("waiver needs `reason = \"...\"`")?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or("waiver reason must be a quoted string")?;
    if reason.trim().is_empty() {
        return Err("waiver reason must not be empty".to_owned());
    }
    Ok((lint.to_owned(), reason.to_owned()))
}

/// Scans the token stream for waiver comments. Returns the parsed
/// waivers plus the malformed `sp-lint:` comments.
fn parse_waivers(tokens: &[Tok]) -> (Vec<Waiver>, Vec<(u32, String)>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for (k, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let Some(payload) = magic_payload(&t.text) else {
            continue;
        };
        if payload.starts_with("counters(") {
            continue; // coverage marker, handled by its lint
        }
        match parse_allow(payload) {
            Err(e) => malformed.push((t.line, e)),
            Ok((lint, reason)) => {
                let mut covers = vec![t.line];
                // A standalone comment (no code token earlier on its
                // line) also covers the statement that follows it — up
                // to the `;` or block-opening `{` at nesting depth
                // zero, so a chain rustfmt wrapped across lines stays
                // covered.
                let standalone = !tokens[..k]
                    .iter()
                    .rev()
                    .take_while(|p| p.line == t.line)
                    .any(|p| !p.is_comment());
                if standalone {
                    let mut depth = 0i32;
                    for p in tokens[k + 1..].iter().filter(|p| !p.is_comment()) {
                        covers.push(p.line);
                        match p.text.as_str() {
                            "(" | "[" => depth += 1,
                            "{" if depth > 0 => depth += 1,
                            "{" => break,
                            ")" | "]" | "}" => {
                                depth -= 1;
                                if depth < 0 {
                                    break;
                                }
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    covers.dedup();
                }
                waivers.push(Waiver {
                    lint,
                    reason,
                    line: t.line,
                    covers,
                });
            }
        }
    }
    (waivers, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let f = SourceFile::from_text(
            "crates/x/src/a.rs",
            "let x = m.lock(); // sp-lint: allow(lock-hygiene, reason = \"test double\")\n".into(),
        );
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].lint, "lock-hygiene");
        assert_eq!(f.waivers[0].covers, vec![1]);
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let src =
            "// sp-lint: allow(float-eps, reason = \"argmin\")\n// another comment\nif a < b {}\n";
        let f = SourceFile::from_text("crates/x/src/a.rs", src.into());
        assert_eq!(f.waivers[0].covers, vec![1, 3]);
    }

    #[test]
    fn standalone_waiver_covers_wrapped_statement() {
        let src = "// sp-lint: allow(nondeterministic-iteration, reason = \"sorted below\")\nlet entries: Vec<E> =\n    lock(shard).values().cloned().collect();\nnext_statement();\n";
        let f = SourceFile::from_text("crates/x/src/a.rs", src.into());
        assert_eq!(f.waivers[0].covers, vec![1, 2, 3]);
    }

    #[test]
    fn malformed_waivers_are_reported() {
        for bad in [
            "// sp-lint: allow(float-eps)\n",
            "// sp-lint: allow(float-eps, reason = \"\")\n",
            "// sp-lint: allow(, reason = \"x\")\n",
            "// sp-lint: allow(float-eps, reason = unquoted)\n",
            "// sp-lint: disallow(x)\n",
        ] {
            let f = SourceFile::from_text("crates/x/src/a.rs", bad.into());
            assert!(f.waivers.is_empty(), "{bad}");
            assert_eq!(f.malformed.len(), 1, "{bad}");
        }
    }

    #[test]
    fn counters_marker_is_not_a_waiver() {
        let f = SourceFile::from_text(
            "crates/x/src/a.rs",
            "// sp-lint: counters(SessionStats)\nfn merge() {}\n".into(),
        );
        assert!(f.waivers.is_empty());
        assert!(f.malformed.is_empty());
    }
}
