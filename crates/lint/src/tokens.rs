//! Brace-matched span utilities over the flat token stream — the
//! "token tree" layer the lints navigate with.
//!
//! Rather than building a nested tree, the helpers here answer the
//! structural questions the lints actually ask: *where does this brace
//! block end*, *which lines belong to `#[cfg(test)]` items*, *where is
//! `mod frame { ... }`*, and *which identifiers appear on a line*.

use crate::lexer::{Tok, TokKind};

/// An inclusive 1-based line range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRange {
    /// First line of the range.
    pub start: u32,
    /// Last line of the range.
    pub end: u32,
}

impl LineRange {
    /// `true` if `line` falls inside the range.
    #[must_use]
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// Index of the token closing the `{` group opened at `open` (which
/// must point at a `{` punct). Returns the last token index if the
/// group never closes (malformed input never panics the linter).
#[must_use]
pub fn match_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// `true` if the non-comment token at `idx` is an identifier equal to
/// `text`.
fn is_ident(tokens: &[Tok], idx: usize, text: &str) -> bool {
    tokens
        .get(idx)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

/// `true` if the token at `idx` is the punct `text`.
fn is_punct(tokens: &[Tok], idx: usize, text: &str) -> bool {
    tokens
        .get(idx)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Indices of non-comment tokens, in order — the view most structural
/// scans want (comments can sit between any two tokens).
#[must_use]
pub fn code_indices(tokens: &[Tok]) -> Vec<usize> {
    (0..tokens.len())
        .filter(|&k| !tokens[k].is_comment())
        .collect()
}

/// Line ranges of items annotated `#[cfg(test)]` or `#[test]` — the
/// spans every code lint exempts. The range runs from the attribute to
/// the closing brace of the next `{ ... }` group (or to the end of the
/// attribute's statement for brace-less items).
#[must_use]
pub fn test_ranges(tokens: &[Tok]) -> Vec<LineRange> {
    let code = code_indices(tokens);
    let mut out = Vec::new();
    let mut c = 0usize;
    while c < code.len() {
        let k = code[c];
        // `#[cfg(test)]`: # [ cfg ( test ) ] — `#[test]`: # [ test ]
        let is_cfg_test = is_punct(tokens, k, "#")
            && is_punct(tokens, code.get(c + 1).copied().unwrap_or(usize::MAX), "[")
            && ((is_ident(
                tokens,
                code.get(c + 2).copied().unwrap_or(usize::MAX),
                "cfg",
            ) && is_punct(tokens, code.get(c + 3).copied().unwrap_or(usize::MAX), "(")
                && is_ident(
                    tokens,
                    code.get(c + 4).copied().unwrap_or(usize::MAX),
                    "test",
                ))
                || (is_ident(
                    tokens,
                    code.get(c + 2).copied().unwrap_or(usize::MAX),
                    "test",
                ) && is_punct(tokens, code.get(c + 3).copied().unwrap_or(usize::MAX), "]")));
        if !is_cfg_test {
            c += 1;
            continue;
        }
        // Find the `{` opening the annotated item's body and match it.
        let mut open = None;
        for &j in &code[c..] {
            if is_punct(tokens, j, "{") {
                open = Some(j);
                break;
            }
            if is_punct(tokens, j, ";") {
                break; // brace-less item (e.g. a `use` under cfg(test))
            }
        }
        match open {
            Some(j) => {
                let close = match_brace(tokens, j);
                out.push(LineRange {
                    start: tokens[k].line,
                    end: tokens[close].line,
                });
                // Continue scanning after the item body: nested
                // attributes inside it are already covered.
                while c < code.len() && code[c] <= close {
                    c += 1;
                }
            }
            None => {
                out.push(LineRange {
                    start: tokens[k].line,
                    end: tokens[k].line,
                });
                c += 1;
            }
        }
    }
    out
}

/// The line range of `mod <name> { ... }`, if the file declares one
/// with a body.
#[must_use]
pub fn mod_range(tokens: &[Tok], name: &str) -> Option<LineRange> {
    let code = code_indices(tokens);
    for (c, &k) in code.iter().enumerate() {
        if is_ident(tokens, k, "mod")
            && code.get(c + 1).is_some_and(|&j| is_ident(tokens, j, name))
            && code.get(c + 2).is_some_and(|&j| is_punct(tokens, j, "{"))
        {
            let close = match_brace(tokens, code[c + 2]);
            return Some(LineRange {
                start: tokens[k].line,
                end: tokens[close].line,
            });
        }
    }
    None
}

/// All identifier texts on `line` (1-based), in order.
#[must_use]
pub fn idents_on_line(tokens: &[Tok], line: u32) -> Vec<&str> {
    tokens
        .iter()
        .filter(|t| t.line == line && t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn brace_matching_nested() {
        let toks = lex("fn f() { if x { y(); } z(); } fn g() {}");
        let open = toks
            .iter()
            .position(|t| t.text == "{")
            .expect("has a brace");
        let close = match_brace(&toks, open);
        assert_eq!(toks[close].text, "}");
        // The matched close is the one before `fn g`.
        assert!(toks[close + 1].text == "fn");
    }

    #[test]
    fn test_ranges_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let ranges = test_ranges(&lex(src));
        assert_eq!(ranges.len(), 1);
        assert!(ranges[0].contains(2));
        assert!(ranges[0].contains(4));
        assert!(!ranges[0].contains(1));
        assert!(!ranges[0].contains(6));
    }

    #[test]
    fn test_ranges_cover_test_fns() {
        let src = "#[test]\nfn probe() {\n    boom();\n}\nfn live() {}\n";
        let ranges = test_ranges(&lex(src));
        assert_eq!(ranges.len(), 1);
        assert!(ranges[0].contains(3));
        assert!(!ranges[0].contains(5));
    }

    #[test]
    fn mod_range_finds_named_module() {
        let src = "mod a {}\npub mod frame {\n    fn x() {}\n}\n";
        let r = mod_range(&lex(src), "frame").expect("found");
        assert_eq!((r.start, r.end), (2, 4));
        assert!(mod_range(&lex(src), "absent").is_none());
    }
}
