//! Lint scoping configuration.
//!
//! Every lint is scoped to the paths where its invariant is binding —
//! float-eps discipline matters in the numeric crates, panic-freedom on
//! the serve request path, and so on. [`Config::repo`] encodes this
//! workspace's layout; the lint crate's own tests build narrow configs
//! pointing at fixture files instead.

/// Path scopes and vocabularies for all lints.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files/dirs (prefix match) where `float-eps` applies.
    pub float_paths: Vec<String>,
    /// Lowercase substrings marking an identifier as a distance/cost
    /// value (`dist`, `cost`, `d_`, …).
    pub float_vocab: Vec<String>,
    /// Files/dirs where `nondeterministic-iteration` applies — the
    /// modules whose outputs feed responses, traces, or counters.
    pub nondet_paths: Vec<String>,
    /// Files where `panic-path` applies wholesale.
    pub panic_paths: Vec<String>,
    /// `(file, module)` pairs where `panic-path` applies to one inline
    /// module only (e.g. the frame codec inside `sp-json`).
    pub panic_modules: Vec<(String, String)>,
    /// Files/dirs where `lock-hygiene` applies.
    pub lock_paths: Vec<String>,
    /// Free functions that return a lock guard (poison-recovery
    /// wrappers like `lock_unpoisoned`), tracked alongside
    /// `.lock()`/`.read()`/`.write()`.
    pub lock_fns: Vec<String>,
    /// Qualified-name substrings treated as I/O or encode/decode work
    /// that must not run under a lock guard (`fs::write`, `.spill`, …).
    pub io_markers: Vec<String>,
    /// Files/dirs where `dense-alloc` applies — the crates that must
    /// stay runnable against the sparse backend without quadratic
    /// allocations.
    pub dense_alloc_paths: Vec<String>,
    /// Files inside `dense_alloc_paths` that *are* the dense backend —
    /// quadratic state is their job, so the lint skips them wholesale.
    pub dense_alloc_exempt: Vec<String>,
    /// Counter structs whose fields every `// sp-lint: counters(X)`
    /// site must mention in full.
    pub counter_structs: Vec<String>,
    /// Whether `forbid-unsafe` checks crate roots (disabled in fixture
    /// configs that have no crate layout).
    pub check_unsafe: bool,
    /// Files allowed to contain `unsafe` — the FFI shims whose call
    /// sites carry `SAFETY:` arguments. A crate root with an exempt
    /// file under the same `src/` may carry `#![deny(unsafe_code)]`
    /// instead of `forbid`, so the shim's module-level `allow` applies.
    pub unsafe_exempt: Vec<String>,
}

impl Config {
    /// The scoping for this repository.
    #[must_use]
    pub fn repo() -> Config {
        let s = |v: &[&str]| v.iter().map(|&x| x.to_owned()).collect();
        Config {
            float_paths: s(&[
                "crates/graph/src/",
                "crates/core/src/",
                "crates/dynamics/src/",
            ]),
            float_vocab: s(&["dist", "cost", "stretch", "gap", "d_"]),
            nondet_paths: s(&[
                "crates/dynamics/src/engine.rs",
                "crates/serve/src/registry.rs",
                "crates/serve/src/workload.rs",
                "crates/core/src/oracle_cache.rs",
            ]),
            panic_paths: s(&[
                "crates/serve/src/ops.rs",
                "crates/serve/src/server.rs",
                "crates/serve/src/wire.rs",
                "crates/serve/src/client.rs",
                "crates/serve/src/registry.rs",
                "crates/serve/src/snapshot.rs",
                "crates/serve/src/spec.rs",
                "crates/serve/src/reactor.rs",
                // The durability layer: recovery and the audit ops read
                // attacker-tamperable files, so corruption must surface
                // as typed errors, never a panic.
                "crates/serve/src/wal.rs",
                "crates/serve/src/config.rs",
                // The protocol layer: both codecs sit on every request
                // path, so a malformed frame must surface as a typed
                // `WireError`, never a panic.
                "crates/wire/src/",
                // The observability layer rides every hot path when
                // enabled, so a span stamp or metric update must never
                // be able to take a request down with it.
                "crates/obs/src/",
                "crates/serve/src/obs.rs",
            ]),
            panic_modules: vec![("crates/json/src/lib.rs".to_owned(), "frame".to_owned())],
            lock_paths: s(&["crates/serve/src/"]),
            lock_fns: s(&["lock_unpoisoned"]),
            io_markers: s(&[
                ".spill",
                "snapshot::save",
                "snapshot::load",
                "fs::write",
                "fs::read",
                "fs::rename",
                "fs::remove",
                "fs::create_dir",
                "File::",
                "write_frame",
                "read_frame",
                "TcpStream::",
                "session_to_value",
                "session_from_value",
            ]),
            dense_alloc_paths: s(&[
                "crates/core/src/",
                "crates/dynamics/src/",
                "crates/serve/src/",
            ]),
            dense_alloc_exempt: s(&[
                // The dense backend itself: the overlay distance matrix
                // and its residual tier are the quadratic state the
                // rest of the workspace is banned from re-growing.
                "crates/core/src/oracle_cache.rs",
            ]),
            counter_structs: s(&["SessionStats", "ObsMetricSet"]),
            check_unsafe: true,
            unsafe_exempt: s(&[
                // The epoll/eventfd FFI shim: the one module allowed to
                // speak to the kernel directly. Its crate root pins the
                // policy with `#![deny(unsafe_code)]` + a module-scoped
                // `allow`, which this exemption accepts in place of the
                // workspace-wide `forbid`.
                "crates/net/src/sys.rs",
            ]),
        }
    }

    /// An empty config — every per-path lint out of scope. Tests build
    /// on this.
    #[must_use]
    pub fn none() -> Config {
        Config {
            float_paths: Vec::new(),
            float_vocab: Vec::new(),
            nondet_paths: Vec::new(),
            panic_paths: Vec::new(),
            panic_modules: Vec::new(),
            lock_paths: Vec::new(),
            lock_fns: Vec::new(),
            io_markers: Vec::new(),
            dense_alloc_paths: Vec::new(),
            dense_alloc_exempt: Vec::new(),
            counter_structs: Vec::new(),
            check_unsafe: false,
            unsafe_exempt: Vec::new(),
        }
    }
}

/// `true` when `path` equals a scope entry or lives under a directory
/// entry (entries ending in `/` are prefixes).
#[must_use]
pub fn in_scope(path: &str, scope: &[String]) -> bool {
    scope
        .iter()
        .any(|s| path == s || (s.ends_with('/') && path.starts_with(s.as_str())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching() {
        let scope = vec![
            "crates/core/src/".to_owned(),
            "crates/x/src/a.rs".to_owned(),
        ];
        assert!(in_scope("crates/core/src/session.rs", &scope));
        assert!(in_scope("crates/x/src/a.rs", &scope));
        assert!(!in_scope("crates/x/src/b.rs", &scope));
        assert!(!in_scope("crates/core/tests/a.rs", &scope));
    }
}
