//! The `sp-lint` CLI.
//!
//! ```text
//! sp-lint --workspace [--deny-warnings] [--json <path>] [--root <dir>]
//! sp-lint --list
//! ```
//!
//! `--workspace` lints every `.rs` file under the repo root (excluding
//! `target/` and the lint fixtures). Exit status is non-zero when any
//! error-severity finding survives waivers, or any warning does under
//! `--deny-warnings`.

#![forbid(unsafe_code)]

use sp_lint::{lints, runner, walk, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: sp-lint --workspace [--deny-warnings] [--json <path>] [--root <dir>] | --list"
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut deny_warnings = false;
    let mut list = false;
    let mut json: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--deny-warnings" => deny_warnings = true,
            "--list" => list = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::from(2);
                }
            },
            _ => {
                eprintln!("unknown argument `{a}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for lint in lints::all() {
            println!(
                "{:28} {:7} {}",
                lint.id(),
                lint.severity().label(),
                lint.description()
            );
        }
        return ExitCode::SUCCESS;
    }
    if !workspace {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }

    let root = root
        .or_else(find_repo_root)
        .unwrap_or_else(|| PathBuf::from("."));
    let files = match walk::workspace_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "sp-lint: failed to read workspace under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let report = runner::run(&Config::repo(), &files);

    for f in &report.findings {
        println!("{}", f.render());
    }
    println!(
        "sp-lint: {} file(s), {} finding(s), {} waived",
        report.files,
        report.findings.len(),
        report.waived
    );
    if let Some(path) = json {
        let doc = report.to_value().to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("sp-lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if report.failed(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the workspace root (the
/// directory holding a `Cargo.toml` with a `[workspace]` table), so the
/// binary works from any crate directory.
fn find_repo_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
