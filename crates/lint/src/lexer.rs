//! A small Rust lexer producing a flat token stream with line and byte
//! positions.
//!
//! The lexer understands exactly as much Rust as the lints need to be
//! reliable on this workspace: identifiers (including raw identifiers),
//! lifetimes vs. character literals, all string literal flavours
//! (plain, raw, byte, byte-raw) with escapes, nested block comments,
//! numeric literals with underscores/exponents/suffixes, and maximal-
//! munch multi-character punctuation (`==`, `<=`, `::`, `..=`, `<<`,
//! …). It does **not** build an AST — the lint layer works on token
//! patterns plus brace-matched spans ([`crate::tokens`]).
//!
//! Comments are emitted as tokens (not skipped) because the waiver
//! syntax (`// sp-lint: allow(...)`) lives in comments.

/// The coarse classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal (`42`, `1.0e-9`, `0xff_u64`).
    Number,
    /// A string literal of any flavour (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, possibly multi-character (`==`, `::`, `{`).
    Punct,
    /// A `//` comment, including doc comments, up to (not including)
    /// the newline.
    LineComment,
    /// A `/* ... */` comment (possibly nested, possibly multi-line).
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character in the source.
    pub pos: usize,
}

impl Tok {
    /// `true` if this token is a comment (line or block).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character punctuation, longest first so maximal munch works by
/// trying in order.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src` into a flat token stream.
///
/// Unrecognised bytes (which should not occur in valid Rust) are
/// emitted as single-character [`TokKind::Punct`] tokens so the lexer
/// never stalls or panics on arbitrary input.
#[must_use]
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string(self.pos),
                b'\'' => self.lifetime_or_char(),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, kind: TokKind, start: usize, start_line: u32) {
        // An escape skip (`pos += 2`) at end-of-input can overshoot;
        // clamp so truncated input yields a truncated token, not a
        // panic.
        self.pos = self.pos.min(self.bytes.len());
        self.out.push(Tok {
            kind,
            text: self.src[start..self.pos].to_owned(),
            line: start_line,
            pos: start,
        });
    }

    fn bump_lines(&mut self, start: usize) {
        self.line += self.bytes[start..self.pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u32;
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.emit(TokKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.emit(TokKind::BlockComment, start, line);
        self.bump_lines(start);
    }

    /// Handles `r"..."`, `r#"..."#`, `br"..."`, `b"..."`, `b'x'`, and
    /// raw identifiers `r#ident`. Returns `false` (consuming nothing)
    /// when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.pos;
        let mut look = start + 1;
        // A leading `b` may be followed by `r` (raw byte string).
        if self.bytes[start] == b'b' && self.bytes.get(look) == Some(&b'r') {
            look += 1;
        }
        let has_r = self.bytes[start] == b'r' || look == start + 2;
        if !has_r {
            // b"..." or b'x' (or a plain identifier starting with b).
            return match self.bytes.get(look) {
                Some(&b'"') => {
                    self.pos = look;
                    self.string(start);
                    true
                }
                Some(&b'\'') => {
                    self.pos = look;
                    self.char_literal(start);
                    true
                }
                _ => false,
            };
        }
        let mut hashes = 0usize;
        while self.bytes.get(look) == Some(&b'#') {
            hashes += 1;
            look += 1;
        }
        match self.bytes.get(look) {
            Some(&b'"') => {
                // Raw string: ends at `"` followed by `hashes` hashes.
                let line = self.line;
                self.pos = look + 1;
                while self.pos < self.bytes.len() {
                    if self.bytes[self.pos] == b'"'
                        && self
                            .bytes
                            .get(self.pos + 1..self.pos + 1 + hashes)
                            .is_some_and(|tail| tail.iter().all(|&c| c == b'#'))
                    {
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                self.emit(TokKind::Str, start, line);
                self.bump_lines(start);
                true
            }
            Some(&c) if hashes > 0 && (c == b'_' || c.is_ascii_alphabetic()) => {
                // r#ident raw identifier.
                self.pos = look;
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos] == b'_'
                        || self.bytes[self.pos].is_ascii_alphanumeric())
                {
                    self.pos += 1;
                }
                self.emit(TokKind::Ident, start, self.line);
                true
            }
            _ => false,
        }
    }

    /// Consumes an escaped string whose opening `"` is at `self.pos`;
    /// the emitted token starts at `start` (covers a `b` prefix).
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.emit(TokKind::Str, start, line);
        self.bump_lines(start);
    }

    /// At a `'`: a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`).
    fn lifetime_or_char(&mut self) {
        let start = self.pos;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic()) && after != Some(b'\'');
        if is_lifetime {
            self.pos += 2;
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos] == b'_' || self.bytes[self.pos].is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.emit(TokKind::Lifetime, start, self.line);
        } else {
            self.char_literal(start);
        }
    }

    /// Consumes a char/byte literal starting at the `'` at `self.pos`.
    fn char_literal(&mut self, start: usize) {
        self.pos += 1; // opening quote
        if self.peek(0) == Some(b'\\') {
            self.pos += 2;
            // \u{...} escapes.
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
        } else {
            // One (possibly multi-byte UTF-8) character.
            self.pos += 1;
            while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                self.pos += 1;
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
        self.emit(TokKind::Char, start, self.line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos] == b'_' || self.bytes[self.pos].is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.emit(TokKind::Ident, start, self.line);
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        // Fraction: a '.' followed by a digit (not `..` or a method).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
            {
                self.pos += 1;
            }
        }
        // Exponent sign: `1.0e-9` leaves us right after `e`.
        if matches!(
            self.bytes.get(self.pos.wrapping_sub(1)),
            Some(&b'e' | &b'E')
        ) && matches!(self.peek(0), Some(b'+' | b'-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
            {
                self.pos += 1;
            }
        }
        self.emit(TokKind::Number, start, self.line);
    }

    fn punct(&mut self) {
        let start = self.pos;
        let rest = &self.src[self.pos..];
        for p in PUNCTS {
            if rest.starts_with(p) {
                self.pos += p.len();
                self.emit(TokKind::Punct, start, self.line);
                return;
            }
        }
        // Single character (any char, so non-ASCII bytes cannot stall).
        let ch_len = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.pos += ch_len;
        self.emit(TokKind::Punct, start, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        let toks = kinds("let x = a_1 + 2.5e-3;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "a_1".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Number, "2.5e-3".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn multi_char_punct_maximal_munch() {
        let toks = kinds("a <= b == c .. d ..= e << 2");
        let puncts: Vec<String> = toks
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(puncts, vec!["<=", "==", "..", "..=", "<<"]);
    }

    #[test]
    fn strings_and_escapes() {
        let toks = kinds(r#"f("a \" b", 'x', '\n', b"y")"#);
        let strs: Vec<(TokKind, String)> = toks
            .into_iter()
            .filter(|(k, _)| matches!(k, TokKind::Str | TokKind::Char))
            .collect();
        assert_eq!(strs[0], (TokKind::Str, r#""a \" b""#.into()));
        assert_eq!(strs[1], (TokKind::Char, "'x'".into()));
        assert_eq!(strs[2], (TokKind::Char, r"'\n'".into()));
        assert_eq!(strs[3].0, TokKind::Str);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r###"let s = r#"内部 "quoted" text"#; r#match"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quoted")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#match"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'a'"));
    }

    #[test]
    fn comments_nested_and_line_tracking() {
        let src = "a\n// line one\n/* outer /* inner */ still */\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].kind, TokKind::BlockComment);
        assert!(toks[2].text.contains("inner"));
        assert_eq!(toks[3].text, "b");
        assert_eq!(toks[3].line, 4);
    }

    #[test]
    fn comparison_inside_string_is_not_a_punct() {
        let toks = kinds(r#"let s = "a < b == c";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| !(*k == TokKind::Punct && (t == "<" || t == "=="))));
    }

    #[test]
    fn never_panics_on_arbitrary_bytes() {
        for src in ["'", "\"unterminated", "r#\"open", "/* open", "é¢€"] {
            let _ = lex(src);
        }
    }
}
