//! Diagnostics: findings, severities, and machine-readable output.

use sp_json::Value;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the run only under `--deny-warnings`.
    Warning,
    /// Always fails the run.
    Error,
}

impl Severity {
    /// The lowercase label used in human and JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic produced by a lint (or by the waiver machinery).
#[derive(Debug, Clone)]
pub struct Finding {
    /// The lint id (`float-eps`, `panic-path`, …).
    pub lint: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending code.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Renders the finding in the `path:line: severity[lint] message`
    /// style used by the CLI.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}[{}] {}",
            self.path,
            self.line,
            self.severity.label(),
            self.lint,
            self.message
        )
    }

    /// The finding as a JSON object for `--json` output.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("lint".to_owned(), Value::String(self.lint.to_owned())),
            (
                "severity".to_owned(),
                Value::String(self.severity.label().to_owned()),
            ),
            ("path".to_owned(), Value::String(self.path.clone())),
            ("line".to_owned(), Value::Number(f64::from(self.line))),
            ("message".to_owned(), Value::String(self.message.clone())),
        ])
    }
}

/// A whole run's outcome: surviving findings plus waiver accounting.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that were not waived, sorted by `(path, line, lint)`.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by waivers.
    pub waived: usize,
    /// Number of files linted.
    pub files: usize,
}

impl Report {
    /// `true` when the run should fail.
    #[must_use]
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.findings.iter().any(|f| {
            f.severity == Severity::Error || (deny_warnings && f.severity == Severity::Warning)
        })
    }

    /// The report as a JSON document for the CI artifact.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "findings".to_owned(),
                Value::Array(self.findings.iter().map(Finding::to_value).collect()),
            ),
            ("waived".to_owned(), Value::Number(self.waived as f64)),
            ("files".to_owned(), Value::Number(self.files as f64)),
        ])
    }
}
