//! `lock-hygiene`: I/O or encode/decode work under a live lock guard.
//!
//! The registry shards serialize all session access through per-shard
//! mutexes; holding one across file or network I/O (snapshot spill,
//! frame writes) stalls every session hashed to the shard. The lint
//! tracks `let guard = ….lock()/.read()/.write()` bindings to the end
//! of their enclosing block (or an explicit `drop(guard)`) and flags
//! lines inside that span whose call chain matches an I/O marker.
//! Deliberate hold-across-spill sites carry waivers arguing why.

use crate::config::{in_scope, Config};
use crate::diag::Severity;
use crate::lexer::TokKind;
use crate::lints::{emit, Lint};
use crate::source::SourceFile;
use crate::tokens::code_indices;

/// The `lock-hygiene` lint.
pub struct LockHygiene;

/// A tracked guard binding.
struct Guard {
    name: String,
    depth: usize,
    line: u32,
}

impl Lint for LockHygiene {
    fn id(&self) -> &'static str {
        "lock-hygiene"
    }

    fn description(&self) -> &'static str {
        "file/network I/O or snapshot encode/decode while a lock guard is live"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<crate::diag::Finding>) {
        if !in_scope(&file.path, &cfg.lock_paths) {
            return;
        }
        let code = code_indices(&file.tokens);
        let mut depth = 0usize;
        let mut guards: Vec<Guard> = Vec::new();
        // Joined call-chain text per line, for marker matching.
        let mut line_text: Vec<(u32, String)> = Vec::new();
        for &k in &code {
            let t = &file.tokens[k];
            match line_text.last_mut() {
                Some((line, s)) if *line == t.line => s.push_str(&t.text),
                _ => line_text.push((t.line, t.text.clone())),
            }
        }
        let mut flagged = std::collections::HashSet::new();
        for (c, &k) in code.iter().enumerate() {
            let t = &file.tokens[k];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => depth += 1,
                (TokKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                // `drop ( name )` releases early.
                (TokKind::Ident, "drop") => {
                    if let (Some(&o), Some(&n)) = (code.get(c + 1), code.get(c + 2)) {
                        if file.tokens[o].text == "(" {
                            let name = file.tokens[n].text.clone();
                            guards.retain(|g| g.name != name);
                        }
                    }
                }
                // `. lock|read|write ( )` or a configured guard helper
                // `lock_unpoisoned(..)` — walk back to the `let`
                // binding, if the statement has one.
                (TokKind::Ident, name) => {
                    let method_acquire = matches!(name, "lock" | "read" | "write")
                        && c >= 1
                        && file.tokens[code[c - 1]].text == "."
                        && code.get(c + 1).is_some_and(|&j| file.tokens[j].text == "(")
                        && code.get(c + 2).is_some_and(|&j| file.tokens[j].text == ")");
                    let helper_acquire = cfg.lock_fns.iter().any(|f| f == name)
                        && code.get(c + 1).is_some_and(|&j| file.tokens[j].text == "(");
                    if !(method_acquire || helper_acquire) || file.in_test(t.line) {
                        continue;
                    }
                    let mut b = c;
                    while b > 0 {
                        let p = &file.tokens[code[b - 1]];
                        if p.text == ";" || p.text == "{" || p.text == "}" {
                            break;
                        }
                        b -= 1;
                    }
                    if file.tokens[code[b]].text == "let" {
                        let mut n = b + 1;
                        if file.tokens[code[n]].text == "mut" {
                            n += 1;
                        }
                        if file.tokens[code[n]].kind == TokKind::Ident {
                            guards.push(Guard {
                                name: file.tokens[code[n]].text.clone(),
                                depth,
                                line: t.line,
                            });
                        }
                    }
                }
                _ => {}
            }
            if guards.is_empty() || file.in_test(t.line) || flagged.contains(&t.line) {
                continue;
            }
            let joined = line_text
                .iter()
                .find(|(line, _)| *line == t.line)
                .map_or("", |(_, s)| s.as_str());
            if let Some(marker) = cfg.io_markers.iter().find(|m| joined.contains(m.as_str())) {
                // A guard acquired on this same line has not started
                // covering anything yet.
                let Some(g) = guards.iter().find(|g| g.line < t.line) else {
                    continue;
                };
                flagged.insert(t.line);
                emit(
                    out,
                    self,
                    file,
                    t.line,
                    format!(
                        "I/O (`{marker}`) while lock guard `{}` (acquired line {}) is live; \
                         release the guard first or waive with a hold argument",
                        g.name, g.line
                    ),
                );
            }
        }
    }
}
