//! The lint registry.
//!
//! Each lint implements [`Lint`]; [`all`] returns the registry the
//! runner iterates. Per-file lints get every file one at a time,
//! workspace lints (counter coverage) see the whole file set at once.

use crate::config::Config;
use crate::diag::{Finding, Severity};
use crate::source::SourceFile;

mod counter_coverage;
mod dense_alloc;
mod float_eps;
mod forbid_unsafe;
mod lock_hygiene;
mod nondet_iter;
mod panic_path;

/// A single static-analysis check.
pub trait Lint {
    /// Stable kebab-case id used in waivers and output.
    fn id(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Default severity of this lint's findings.
    fn severity(&self) -> Severity;
    /// Per-file pass. Default: nothing.
    fn check_file(&self, _cfg: &Config, _file: &SourceFile, _out: &mut Vec<Finding>) {}
    /// Whole-workspace pass, run after all per-file passes. Default:
    /// nothing.
    fn check_workspace(&self, _cfg: &Config, _files: &[SourceFile], _out: &mut Vec<Finding>) {}
}

/// The full lint registry, in reporting order.
#[must_use]
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(float_eps::FloatEps),
        Box::new(dense_alloc::DenseAlloc),
        Box::new(nondet_iter::NondetIter),
        Box::new(panic_path::PanicPath),
        Box::new(lock_hygiene::LockHygiene),
        Box::new(counter_coverage::CounterCoverage),
        Box::new(forbid_unsafe::ForbidUnsafe),
    ]
}

/// Convenience for lints: push a finding.
pub(crate) fn emit(
    out: &mut Vec<Finding>,
    lint: &dyn Lint,
    file: &SourceFile,
    line: u32,
    message: String,
) {
    out.push(Finding {
        lint: lint.id(),
        severity: lint.severity(),
        path: file.path.clone(),
        line,
        message,
    });
}
