//! `dense-alloc`: quadratic (`n × n`) allocations outside the dense
//! backend.
//!
//! PR 7's whole point is that large instances run against the sparse
//! landmark backend with `O(n·(landmarks + window))` memory — one
//! stray `Vec::with_capacity(n * n)` on a shared code path silently
//! re-introduces the 80 GB matrix the backend exists to avoid. Inside
//! the scoped crates every allocation sized by a squared length
//! (`x * x` with the same identifier on both sides) and every
//! allocating `DistanceMatrix` constructor must either live in the
//! dense backend's own modules (the config exempt list) or carry a
//! waiver arguing why the site can never sit on the sparse scale path
//! (e.g. an explicitly documented escape hatch, or a structure that is
//! inherently pairwise).

use crate::config::{in_scope, Config};
use crate::diag::Severity;
use crate::lexer::{Tok, TokKind};
use crate::lints::{emit, Lint};
use crate::source::SourceFile;
use crate::tokens::code_indices;

/// The `dense-alloc` lint.
pub struct DenseAlloc;

/// `DistanceMatrix` constructors that allocate the full `n × n` table.
/// (`from_row_major` merely wraps a `Vec` the caller already built —
/// that allocation is caught at its `with_capacity`/`vec!` site.)
const MATRIX_CTORS: &[&str] = &["new_filled", "from_fn"];

/// Scans the argument list opened at `code[open_c]` (a `(` or `[`)
/// for a squared-length product — `x * x` with the same identifier on
/// both sides — and returns that identifier. The scan stops at the
/// matching close bracket.
fn squared_len_in_args(tokens: &[Tok], code: &[usize], open_c: usize) -> Option<String> {
    let mut depth = 0i32;
    for c in open_c..code.len() {
        let t = &tokens[code[c]];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth <= 0 {
                        return None;
                    }
                }
                _ => {}
            }
        }
        if t.kind == TokKind::Ident
            && code
                .get(c + 1)
                .is_some_and(|&j| tokens[j].kind == TokKind::Punct && tokens[j].text == "*")
            && code
                .get(c + 2)
                .is_some_and(|&j| tokens[j].kind == TokKind::Ident && tokens[j].text == t.text)
        {
            return Some(t.text.clone());
        }
    }
    None
}

impl Lint for DenseAlloc {
    fn id(&self) -> &'static str {
        "dense-alloc"
    }

    fn description(&self) -> &'static str {
        "n*n allocation (squared-length buffer or DistanceMatrix ctor) outside the dense backend"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<crate::diag::Finding>) {
        if !in_scope(&file.path, &cfg.dense_alloc_paths)
            || in_scope(&file.path, &cfg.dense_alloc_exempt)
        {
            return;
        }
        let code = code_indices(&file.tokens);
        for (c, &k) in code.iter().enumerate() {
            let t = &file.tokens[k];
            if t.kind != TokKind::Ident || file.in_test(t.line) {
                continue;
            }
            // `DistanceMatrix :: <ctor> (`
            if t.text == "DistanceMatrix"
                && code
                    .get(c + 1)
                    .is_some_and(|&j| file.tokens[j].text == "::")
                && code.get(c + 2).is_some_and(|&j| {
                    file.tokens[j].kind == TokKind::Ident
                        && MATRIX_CTORS.contains(&file.tokens[j].text.as_str())
                })
                && code.get(c + 3).is_some_and(|&j| file.tokens[j].text == "(")
            {
                emit(
                    out,
                    self,
                    file,
                    t.line,
                    format!(
                        "`DistanceMatrix::{}` allocates the full n*n table outside the dense \
                         backend; keep quadratic state behind DenseBackend or waive with the \
                         reason this site can never sit on the sparse scale path",
                        file.tokens[code[c + 2]].text
                    ),
                );
                continue;
            }
            // `with_capacity ( … x * x … )` / `vec ! [ … ; x * x ]`
            let open_c = if t.text == "with_capacity"
                && code.get(c + 1).is_some_and(|&j| file.tokens[j].text == "(")
            {
                Some(c + 1)
            } else if t.text == "vec"
                && code.get(c + 1).is_some_and(|&j| file.tokens[j].text == "!")
                && code.get(c + 2).is_some_and(|&j| file.tokens[j].text == "[")
            {
                Some(c + 2)
            } else {
                None
            };
            let Some(open_c) = open_c else { continue };
            if let Some(len) = squared_len_in_args(&file.tokens, &code, open_c) {
                emit(
                    out,
                    self,
                    file,
                    t.line,
                    format!(
                        "buffer sized `{len} * {len}` outside the dense backend; keep quadratic \
                         state behind DenseBackend or waive with the reason this site can never \
                         sit on the sparse scale path"
                    ),
                );
            }
        }
    }
}
