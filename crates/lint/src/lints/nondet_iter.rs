//! `nondeterministic-iteration`: hash-order traversal in
//! result-producing modules.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState`, so any
//! traversal that feeds a response, a trace, or an eviction decision
//! makes output differ across processes. In the scoped modules every
//! hash-container traversal must either go through a sorted view or be
//! waived with an argument for order-insensitivity (e.g. commutative
//! accumulation).

use crate::config::{in_scope, Config};
use crate::diag::Severity;
use crate::lexer::{Tok, TokKind};
use crate::lints::{emit, Lint};
use crate::source::SourceFile;
use crate::tokens::code_indices;
use std::collections::HashSet;

/// The `nondeterministic-iteration` lint.
pub struct NondetIter;

/// Methods that traverse in hash order whatever the receiver.
const MAP_ONLY_METHODS: &[&str] = &["keys", "values", "values_mut"];
/// Traversal methods flagged only on receivers known to be hash
/// containers (they also exist on `Vec` and friends).
const GENERIC_METHODS: &[&str] = &["iter", "iter_mut", "into_iter", "drain", "retain"];

/// Identifiers declared as `HashMap`/`HashSet` in this file — struct
/// fields (`name: HashMap<...>`) and locals
/// (`let [mut] name = HashMap::new()` / `::with_capacity(...)`).
fn hash_named(tokens: &[Tok], code: &[usize]) -> HashSet<String> {
    let mut named = HashSet::new();
    for (c, &k) in code.iter().enumerate() {
        let t = &tokens[k];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // `name : HashMap` (field or typed let).
        if c >= 2 && tokens[code[c - 1]].text == ":" && tokens[code[c - 2]].kind == TokKind::Ident {
            named.insert(tokens[code[c - 2]].text.clone());
        }
        // `let [mut] name = HashMap::new()` — scan back over `=`.
        if c >= 2 && tokens[code[c - 1]].text == "=" && tokens[code[c - 2]].kind == TokKind::Ident {
            named.insert(tokens[code[c - 2]].text.clone());
        }
    }
    named
}

impl Lint for NondetIter {
    fn id(&self) -> &'static str {
        "nondeterministic-iteration"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet hash-order traversal in result-producing modules"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<crate::diag::Finding>) {
        if !in_scope(&file.path, &cfg.nondet_paths) {
            return;
        }
        let code = code_indices(&file.tokens);
        let named = hash_named(&file.tokens, &code);
        for (c, &k) in code.iter().enumerate() {
            let t = &file.tokens[k];
            if t.kind != TokKind::Ident || file.in_test(t.line) {
                continue;
            }
            // `<recv> . <method> (` — method position.
            let is_method = c >= 2
                && file.tokens[code[c - 1]].text == "."
                && code.get(c + 1).is_some_and(|&j| file.tokens[j].text == "(");
            if !is_method {
                continue;
            }
            let recv = &file.tokens[code[c - 2]];
            let map_only = MAP_ONLY_METHODS.contains(&t.text.as_str());
            let generic = GENERIC_METHODS.contains(&t.text.as_str())
                && recv.kind == TokKind::Ident
                && named.contains(&recv.text);
            if map_only || generic {
                emit(
                    out,
                    self,
                    file,
                    t.line,
                    format!(
                        "hash-order traversal `.{}()` in a result-producing module; \
                         sort the view or waive with an order-insensitivity argument",
                        t.text
                    ),
                );
            }
        }
    }
}
