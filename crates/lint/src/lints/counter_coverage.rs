//! `counter-coverage`: every counter struct field reaches every
//! merge/persistence site.
//!
//! `SessionStats` grows a field almost every PR; forgetting to thread
//! the new counter through a merge or snapshot site silently zeroes it
//! in aggregated output and the bench gate only notices if the counter
//! is one it tracks. Sites annotate themselves with
//! `// sp-lint: counters(SessionStats)`; this lint cross-references
//! the struct's field list against the identifiers in each annotated
//! item body and flags (a) sites missing fields, (b) counter structs
//! with no site at all, and (c) markers naming unknown structs.

use crate::config::Config;
use crate::diag::Severity;
use crate::lexer::{Tok, TokKind};
use crate::lints::{emit, Lint};
use crate::source::{magic_payload, SourceFile, MAGIC};
use crate::tokens::{code_indices, match_brace};

/// The `counter-coverage` lint.
pub struct CounterCoverage;

/// Field names of `struct <name> { ... }` in `tokens`, if declared.
fn struct_fields(tokens: &[Tok], name: &str) -> Option<(u32, Vec<String>)> {
    let code = code_indices(tokens);
    for (c, &k) in code.iter().enumerate() {
        if tokens[k].kind != TokKind::Ident || tokens[k].text != "struct" {
            continue;
        }
        let named = code
            .get(c + 1)
            .is_some_and(|&j| tokens[j].kind == TokKind::Ident && tokens[j].text == name);
        let open = code.get(c + 2).copied();
        let (true, Some(open)) = (named, open.filter(|&j| tokens[j].text == "{")) else {
            continue;
        };
        let close = match_brace(tokens, open);
        let mut fields = Vec::new();
        let mut depth = 0i32;
        let body: Vec<usize> = code
            .iter()
            .copied()
            .filter(|&j| j > open && j < close)
            .collect();
        for (b, &j) in body.iter().enumerate() {
            match tokens[j].text.as_str() {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                // Nested generics close with a single `>>` token.
                "<<" => depth += 2,
                ">>" => depth -= 2,
                _ => {}
            }
            // A field is `ident :` at depth 0 of the body, not
            // preceded by `:` (which would make it a path segment).
            if depth == 0
                && tokens[j].kind == TokKind::Ident
                && body.get(b + 1).is_some_and(|&n| tokens[n].text == ":")
                && (b == 0 || tokens[body[b - 1]].text != ":")
            {
                fields.push(tokens[j].text.clone());
            }
        }
        return Some((tokens[k].line, fields));
    }
    None
}

/// `counters(<name>)` markers in a file: `(line, struct name, body
/// identifiers of the next item)`.
fn marker_sites(file: &SourceFile) -> Vec<(u32, String, Vec<String>)> {
    let mut sites = Vec::new();
    for (k, t) in file.tokens.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let Some(payload) = magic_payload(&t.text) else {
            continue;
        };
        let Some(name) = payload
            .strip_prefix("counters(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            continue;
        };
        // Cover the next item's `{ ... }` body.
        let idents = file.tokens[k + 1..]
            .iter()
            .position(|p| p.text == "{" && !p.is_comment())
            .map(|rel| {
                let open = k + 1 + rel;
                let close = match_brace(&file.tokens, open);
                file.tokens[open..=close]
                    .iter()
                    .filter(|p| p.kind == TokKind::Ident)
                    .map(|p| p.text.clone())
                    .collect()
            })
            .unwrap_or_default();
        sites.push((t.line, name.trim().to_owned(), idents));
    }
    sites
}

impl Lint for CounterCoverage {
    fn id(&self) -> &'static str {
        "counter-coverage"
    }

    fn description(&self) -> &'static str {
        "counter-struct fields missing from annotated merge/persistence sites"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check_workspace(
        &self,
        cfg: &Config,
        files: &[SourceFile],
        out: &mut Vec<crate::diag::Finding>,
    ) {
        for struct_name in &cfg.counter_structs {
            let decl = files
                .iter()
                .find_map(|f| struct_fields(&f.tokens, struct_name).map(|d| (f, d)));
            let Some((decl_file, (decl_line, fields))) = decl else {
                continue;
            };
            let mut site_count = 0usize;
            for f in files {
                for (line, name, idents) in marker_sites(f) {
                    if name != *struct_name {
                        continue;
                    }
                    site_count += 1;
                    let missing: Vec<&String> = fields
                        .iter()
                        .filter(|field| !idents.iter().any(|i| i == *field))
                        .collect();
                    if !missing.is_empty() {
                        let list: Vec<&str> = missing.iter().map(|s| s.as_str()).collect();
                        emit(
                            out,
                            self,
                            f,
                            line,
                            format!(
                                "counters({struct_name}) site does not mention field(s): {}",
                                list.join(", ")
                            ),
                        );
                    }
                }
            }
            if site_count == 0 {
                emit(
                    out,
                    self,
                    decl_file,
                    decl_line,
                    format!(
                        "counter struct `{struct_name}` has no `{MAGIC} counters(..)` \
                         merge/persistence site in the workspace"
                    ),
                );
            }
        }
        // Markers naming structs that are not configured counter
        // structs are almost certainly typos.
        for f in files {
            for (line, name, _) in marker_sites(f) {
                if !cfg.counter_structs.contains(&name) {
                    emit(
                        out,
                        self,
                        f,
                        line,
                        format!("counters({name}) names an unknown counter struct"),
                    );
                }
            }
        }
    }
}
