//! `float-eps`: raw comparisons on distance/cost floats.
//!
//! The paper's best-response and path-length logic is numerically
//! fragile: a raw `==` / `<` / `<=` between two accumulated `f64`
//! distances silently flips near ties and destroys determinism across
//! summation orders. Inside the numeric crates every comparison whose
//! operands look like distances or costs must go through an eps helper
//! (relative tolerance, like `EDGE_ON_PATH_EPS`) or carry a waiver
//! explaining why exactness is sound (e.g. values copied, not
//! recomputed).

use crate::config::{in_scope, Config};
use crate::diag::Severity;
use crate::lexer::TokKind;
use crate::lints::{emit, Lint};
use crate::source::SourceFile;
use crate::tokens::idents_on_line;

/// The `float-eps` lint.
pub struct FloatEps;

/// Comparison puncts that are always comparisons regardless of
/// spacing.
const ALWAYS_CMP: &[&str] = &["==", "!=", "<=", ">="];
/// Puncts that are comparisons only when space-separated (unspaced
/// `<` / `>` are generics in rustfmt output).
const SPACED_CMP: &[&str] = &["<", ">"];

/// `true` when the identifier names a distance/cost-like value.
/// Vocabulary entries ending in `_` match as prefixes only (`d_` must
/// not fire on `old_links`); others match as substrings.
fn is_float_vocab(ident: &str, vocab: &[String]) -> bool {
    let lc = ident.to_ascii_lowercase();
    vocab.iter().any(|v| {
        if v.ends_with('_') {
            lc.starts_with(v.as_str())
        } else {
            lc.contains(v.as_str())
        }
    })
}

/// `true` when the identifier names a tolerance, exempting the line.
fn is_eps_vocab(ident: &str) -> bool {
    let lc = ident.to_ascii_lowercase();
    lc == "eps"
        || lc == "tol"
        || lc.starts_with("eps")
        || lc.ends_with("_eps")
        || lc.contains("toleran")
}

impl Lint for FloatEps {
    fn id(&self) -> &'static str {
        "float-eps"
    }

    fn description(&self) -> &'static str {
        "raw ==/</<= comparison on distance/cost floats outside eps helpers"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<crate::diag::Finding>) {
        if !in_scope(&file.path, &cfg.float_paths) {
            return;
        }
        let bytes = file.text.as_bytes();
        let mut last_line = 0u32;
        for t in &file.tokens {
            if t.kind != TokKind::Punct || t.line == last_line || file.in_test(t.line) {
                continue;
            }
            let spaced_cmp = SPACED_CMP.contains(&t.text.as_str())
                && t.pos > 0
                && bytes.get(t.pos - 1) == Some(&b' ')
                && bytes.get(t.pos + t.text.len()) == Some(&b' ');
            if !(ALWAYS_CMP.contains(&t.text.as_str()) || spaced_cmp) {
                continue;
            }
            let idents = idents_on_line(&file.tokens, t.line);
            if idents.iter().any(|i| is_eps_vocab(i)) {
                continue;
            }
            let Some(hit) = idents.iter().find(|i| is_float_vocab(i, &cfg.float_vocab)) else {
                continue;
            };
            last_line = t.line;
            emit(
                out,
                self,
                file,
                t.line,
                format!(
                    "raw `{}` comparison involving `{hit}`; route it through an \
                     eps helper or waive with the reason exactness is sound",
                    t.text
                ),
            );
        }
    }
}
