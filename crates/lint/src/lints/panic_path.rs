//! `panic-path`: panicking constructs on the serve request path.
//!
//! A panic inside the request path kills a worker thread and strands
//! the session's FIFO; remote input must never be able to trigger one.
//! In scoped files (and the frame codec module of `sp-json`) this lint
//! flags `.unwrap()`, `.expect("...")`, panicking macros, and slice
//! indexing. Test code is exempt; deliberate startup-time panics carry
//! waivers.

use crate::config::{in_scope, Config};
use crate::diag::Severity;
use crate::lexer::TokKind;
use crate::lints::{emit, Lint};
use crate::source::SourceFile;
use crate::tokens::{code_indices, mod_range, LineRange};

/// The `panic-path` lint.
pub struct PanicPath;

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = ..`, `for x in [..]`, `return [..]`).
const KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "const", "static",
];

/// Macros that panic when reached.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

impl Lint for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/slice-indexing on the serve request path"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<crate::diag::Finding>) {
        let whole_file = in_scope(&file.path, &cfg.panic_paths);
        let module: Option<LineRange> = cfg
            .panic_modules
            .iter()
            .find(|(p, _)| *p == file.path)
            .and_then(|(_, m)| mod_range(&file.tokens, m));
        if !whole_file && module.is_none() {
            return;
        }
        let in_range = |line: u32| whole_file || module.is_some_and(|r| r.contains(line));
        let code = code_indices(&file.tokens);
        for (c, &k) in code.iter().enumerate() {
            let t = &file.tokens[k];
            if !in_range(t.line) || file.in_test(t.line) {
                continue;
            }
            let next = |n: usize| code.get(c + n).map(|&j| &file.tokens[j]);
            let prev = |n: usize| c.checked_sub(n).map(|i| &file.tokens[code[i]]);
            if t.kind == TokKind::Ident {
                let after_dot = prev(1).is_some_and(|p| p.text == ".");
                // `.unwrap()`
                if t.text == "unwrap"
                    && after_dot
                    && next(1).is_some_and(|p| p.text == "(")
                    && next(2).is_some_and(|p| p.text == ")")
                {
                    emit(
                        out,
                        self,
                        file,
                        t.line,
                        "`.unwrap()` on the request path; return a typed error instead".to_owned(),
                    );
                }
                // `.expect("...")` — string-literal arg only, so parser
                // methods like `self.expect(b'"')` stay clean.
                if t.text == "expect"
                    && after_dot
                    && next(1).is_some_and(|p| p.text == "(")
                    && next(2).is_some_and(|p| p.kind == TokKind::Str)
                {
                    emit(
                        out,
                        self,
                        file,
                        t.line,
                        "`.expect(..)` on the request path; return a typed error instead"
                            .to_owned(),
                    );
                }
                // `panic!(` and friends.
                if PANIC_MACROS.contains(&t.text.as_str()) && next(1).is_some_and(|p| p.text == "!")
                {
                    emit(
                        out,
                        self,
                        file,
                        t.line,
                        format!(
                            "`{}!` on the request path; return a typed error instead",
                            t.text
                        ),
                    );
                }
            }
            // Slice/array indexing: `expr[` where expr ends in an
            // identifier or a closing bracket. Attribute `#[...]`,
            // array literals, slice patterns, and types are preceded by
            // other puncts and stay clean.
            if t.kind == TokKind::Punct
                && t.text == "["
                && prev(1).is_some_and(|p| {
                    p.line == t.line
                        && ((p.kind == TokKind::Ident && !KEYWORDS.contains(&p.text.as_str()))
                            || p.text == ")"
                            || p.text == "]")
                })
            {
                emit(
                    out,
                    self,
                    file,
                    t.line,
                    "slice indexing on the request path can panic; use `get`/slice \
                     patterns or waive with a bounds argument"
                        .to_owned(),
                );
            }
        }
    }
}
