//! `forbid-unsafe`: every crate root carries `#![forbid(unsafe_code)]`
//! and no file uses `unsafe` at all.
//!
//! The workspace is pure safe Rust by policy — the simulation is CPU
//! arithmetic over adjacency arrays and needs no `unsafe`. The
//! attribute makes the policy compiler-enforced per crate; this lint
//! keeps the attribute from silently disappearing and catches `unsafe`
//! tokens in any linted file (belt and braces for files added before
//! their crate root regains the attribute).
//!
//! One carve-out: files in [`Config::unsafe_exempt`] are FFI shims
//! (the `sp-net` epoll bindings) whose `unsafe` blocks carry `SAFETY:`
//! arguments. The token scan skips them, and a crate root with an
//! exempt sibling under the same `src/` may downgrade the attribute to
//! `#![deny(unsafe_code)]` — the strongest form that still lets the
//! shim's module-level `#![allow(unsafe_code)]` take effect.

use crate::config::{in_scope, Config};
use crate::diag::Severity;
use crate::lexer::TokKind;
use crate::lints::{emit, Lint};
use crate::source::SourceFile;
use crate::tokens::code_indices;

/// The `forbid-unsafe` lint.
pub struct ForbidUnsafe;

/// `true` for paths that are crate roots or binary roots.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || ((path.contains("/src/bin/") || path.starts_with("src/bin/")) && path.ends_with(".rs"))
}

impl Lint for ForbidUnsafe {
    fn id(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn description(&self) -> &'static str {
        "crate roots must carry #![forbid(unsafe_code)]; no file may use `unsafe`"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<crate::diag::Finding>) {
        if !cfg.check_unsafe {
            return;
        }
        if !in_scope(&file.path, &cfg.unsafe_exempt) {
            for t in &file.tokens {
                if t.kind == TokKind::Ident && t.text == "unsafe" {
                    emit(
                        out,
                        self,
                        file,
                        t.line,
                        "`unsafe` is banned workspace-wide".to_owned(),
                    );
                }
            }
        }
        if !is_crate_root(&file.path) {
            return;
        }
        // A root whose crate hosts an exempt FFI shim (same `src/`
        // directory) may use `deny` so the shim's `allow` can apply.
        let dir_of = |p: &str| p.rsplit_once('/').map_or("", |(d, _)| d).to_owned();
        let root_dir = dir_of(&file.path);
        let deny_ok = !root_dir.is_empty()
            && cfg
                .unsafe_exempt
                .iter()
                .any(|e| dir_of(e) == root_dir || e.starts_with(&format!("{root_dir}/")));
        // `# ! [ forbid ( unsafe_code ) ]` (or `deny` where exempted)
        let code = code_indices(&file.tokens);
        let has = code.windows(7).any(|w| {
            let txt = |i: usize| file.tokens[w[i]].text.as_str();
            txt(0) == "#"
                && txt(1) == "!"
                && txt(2) == "["
                && (txt(3) == "forbid" || (deny_ok && txt(3) == "deny"))
                && txt(4) == "("
                && txt(5) == "unsafe_code"
                && txt(6) == ")"
        });
        if !has {
            emit(
                out,
                self,
                file,
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            );
        }
    }
}
