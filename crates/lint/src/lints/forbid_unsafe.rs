//! `forbid-unsafe`: every crate root carries `#![forbid(unsafe_code)]`
//! and no file uses `unsafe` at all.
//!
//! The workspace is pure safe Rust by policy — the simulation is CPU
//! arithmetic over adjacency arrays and needs no `unsafe`. The
//! attribute makes the policy compiler-enforced per crate; this lint
//! keeps the attribute from silently disappearing and catches `unsafe`
//! tokens in any linted file (belt and braces for files added before
//! their crate root regains the attribute).

use crate::config::Config;
use crate::diag::Severity;
use crate::lexer::TokKind;
use crate::lints::{emit, Lint};
use crate::source::SourceFile;
use crate::tokens::code_indices;

/// The `forbid-unsafe` lint.
pub struct ForbidUnsafe;

/// `true` for paths that are crate roots or binary roots.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || ((path.contains("/src/bin/") || path.starts_with("src/bin/")) && path.ends_with(".rs"))
}

impl Lint for ForbidUnsafe {
    fn id(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn description(&self) -> &'static str {
        "crate roots must carry #![forbid(unsafe_code)]; no file may use `unsafe`"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check_file(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<crate::diag::Finding>) {
        if !cfg.check_unsafe {
            return;
        }
        for t in &file.tokens {
            if t.kind == TokKind::Ident && t.text == "unsafe" {
                emit(
                    out,
                    self,
                    file,
                    t.line,
                    "`unsafe` is banned workspace-wide".to_owned(),
                );
            }
        }
        if !is_crate_root(&file.path) {
            return;
        }
        // `# ! [ forbid ( unsafe_code ) ]`
        let code = code_indices(&file.tokens);
        let has = code.windows(7).any(|w| {
            let txt = |i: usize| file.tokens[w[i]].text.as_str();
            txt(0) == "#"
                && txt(1) == "!"
                && txt(2) == "["
                && txt(3) == "forbid"
                && txt(4) == "("
                && txt(5) == "unsafe_code"
                && txt(6) == ")"
        });
        if !has {
            emit(
                out,
                self,
                file,
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            );
        }
    }
}
