//! Orchestration: run every lint, apply waivers, lint the waivers.
//!
//! Waiver application is itself checked both ways: an `sp-lint:`
//! comment that does not parse is a `malformed-waiver` error, and a
//! well-formed waiver that suppresses nothing is a `stale-waiver`
//! warning — fixed code must shed its excuses.

use crate::config::Config;
use crate::diag::{Finding, Report, Severity};
use crate::lints;
use crate::source::SourceFile;

/// Lint id for unparseable `sp-lint:` comments.
pub const MALFORMED_WAIVER: &str = "malformed-waiver";
/// Lint id for waivers that no longer suppress anything.
pub const STALE_WAIVER: &str = "stale-waiver";

/// All lint ids a waiver may name.
#[must_use]
pub fn known_lints() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = lints::all().iter().map(|l| l.id()).collect();
    ids.push(MALFORMED_WAIVER);
    ids.push(STALE_WAIVER);
    ids
}

/// Runs the full registry over `files` and returns the report.
#[must_use]
pub fn run(cfg: &Config, files: &[SourceFile]) -> Report {
    let registry = lints::all();
    let mut raw: Vec<Finding> = Vec::new();
    for file in files {
        for lint in &registry {
            lint.check_file(cfg, file, &mut raw);
        }
    }
    for lint in &registry {
        lint.check_workspace(cfg, files, &mut raw);
    }

    let known = known_lints();
    let mut findings: Vec<Finding> = Vec::new();
    let mut waived = 0usize;
    for file in files {
        let mut used = vec![false; file.waivers.len()];
        for f in raw.iter().filter(|f| f.path == file.path) {
            let hit = file
                .waivers
                .iter()
                .position(|w| w.lint == f.lint && w.covers.contains(&f.line));
            match hit {
                Some(i) => {
                    used[i] = true;
                    waived += 1;
                }
                None => findings.push(f.clone()),
            }
        }
        for (w, &u) in file.waivers.iter().zip(&used) {
            if !known.contains(&w.lint.as_str()) {
                findings.push(Finding {
                    lint: MALFORMED_WAIVER,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: w.line,
                    message: format!("waiver names unknown lint `{}`", w.lint),
                });
            } else if !u {
                findings.push(Finding {
                    lint: STALE_WAIVER,
                    severity: Severity::Warning,
                    path: file.path.clone(),
                    line: w.line,
                    message: format!(
                        "waiver for `{}` suppresses nothing; the violation it excused is \
                         gone, so remove the waiver",
                        w.lint
                    ),
                });
            }
        }
        for (line, what) in &file.malformed {
            findings.push(Finding {
                lint: MALFORMED_WAIVER,
                severity: Severity::Error,
                path: file.path.clone(),
                line: *line,
                message: what.clone(),
            });
        }
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    Report {
        findings,
        waived,
        files: files.len(),
    }
}
