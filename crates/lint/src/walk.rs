//! Workspace discovery: every `.rs` file under the repo root, minus
//! build output and the lint crate's violation fixtures.

use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Loads every workspace `.rs` file under `root` as a [`SourceFile`]
/// with forward-slash paths relative to `root`, sorted by path.
///
/// # Errors
///
/// Propagates filesystem errors from the directory walk or file reads.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    collect(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::from_text(&rel, text));
    }
    Ok(files)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
