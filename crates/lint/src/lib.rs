//! `sp-lint` — first-party static analysis for the selfish-peers
//! workspace.
//!
//! Generic tooling cannot check the invariants this codebase actually
//! lives or dies by: eps-disciplined float comparisons in the
//! best-response oracles, hash-order-free traversal in everything that
//! feeds a trace or a response, panic-free handling of remote input on
//! the serve path, no I/O under registry shard locks, and counter
//! structs whose every field reaches every merge site. `sp-lint` checks
//! exactly those, over a flat token stream from a small in-crate Rust
//! lexer — no syn, no rustc internals, no external dependencies.
//!
//! The pipeline: [`walk`] loads workspace files, [`source`] parses
//! inline waivers, [`lints`] hosts the registry, and [`runner`] applies
//! waivers (reporting stale and malformed ones as findings in their own
//! right) and produces the [`diag::Report`] the CLI renders as text or
//! JSON.
//!
//! Waiver syntax, on the offending line or the line above it:
//!
//! ```text
//! // sp-lint: allow(<lint-id>, reason = "<why this is sound>")
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod runner;
pub mod source;
pub mod tokens;
pub mod walk;

pub use config::Config;
pub use diag::{Finding, Report, Severity};
pub use runner::run;
pub use source::SourceFile;
