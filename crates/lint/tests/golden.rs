//! Golden-diagnostic tests: every fixture violation is detected at
//! exactly the expected `(path, line, lint)` position, waivers suppress
//! exactly the violations they cover, and the waiver machinery reports
//! stale and malformed waivers.
//!
//! The fixtures live under `tests/fixtures/` (which the workspace
//! walker skips) and are linted under synthetic `crates/fix/src/...`
//! paths so the path-scoped lints see them as production code.

#![forbid(unsafe_code)]

use sp_lint::{run, Config, Severity, SourceFile};
use std::fs;
use std::path::Path;

/// Loads a fixture file, presenting it as living at `as_path`.
fn fixture(name: &str, as_path: &str) -> SourceFile {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = fs::read_to_string(dir.join(name)).expect("fixture readable");
    SourceFile::from_text(as_path, text)
}

/// A config scoping each lint to its own fixture file.
fn fix_config() -> Config {
    let s = |v: &[&str]| v.iter().map(|&x| x.to_owned()).collect();
    let mut cfg = Config::none();
    cfg.float_paths = s(&["crates/fix/src/float_eps.rs"]);
    cfg.float_vocab = s(&["dist", "cost", "d_"]);
    cfg.dense_alloc_paths = s(&["crates/fix/src/dense_alloc.rs"]);
    cfg.nondet_paths = s(&["crates/fix/src/nondet_iter.rs"]);
    cfg.panic_paths = s(&["crates/fix/src/panic_path.rs"]);
    cfg.lock_paths = s(&["crates/fix/src/lock_hygiene.rs"]);
    cfg.lock_fns = s(&["lock_unpoisoned"]);
    cfg.io_markers = s(&["fs::write", "write_frame"]);
    cfg.counter_structs = s(&["FixStats", "OrphanStats"]);
    cfg.check_unsafe = true;
    cfg
}

fn all_fixtures() -> Vec<SourceFile> {
    vec![
        fixture("dense_alloc.rs", "crates/fix/src/dense_alloc.rs"),
        fixture("float_eps.rs", "crates/fix/src/float_eps.rs"),
        fixture("nondet_iter.rs", "crates/fix/src/nondet_iter.rs"),
        fixture("panic_path.rs", "crates/fix/src/panic_path.rs"),
        fixture("lock_hygiene.rs", "crates/fix/src/lock_hygiene.rs"),
        fixture("counter_coverage.rs", "crates/fix/src/counter_coverage.rs"),
        fixture("unsafe_crate/src/lib.rs", "crates/fix_unsafe/src/lib.rs"),
    ]
}

#[test]
fn golden_positions() {
    let report = run(&fix_config(), &all_fixtures());
    let got: Vec<(&str, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.lint))
        .collect();
    let expect = vec![
        ("crates/fix/src/counter_coverage.rs", 12, "counter-coverage"),
        ("crates/fix/src/counter_coverage.rs", 19, "counter-coverage"),
        ("crates/fix/src/counter_coverage.rs", 25, "counter-coverage"),
        ("crates/fix/src/dense_alloc.rs", 4, "dense-alloc"),
        ("crates/fix/src/dense_alloc.rs", 10, "dense-alloc"),
        ("crates/fix/src/dense_alloc.rs", 14, "dense-alloc"),
        ("crates/fix/src/float_eps.rs", 4, "float-eps"),
        ("crates/fix/src/float_eps.rs", 5, "float-eps"),
        ("crates/fix/src/float_eps.rs", 7, "float-eps"),
        ("crates/fix/src/lock_hygiene.rs", 8, "lock-hygiene"),
        ("crates/fix/src/lock_hygiene.rs", 20, "lock-hygiene"),
        (
            "crates/fix/src/nondet_iter.rs",
            6,
            "nondeterministic-iteration",
        ),
        (
            "crates/fix/src/nondet_iter.rs",
            13,
            "nondeterministic-iteration",
        ),
        ("crates/fix/src/panic_path.rs", 4, "panic-path"),
        ("crates/fix/src/panic_path.rs", 5, "panic-path"),
        ("crates/fix/src/panic_path.rs", 7, "panic-path"),
        ("crates/fix/src/panic_path.rs", 9, "panic-path"),
        ("crates/fix_unsafe/src/lib.rs", 1, "forbid-unsafe"),
        ("crates/fix_unsafe/src/lib.rs", 4, "forbid-unsafe"),
    ];
    assert_eq!(got, expect);
    // One waived violation per fixture that carries a live waiver.
    assert_eq!(report.waived, 5);
    assert_eq!(report.files, 7);
}

#[test]
fn severities_and_deny_warnings() {
    let report = run(&fix_config(), &all_fixtures());
    for f in &report.findings {
        let want = match f.lint {
            "panic-path" | "lock-hygiene" | "forbid-unsafe" => Severity::Error,
            "float-eps" | "dense-alloc" | "nondeterministic-iteration" | "counter-coverage" => {
                Severity::Warning
            }
            other => panic!("unexpected lint {other}"),
        };
        assert_eq!(f.severity, want, "{}", f.render());
    }
    // Errors fail the run regardless of --deny-warnings.
    assert!(report.failed(false));

    // A warnings-only report fails only under --deny-warnings.
    let warn_only = run(
        &fix_config(),
        &[fixture("float_eps.rs", "crates/fix/src/float_eps.rs")],
    );
    assert!(warn_only
        .findings
        .iter()
        .all(|f| f.severity == Severity::Warning));
    assert!(!warn_only.failed(false));
    assert!(warn_only.failed(true));
}

#[test]
fn waiver_staleness_and_malformedness() {
    let files = vec![fixture("waivers.rs", "crates/fix/src/waivers.rs")];
    let report = run(&fix_config(), &files);
    let got: Vec<(u32, &str, Severity)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.lint, f.severity))
        .collect();
    let expect = vec![
        (3, "stale-waiver", Severity::Warning),
        (8, "malformed-waiver", Severity::Error),
        (13, "malformed-waiver", Severity::Error),
    ];
    assert_eq!(got, expect);
    assert_eq!(report.waived, 0);
}

#[test]
fn waivers_do_not_leak_across_lints() {
    // A waiver for lint A does not suppress lint B on the same line:
    // a float comparison under a panic-path waiver still fires.
    let src = "// sp-lint: allow(panic-path, reason = \"not a panic site\")\n\
               let close = dist_a == dist_b;\n";
    let file = SourceFile::from_text("crates/fix/src/float_eps.rs", src.to_owned());
    let report = run(&fix_config(), &[file]);
    let lints: Vec<&str> = report.findings.iter().map(|f| f.lint).collect();
    assert!(lints.contains(&"float-eps"), "{lints:?}");
    assert!(lints.contains(&"stale-waiver"), "{lints:?}");
}
