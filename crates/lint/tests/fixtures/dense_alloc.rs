//! Fixture: quadratic allocations outside the dense backend.

pub fn quadratic_buffer(n: usize) -> Vec<f64> {
    let mut flat = Vec::with_capacity(n * n);
    flat.push(0.0);
    flat
}

pub fn quadratic_macro(len: usize) -> Vec<u32> {
    vec![0; len * len]
}

pub fn matrix_ctor(n: usize) -> sp_graph::DistanceMatrix {
    DistanceMatrix::new_filled(n, f64::INFINITY)
}

pub fn linear_is_fine(n: usize, window: usize) -> Vec<f64> {
    // Mixed products are rectangular working sets, not the matrix.
    let mut near = Vec::with_capacity(n * window);
    near.push(1.0);
    near
}

pub fn waived_escape_hatch(n: usize) -> Vec<f64> {
    // sp-lint: allow(dense-alloc, reason = "documented escape hatch, never on the sparse scale path")
    vec![f64::INFINITY; n * n]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let n = 4;
        let _ = vec![0.0f64; n * n];
    }
}
