//! Fixture: I/O while a lock guard is live.

use std::fs;
use std::sync::Mutex;

pub fn spill_under_lock(state: &Mutex<Vec<u8>>) {
    let guard = state.lock().unwrap();
    fs::write("/tmp/spill", &*guard).ok();
}

pub fn spill_after_release(state: &Mutex<Vec<u8>>) {
    let guard = state.lock().unwrap();
    let bytes = guard.clone();
    drop(guard);
    fs::write("/tmp/spill", &bytes).ok();
}

pub fn helper_acquired(state: &Mutex<Vec<u8>>) {
    let guard = lock_unpoisoned(state);
    write_frame(&guard);
}

pub fn waived_hold(state: &Mutex<Vec<u8>>) {
    let guard = lock_unpoisoned(state);
    // sp-lint: allow(lock-hygiene, reason = "deliberate hold: single-writer spill")
    fs::write("/tmp/spill", &*guard).ok();
}
