//! Fixture: raw float comparisons on distance/cost values.

pub fn check(dist_a: f64, dist_b: f64, eps: f64) -> bool {
    let exact = dist_a == dist_b;
    let lt = dist_a < dist_b;
    let within = (dist_a - dist_b).abs() <= eps;
    let nonneg = cost_of(2) >= 0.0;
    exact || lt || within || nonneg
}

fn cost_of(x: u32) -> f64 {
    f64::from(x)
}

pub fn waived(d_src: f64, d_dst: f64) -> bool {
    // sp-lint: allow(float-eps, reason = "values copied, not recomputed")
    d_src == d_dst
}
