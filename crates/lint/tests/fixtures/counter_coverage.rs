//! Fixture: counter-coverage sites.

/// Counters the merge site below must mention in full.
pub struct FixStats {
    pub hits: u64,
    pub misses: u64,
    pub spills: u64,
}

impl FixStats {
    /// Merge that forgets `spills`.
    // sp-lint: counters(FixStats)
    pub fn merge(&mut self, other: &FixStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

// sp-lint: counters(NoSuchStats)
pub fn snapshot(s: &FixStats) -> (u64, u64) {
    (s.hits, s.misses)
}

/// A counter struct with no merge/persistence site at all.
pub struct OrphanStats {
    pub drops: u64,
}
