//! Fixture: hash-order traversal in a result-producing module.

use std::collections::{HashMap, HashSet};

pub fn names(table: &HashMap<String, u64>) -> Vec<String> {
    let mut out: Vec<String> = table.keys().cloned().collect();
    out.sort();
    out
}

pub fn drain_all(mut seen: HashSet<u64>) -> usize {
    let mut n = 0;
    for v in seen.drain() {
        n += usize::from(v > 0);
    }
    n
}

pub fn vec_iter(items: &[u64]) -> u64 {
    items.iter().sum()
}

pub fn waived_sum(table: &HashMap<String, u64>) -> u64 {
    // sp-lint: allow(nondeterministic-iteration, reason = "addition is commutative")
    table.values().sum()
}
