//! Fixture: stale and malformed waivers.

// sp-lint: allow(panic-path, reason = "nothing here panics anymore")
pub fn fine() -> u64 {
    7
}

// sp-lint: allow(float-eps)
pub fn also_fine() -> u64 {
    9
}

// sp-lint: allow(no-such-lint, reason = "typo in the lint id")
pub fn still_fine() -> u64 {
    11
}
