//! Fixture: panicking constructs on the request path.

pub fn handle(input: &str, row: &[u64]) -> u64 {
    let n: u64 = input.parse().unwrap();
    let first = *row.first().expect("row must not be empty");
    if n > 9 {
        panic!("out of range");
    }
    row[0] + first + n
}

pub fn typed(input: &str) -> Result<u64, String> {
    input.parse().map_err(|_| "bad number".to_owned())
}

pub fn waived_get(row: &[u64]) -> u64 {
    // sp-lint: allow(panic-path, reason = "index 0 guarded by caller invariant")
    row[0]
}
