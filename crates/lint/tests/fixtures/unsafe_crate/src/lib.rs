//! Fixture: a crate root missing the forbid attribute, using `unsafe`.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
