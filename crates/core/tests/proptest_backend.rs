//! Property tests pinning the sparse backend to the dense reference.
//!
//! Three contracts hold for every instance, not just the benchmarked
//! ones:
//!
//! 1. **Certified bounds bracket.** A sparse session's
//!    [`GameSession::dist_bounds`] always satisfies
//!    `lower ≤ exact ≤ upper`, where "exact" is the dense session's
//!    answer on the same game and profile.
//! 2. **Small instances collapse to exact.** When the metric window
//!    already covers every peer (`window + 1 ≥ n`), a sparse session's
//!    [`GameSession::local_response`] decides **bit-identically** to the
//!    dense [`GameSession::first_improving_move`].
//! 3. **Lazy oracle is invisible.** With
//!    [`GameSession::set_lazy_oracle`] on, `first_improving_move` stays
//!    bit-identical to the eager scan across arbitrary interleaved
//!    applies, at every `α` regime the generator draws.

use proptest::prelude::*;
use rand::prelude::*;
use sp_core::{Game, GameSession, Move, PeerId, SparseParams, StrategyProfile};

/// CI's determinism matrix sets `SP_TEST_PARALLELISM` to pin every
/// worker-count parameter these tests would otherwise draw, so the whole
/// suite runs at forced parallelism extremes (1 and 8).
fn forced_parallelism() -> Option<usize> {
    std::env::var("SP_TEST_PARALLELISM").ok()?.parse().ok()
}

/// A random 1-D game (strictly increasing positions, so both the line
/// store and the dense store accept it), a random profile, and a random
/// move script.
#[allow(clippy::type_complexity)]
fn arb_line_instance(
) -> impl Strategy<Value = (Vec<f64>, f64, StrategyProfile, Vec<(u8, usize, usize)>)> {
    (3usize..=9, 0u64..10_000, 0.1f64..8.0).prop_flat_map(|(n, seed, alpha)| {
        let max_links = (n * (n - 1)).min(18);
        (
            proptest::collection::vec((0..n, 0..n), 0..=max_links),
            proptest::collection::vec((0u8..2, 0..n, 0..n), 0..10),
        )
            .prop_map(move |(pairs, script)| {
                let mut rng = StdRng::seed_from_u64(seed);
                // Strictly positive increments keep positions distinct,
                // which `Game::from_line_positions` requires.
                let mut at = 0.0;
                let positions: Vec<f64> = (0..n)
                    .map(|_| {
                        at += rng.random_range(0.1..5.0);
                        at
                    })
                    .collect();
                let links: Vec<(usize, usize)> =
                    pairs.into_iter().filter(|&(u, v)| u != v).collect();
                let profile = StrategyProfile::from_links(n, &links).unwrap();
                (positions, alpha, profile, script)
            })
    })
}

/// Sparse tuning small enough to exercise the certified-bound paths
/// (tight ball caps, few landmarks) on the tiny generated games.
fn arb_params() -> impl Strategy<Value = SparseParams> {
    (1usize..=4, 2usize..=12, 1usize..=8).prop_map(|(landmarks, ball_cap, window)| SparseParams {
        landmarks,
        ball_cap,
        window,
        ..SparseParams::default()
    })
}

/// Replays one scripted `(kind, from, to)` triple on both sessions.
fn play_both(a: &mut GameSession, b: &mut GameSession, kind: u8, from: usize, to: usize) {
    if from == to {
        return;
    }
    let mv = match kind {
        0 => Move::AddLink {
            from: PeerId::new(from),
            to: PeerId::new(to),
        },
        _ => Move::RemoveLink {
            from: PeerId::new(from),
            to: PeerId::new(to),
        },
    };
    a.apply(mv.clone())
        .expect("script only uses in-bounds peers");
    b.apply(mv).expect("script only uses in-bounds peers");
}

/// Asserts two optional best responses are bit-identical.
fn assert_same_response(
    label: &str,
    peer: usize,
    got: Option<&sp_core::BestResponse>,
    want: Option<&sp_core::BestResponse>,
) -> Result<(), TestCaseError> {
    match (got, want) {
        (None, None) => Ok(()),
        (Some(g), Some(w)) => {
            prop_assert_eq!(
                g.links.iter().collect::<Vec<_>>(),
                w.links.iter().collect::<Vec<_>>(),
                "{} peer {}: links diverged",
                label,
                peer
            );
            prop_assert_eq!(
                g.cost.to_bits(),
                w.cost.to_bits(),
                "{} peer {}: cost bits diverged ({} vs {})",
                label,
                peer,
                g.cost,
                w.cost
            );
            prop_assert_eq!(
                g.current_cost.to_bits(),
                w.current_cost.to_bits(),
                "{} peer {}: current_cost bits diverged",
                label,
                peer
            );
            Ok(())
        }
        (g, w) => {
            prop_assert!(
                false,
                "{} peer {}: one side moved, the other did not (got {:?}, want {:?})",
                label,
                peer,
                g.map(|r| r.improvement()),
                w.map(|r| r.improvement())
            );
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse `dist_bounds` brackets the dense exact distance for every
    /// ordered pair, after an arbitrary shared move script.
    #[test]
    fn sparse_bounds_bracket_the_exact_distance(
        (positions, alpha, profile, script) in arb_line_instance(),
        params in arb_params(),
    ) {
        let n = positions.len();
        let sparse_game = Game::from_line_positions(positions.clone(), alpha).unwrap();
        let dense_game = Game::from_line_positions(positions, alpha).unwrap();
        let mut sparse =
            GameSession::new_sparse_with(sparse_game, profile.clone(), params).unwrap();
        let mut dense = GameSession::new(dense_game, profile).unwrap();
        for &(kind, from, to) in &script {
            play_both(&mut sparse, &mut dense, kind, from, to);
        }
        // The bounds are certified in real arithmetic; the float
        // evaluations of the two sides accumulate independent rounding,
        // so the bracket is checked up to a relative epsilon.
        fn leq(a: f64, b: f64) -> bool {
            (a.is_infinite() && b.is_infinite()) || a - b <= 1e-9 * (1.0 + b.abs())
        }
        for u in 0..n {
            for v in 0..n {
                let (lo, hi) = sparse.dist_bounds(PeerId::new(u), PeerId::new(v)).unwrap();
                let (exact, exact_hi) = dense.dist_bounds(PeerId::new(u), PeerId::new(v)).unwrap();
                prop_assert_eq!(exact.to_bits(), exact_hi.to_bits(), "dense must answer exactly");
                prop_assert!(
                    leq(lo, exact),
                    "pair ({},{}) lower bound {} above exact {}",
                    u, v, lo, exact
                );
                prop_assert!(
                    leq(exact, hi),
                    "pair ({},{}) exact {} above upper bound {}",
                    u, v, exact, hi
                );
            }
        }
    }

    /// With the window covering every peer, the sparse local response is
    /// bit-identical to the dense exact first improving move — for every
    /// peer, after every prefix of the move script.
    #[test]
    fn full_window_sparse_decides_bit_identically(
        (positions, alpha, profile, script) in arb_line_instance(),
        workers in 1usize..=4,
    ) {
        let n = positions.len();
        let params = SparseParams {
            window: n, // window + 1 ≥ n: the exact-scan route
            ..SparseParams::default()
        };
        let sparse_game = Game::from_line_positions(positions.clone(), alpha).unwrap();
        let dense_game = Game::from_line_positions(positions, alpha).unwrap();
        let mut sparse =
            GameSession::new_sparse_with(sparse_game, profile.clone(), params).unwrap();
        let mut dense = GameSession::new(dense_game, profile).unwrap();
        let workers = forced_parallelism().unwrap_or(workers);
        sparse.set_parallelism(Some(workers));
        dense.set_parallelism(Some(workers));
        for step in 0..=script.len() {
            for peer in 0..n {
                let s = sparse.local_response(PeerId::new(peer), 1e-9).unwrap();
                let d = dense.first_improving_move(PeerId::new(peer), 1e-9).unwrap();
                assert_same_response("full-window", peer, s.as_ref(), d.as_ref())?;
            }
            if let Some(&(kind, from, to)) = script.get(step) {
                play_both(&mut sparse, &mut dense, kind, from, to);
            }
        }
    }

    /// The lazy certified-bound oracle returns the same move, bitwise,
    /// as the eager scan — across interleaved applies and the full `α`
    /// range the generator draws.
    #[test]
    fn lazy_oracle_is_bit_identical_to_eager(
        (positions, alpha, profile, script) in arb_line_instance(),
    ) {
        let n = positions.len();
        let game_a = Game::from_line_positions(positions.clone(), alpha).unwrap();
        let game_b = Game::from_line_positions(positions, alpha).unwrap();
        let mut lazy = GameSession::new(game_a, profile.clone()).unwrap();
        lazy.set_lazy_oracle(true);
        let mut eager = GameSession::new(game_b, profile).unwrap();
        for step in 0..=script.len() {
            for peer in 0..n {
                let l = lazy.first_improving_move(PeerId::new(peer), 1e-9).unwrap();
                let e = eager.first_improving_move(PeerId::new(peer), 1e-9).unwrap();
                assert_same_response("lazy-oracle", peer, l.as_ref(), e.as_ref())?;
            }
            if let Some(&(kind, from, to)) = script.get(step) {
                play_both(&mut lazy, &mut eager, kind, from, to);
            }
        }
        // The lazy path must actually have run its certified scan.
        prop_assert!(lazy.stats().oracle_builds > 0);
    }
}
