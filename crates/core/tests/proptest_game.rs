//! Property tests for the game's cost and best-response machinery.
//!
//! Key invariants:
//! * `C(G) = Σ_i c_i(s)` — social cost is the sum of individual costs.
//! * Every stretch is `>= 1` (overlay paths cannot beat the metric).
//! * The exact best response via the facility-location reduction never
//!   loses to brute-force subset enumeration over actual deviated-profile
//!   costs (they must be *equal*).
//! * In a certified Nash equilibrium, max stretch `<= α + 1`
//!   (Theorem 4.1's key step).

use proptest::prelude::*;
use rand::prelude::*;
use sp_core::{
    all_peer_costs, best_response, is_nash, peer_cost, social_cost, stretch_matrix,
    BestResponseMethod, Game, LinkSet, NashTest, PeerId, StrategyProfile,
};
use sp_metric::generators;

/// A random small game plus a random profile on it.
fn arb_game_and_profile() -> impl Strategy<Value = (Game, StrategyProfile)> {
    (2usize..=7, 0u64..10_000, 0.1f64..8.0).prop_flat_map(|(n, seed, alpha)| {
        let max_links = n * (n - 1);
        proptest::collection::vec((0..n, 0..n), 0..=max_links.min(20)).prop_map(move |pairs| {
            let mut rng = StdRng::seed_from_u64(seed);
            let space = generators::uniform_square(n, 10.0, &mut rng);
            let game = Game::from_space(&space, alpha).unwrap();
            let links: Vec<(usize, usize)> = pairs.into_iter().filter(|&(u, v)| u != v).collect();
            let profile = StrategyProfile::from_links(n, &links).unwrap();
            (game, profile)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn social_cost_equals_sum_of_peer_costs((game, profile) in arb_game_and_profile()) {
        let sc = social_cost(&game, &profile).unwrap();
        let sum: f64 = all_peer_costs(&game, &profile).unwrap().iter().sum();
        if sc.total().is_finite() {
            prop_assert!((sc.total() - sum).abs() <= 1e-6 * (1.0 + sum.abs()));
        } else {
            prop_assert!(sum.is_infinite());
        }
    }

    #[test]
    fn stretches_are_at_least_one((game, profile) in arb_game_and_profile()) {
        let s = stretch_matrix(&game, &profile).unwrap();
        for i in 0..game.n() {
            for j in 0..game.n() {
                prop_assert!(s[(i, j)] >= 1.0 - 1e-9, "stretch ({},{}) = {}", i, j, s[(i,j)]);
            }
        }
    }

    #[test]
    fn exact_best_response_matches_brute_force((game, profile) in arb_game_and_profile()) {
        // Brute force: try every subset of candidate links, evaluating the
        // true deviated-profile cost.
        let n = game.n();
        for i in 0..n.min(3) { // limit peers for speed
            let peer = PeerId::new(i);
            let br = best_response(&game, &profile, peer, BestResponseMethod::Exact).unwrap();
            let candidates: Vec<usize> = (0..n).filter(|&v| v != i).collect();
            let mut brute = f64::INFINITY;
            for mask in 0u32..(1u32 << candidates.len()) {
                let links: LinkSet = candidates
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| mask & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let dev = profile.with_strategy(peer, links).unwrap();
                let c = peer_cost(&game, &dev, peer).unwrap();
                if c < brute {
                    brute = c;
                }
            }
            if brute.is_finite() {
                prop_assert!((br.cost - brute).abs() <= 1e-6 * (1.0 + brute.abs()),
                    "peer {}: reduction={} brute={}", i, br.cost, brute);
            } else {
                prop_assert!(br.cost.is_infinite());
            }
        }
    }

    #[test]
    fn enumeration_and_bb_responses_agree((game, profile) in arb_game_and_profile()) {
        for i in 0..game.n() {
            let peer = PeerId::new(i);
            let a = best_response(&game, &profile, peer, BestResponseMethod::Exact).unwrap();
            let b = best_response(&game, &profile, peer, BestResponseMethod::ExactEnumeration)
                .unwrap();
            prop_assert!((a.cost - b.cost).abs() <= 1e-9 * (1.0 + a.cost.abs())
                || (a.cost.is_infinite() && b.cost.is_infinite()));
        }
    }

    #[test]
    fn nash_equilibria_satisfy_theorem_4_1((game, profile) in arb_game_and_profile()) {
        // Wherever the profile happens to be a certified equilibrium, the
        // paper's stretch bound must hold.
        let report = is_nash(&game, &profile, &NashTest::exact()).unwrap();
        if report.is_nash() {
            let s = stretch_matrix(&game, &profile).unwrap();
            let alpha = game.alpha();
            for i in 0..game.n() {
                for j in 0..game.n() {
                    prop_assert!(
                        s[(i, j)] <= alpha + 1.0 + 1e-6,
                        "equilibrium stretch ({},{}) = {} exceeds α+1 = {}",
                        i, j, s[(i, j)], alpha + 1.0
                    );
                }
            }
        }
    }

    #[test]
    fn deviations_reported_by_is_nash_are_real((game, profile) in arb_game_and_profile()) {
        let report = is_nash(&game, &profile, &NashTest::exact()).unwrap();
        if let Some(dev) = report.best_deviation {
            let deviated = profile.with_strategy(dev.peer, dev.links.clone()).unwrap();
            let new_cost = peer_cost(&game, &deviated, dev.peer).unwrap();
            let old_cost = peer_cost(&game, &profile, dev.peer).unwrap();
            prop_assert!(
                new_cost < old_cost || (old_cost.is_infinite() && new_cost.is_finite()),
                "reported deviation does not improve: old={} new={}", old_cost, new_cost
            );
        }
    }
}
