//! Property tests for [`GameSession`] / free-function equivalence.
//!
//! The session is the single evaluation code path now — the free
//! functions are thin wrappers building a *fresh* session per call — so
//! the load-bearing property is **cache-invalidation correctness**: a
//! session that has lived through an arbitrary sequence of
//! [`Move`]s must answer every query exactly like a cold session (full
//! rebuild) on the same final profile.

use proptest::prelude::*;
use rand::prelude::*;
use sp_core::{
    BestResponseMethod, Game, GameSession, LinkSet, Move, NashTest, PeerId, StrategyProfile,
};
use sp_metric::generators;

/// CI's determinism matrix sets `SP_TEST_PARALLELISM` to pin every
/// shard/worker-count parameter these tests would otherwise draw, so the
/// whole suite runs at forced parallelism extremes (1 and 8) and
/// shard-count-dependent nondeterminism cannot land.
fn forced_parallelism() -> Option<usize> {
    std::env::var("SP_TEST_PARALLELISM").ok()?.parse().ok()
}

/// A random small game, a random initial profile, and a random move
/// script (encoded as `(kind, from, to)` triples).
#[allow(clippy::type_complexity)]
fn arb_session_script() -> impl Strategy<Value = (Game, StrategyProfile, Vec<(u8, usize, usize)>)> {
    (2usize..=7, 0u64..10_000, 0.1f64..8.0).prop_flat_map(|(n, seed, alpha)| {
        let max_links = (n * (n - 1)).min(16);
        (
            proptest::collection::vec((0..n, 0..n), 0..=max_links),
            proptest::collection::vec((0u8..3, 0..n, 0..n), 1..12),
        )
            .prop_map(move |(pairs, script)| {
                let mut rng = StdRng::seed_from_u64(seed);
                let space = generators::uniform_square(n, 10.0, &mut rng);
                let game = Game::from_space(&space, alpha).unwrap();
                let links: Vec<(usize, usize)> =
                    pairs.into_iter().filter(|&(u, v)| u != v).collect();
                let profile = StrategyProfile::from_links(n, &links).unwrap();
                (game, profile, script)
            })
    })
}

/// Decodes one scripted `(kind, from, to)` triple into a [`Move`]
/// (`None` for the self-link combinations the script skips).
fn script_move(n: usize, kind: u8, from: usize, to: usize) -> Option<Move> {
    if from == to {
        return None;
    }
    Some(match kind {
        0 => Move::AddLink {
            from: PeerId::new(from),
            to: PeerId::new(to),
        },
        1 => Move::RemoveLink {
            from: PeerId::new(from),
            to: PeerId::new(to),
        },
        _ => {
            // A pseudo-random replacement strategy derived from (from, to).
            let links: LinkSet = (0..n)
                .filter(|&v| v != from && !(v + to).is_multiple_of(3))
                .collect();
            Move::SetStrategy {
                peer: PeerId::new(from),
                links,
            }
        }
    })
}

/// Replays one scripted move on the session, skipping self-links.
fn play(session: &mut GameSession, kind: u8, from: usize, to: usize) {
    if let Some(mv) = script_move(session.n(), kind, from, to) {
        session.apply(mv).expect("script only uses in-bounds peers");
    }
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a.is_infinite() && b.is_infinite()) || (a - b).abs() <= tol * (1.0 + a.abs().min(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Costs after arbitrary move sequences match a cold rebuild.
    #[test]
    fn warm_session_costs_match_cold_rebuild(
        (game, profile, script) in arb_session_script()
    ) {
        let mut warm = GameSession::from_refs(&game, &profile).unwrap();
        // Interleave queries with moves so the incremental repair runs on
        // genuinely warm caches (querying before each apply fills rows).
        for &(kind, from, to) in &script {
            let _ = warm.social_cost();
            play(&mut warm, kind, from, to);
        }
        let mut cold = GameSession::from_refs(&game, warm.profile()).unwrap();

        let warm_sc = warm.social_cost();
        let cold_sc = cold.social_cost();
        prop_assert!(
            close(warm_sc.total(), cold_sc.total(), 1e-9),
            "social cost diverged: warm {} vs cold {}",
            warm_sc.total(),
            cold_sc.total()
        );
        prop_assert_eq!(warm_sc.link_cost, cold_sc.link_cost);

        for i in 0..game.n() {
            let w = warm.peer_cost(PeerId::new(i)).unwrap();
            let c = cold.peer_cost(PeerId::new(i)).unwrap();
            prop_assert!(close(w, c, 1e-9), "peer {} cost diverged: {} vs {}", i, w, c);
        }

        // Full matrices agree entry-wise.
        let wd = warm.overlay_distances().clone();
        let cd = cold.overlay_distances().clone();
        for i in 0..game.n() {
            for j in 0..game.n() {
                prop_assert!(
                    close(wd[(i, j)], cd[(i, j)], 1e-9),
                    "distance ({},{}) diverged: {} vs {}",
                    i, j, wd[(i, j)], cd[(i, j)]
                );
            }
        }
        let ws = warm.stretch_matrix().clone();
        let cs = cold.stretch_matrix().clone();
        for i in 0..game.n() {
            for j in 0..game.n() {
                prop_assert!(close(ws[(i, j)], cs[(i, j)], 1e-9));
            }
        }
    }

    /// Best responses and Nash verdicts from a warm session match the
    /// legacy free functions on the same final profile.
    #[test]
    fn warm_session_responses_match_free_functions(
        (game, profile, script) in arb_session_script()
    ) {
        let mut warm = GameSession::from_refs(&game, &profile).unwrap();
        for &(kind, from, to) in &script {
            let _ = warm.all_peer_costs();
            play(&mut warm, kind, from, to);
        }
        let final_profile = warm.profile().clone();

        for i in 0..game.n() {
            let peer = PeerId::new(i);
            let via_session = warm.best_response(peer, BestResponseMethod::Exact).unwrap();
            let via_free =
                sp_core::best_response(&game, &final_profile, peer, BestResponseMethod::Exact)
                    .unwrap();
            prop_assert!(
                close(via_session.cost, via_free.cost, 1e-9),
                "peer {} best-response cost diverged: {} vs {}",
                i, via_session.cost, via_free.cost
            );
            prop_assert!(close(via_session.current_cost, via_free.current_cost, 1e-9));
        }

        let via_session = warm.is_nash(&NashTest::exact()).unwrap();
        let via_free = sp_core::is_nash(&game, &final_profile, &NashTest::exact()).unwrap();
        prop_assert_eq!(via_session.is_nash(), via_free.is_nash());

        let gap_session = warm.nash_gap(BestResponseMethod::Exact).unwrap();
        let gap_free =
            sp_core::nash_gap(&game, &final_profile, BestResponseMethod::Exact).unwrap();
        prop_assert!(close(gap_session, gap_free, 1e-9));
    }

    /// The wrappers themselves: free functions equal direct session use
    /// on arbitrary (game, profile) pairs.
    #[test]
    fn free_functions_equal_session_queries(
        (game, profile, _script) in arb_session_script()
    ) {
        let mut session = GameSession::from_refs(&game, &profile).unwrap();
        let sc_free = sp_core::social_cost(&game, &profile).unwrap();
        let sc_sess = session.social_cost();
        prop_assert!(close(sc_free.total(), sc_sess.total(), 1e-12));
        let ms_free = sp_core::max_stretch(&game, &profile).unwrap();
        let ms_sess = session.max_stretch();
        prop_assert!(close(ms_free, ms_sess, 1e-12));
        let costs_free = sp_core::all_peer_costs(&game, &profile).unwrap();
        let costs_sess = session.all_peer_costs();
        for (a, b) in costs_free.iter().zip(&costs_sess) {
            prop_assert!(close(*a, *b, 1e-12));
        }
    }

    /// `apply_batch` is observationally equivalent to applying the same
    /// moves one at a time: per-move prior links, evolving costs, the
    /// final profile, and the full distance matrix all agree (and a cold
    /// rebuild agrees with both).
    #[test]
    fn apply_batch_equals_sequential_applies(
        (game, profile, script) in arb_session_script(),
        chunk in 1usize..5
    ) {
        let n = game.n();
        let moves: Vec<Move> = script
            .iter()
            .filter_map(|&(kind, from, to)| script_move(n, kind, from, to))
            .collect();

        let mut batched = GameSession::from_refs(&game, &profile).unwrap();
        let mut sequential = GameSession::from_refs(&game, &profile).unwrap();
        // Warm both caches so batches repair live state, not cold laziness.
        let _ = batched.social_cost();
        let _ = sequential.social_cost();

        for batch in moves.chunks(chunk) {
            let prev_batched = batched.apply_batch(batch).unwrap();
            let prev_sequential: Vec<_> = batch
                .iter()
                .map(|mv| sequential.apply(mv.clone()).unwrap())
                .collect();
            prop_assert_eq!(&prev_batched, &prev_sequential,
                "prior links diverged inside a batch");
            // Query between batches so every batch starts from warm rows.
            let b = batched.social_cost().total();
            let s = sequential.social_cost().total();
            prop_assert!(close(b, s, 1e-9), "social cost diverged: {} vs {}", b, s);
        }
        prop_assert_eq!(batched.profile(), sequential.profile());

        let mut cold = GameSession::from_refs(&game, batched.profile()).unwrap();
        let bd = batched.overlay_distances().clone();
        let cd = cold.overlay_distances().clone();
        for i in 0..n {
            for j in 0..n {
                prop_assert!(
                    close(bd[(i, j)], cd[(i, j)], 1e-9),
                    "distance ({},{}) diverged after batches: {} vs {}",
                    i, j, bd[(i, j)], cd[(i, j)]
                );
            }
        }

        // Stats discipline: every non-no-op batch costs exactly one CSR
        // rebuild, and the batch counters never exceed the script size.
        let stats = batched.stats();
        prop_assert!(stats.batch_applies <= moves.len().div_ceil(chunk.max(1)));
        prop_assert!(stats.batch_moves <= moves.len());
        prop_assert!(stats.csr_rebuilds <= 1 + stats.batch_applies);
    }

    /// The threaded bulk refill computes exactly the same distance matrix
    /// as the sequential path, whatever mutations preceded it.
    #[test]
    fn parallel_refill_equals_sequential_refill(
        (game, profile, script) in arb_session_script(),
        workers in 2usize..6
    ) {
        let workers = forced_parallelism().unwrap_or(workers);
        let mut par = GameSession::from_refs(&game, &profile).unwrap();
        par.set_parallelism(Some(workers));
        let mut seq = GameSession::from_refs(&game, &profile).unwrap();
        seq.set_parallelism(Some(1));
        for &(kind, from, to) in &script {
            let _ = par.social_cost();
            let _ = seq.social_cost();
            play(&mut par, kind, from, to);
            play(&mut seq, kind, from, to);
        }
        let pd = par.overlay_distances().clone();
        let sd = seq.overlay_distances().clone();
        prop_assert_eq!(pd, sd, "threaded and sequential sweeps must agree exactly");
        prop_assert_eq!(par.stats().full_sssp, seq.stats().full_sssp);
    }

    /// Pure link additions never invalidate rows — the decrease-only
    /// repair handles them — and never change what queries report
    /// relative to a cold session.
    #[test]
    fn additions_are_repaired_without_row_invalidation(
        (game, profile, script) in arb_session_script()
    ) {
        let mut warm = GameSession::from_refs(&game, &profile).unwrap();
        let _ = warm.social_cost();
        for &(_, from, to) in &script {
            if from != to {
                warm.apply(Move::AddLink {
                    from: PeerId::new(from),
                    to: PeerId::new(to),
                }).unwrap();
            }
        }
        prop_assert_eq!(warm.stats().rows_invalidated, 0);
        prop_assert_eq!(warm.stats().full_sssp, game.n());
        let warm_total = warm.social_cost().total();
        let cold_total =
            GameSession::from_refs(&game, warm.profile()).unwrap().social_cost().total();
        prop_assert!(close(warm_total, cold_total, 1e-9));
    }

    /// The round-snapshot oracle (which serves candidate rows from the
    /// session's persistent cache whenever no out-link of the responding
    /// peer is tight on them) is **bit-identical** to the fresh
    /// `G_{-i}`-sweeping oracle — even on caches that lived through an
    /// arbitrary move script, and for every shard count of the
    /// fanned-out round.
    #[test]
    fn cached_oracle_round_is_bit_identical_to_fresh_oracles(
        (game, profile, script) in arb_session_script(),
        shards in 1usize..6
    ) {
        let shards = forced_parallelism().unwrap_or(shards);
        let mut fresh = GameSession::from_refs(&game, &profile).unwrap();
        let mut cached = GameSession::from_refs(&game, &profile).unwrap();
        cached.set_parallelism(Some(shards));
        for &(kind, from, to) in &script {
            let _ = fresh.social_cost();
            let _ = cached.social_cost();
            play(&mut fresh, kind, from, to);
            play(&mut cached, kind, from, to);
        }
        let peers: Vec<PeerId> = (0..game.n()).map(PeerId::new).collect();
        let baseline: Vec<_> = peers
            .iter()
            .map(|&p| fresh.best_response_uncached(p, BestResponseMethod::Exact).unwrap())
            .collect();
        let round = cached
            .best_responses_round(&peers, BestResponseMethod::Exact)
            .unwrap();
        for (a, b) in baseline.iter().zip(&round) {
            prop_assert_eq!(a.peer, b.peer);
            prop_assert_eq!(&a.links, &b.links, "links diverged for peer {:?}", a.peer);
            prop_assert_eq!(
                a.cost.to_bits(), b.cost.to_bits(),
                "response cost not bit-identical for peer {:?}: {} vs {}",
                a.peer, a.cost, b.cost
            );
            prop_assert_eq!(a.current_cost.to_bits(), b.current_cost.to_bits());
        }
        // The snapshot must be earning its keep: all candidate rows are
        // accounted for, and reuse strictly dominates on these instances.
        let stats = cached.stats();
        let n = game.n();
        prop_assert_eq!(
            stats.oracle_rows_reused + stats.oracle_rows_swept,
            n * (n - 1),
            "every candidate row is either reused or swept"
        );
    }

    /// **The cross-move cache contract.** A session whose persistent
    /// oracle cache lives through an arbitrary interleaving of
    /// `apply` moves, best-response queries, and better-response queries
    /// answers every oracle query **bit-identically** to a fresh
    /// `G_{-i}` oracle built on the spot — reuse (overlay rows surviving
    /// repair, residual rows surviving other peers' moves) must never
    /// change a single bit of any response.
    #[test]
    fn cached_oracles_survive_interleaved_applies(
        (game, profile, script) in arb_session_script()
    ) {
        let mut s = GameSession::from_refs(&game, &profile).unwrap();
        let check = |s: &mut GameSession, peer: PeerId| -> Result<(), TestCaseError> {
            let fresh = s.best_response_uncached(peer, BestResponseMethod::Exact).unwrap();
            let cached = s.best_response(peer, BestResponseMethod::Exact).unwrap();
            prop_assert_eq!(&fresh.links, &cached.links,
                "links diverged for peer {:?}", peer);
            prop_assert_eq!(fresh.cost.to_bits(), cached.cost.to_bits(),
                "cost not bit-identical for peer {:?}: {} vs {}",
                peer, fresh.cost, cached.cost);
            prop_assert_eq!(fresh.current_cost.to_bits(), cached.current_cost.to_bits());
            let fresh_mv = s.first_improving_move_uncached(peer, 1e-9).unwrap();
            let cached_mv = s.first_improving_move(peer, 1e-9).unwrap();
            match (&fresh_mv, &cached_mv) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(&a.links, &b.links);
                    prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                }
                _ => {
                    return Err(TestCaseError::Fail(format!(
                        "better-response disagreement for peer {peer:?}: \
                         {fresh_mv:?} vs {cached_mv:?}"
                    )));
                }
            }
            Ok(())
        };
        // Interleave: query the two peers a move names, play the move,
        // query again — so cached builds both warm the cache before each
        // mutation and read it right after the repair.
        for &(kind, from, to) in &script {
            check(&mut s, PeerId::new(from))?;
            play(&mut s, kind, from, to);
            check(&mut s, PeerId::new(to))?;
        }
        // Final full sweep over every peer on the end state.
        for i in 0..game.n() {
            check(&mut s, PeerId::new(i))?;
        }
        // Accounting: every candidate row of every sequential cached
        // build was either served from a cache tier or swept.
        let stats = s.stats();
        let n = game.n();
        let cached_builds = 2 * (2 * script.len() + n);
        prop_assert_eq!(
            stats.seq_oracle_hits + stats.seq_oracle_swept,
            cached_builds * (n - 1),
            "sequential oracle row accounting must balance"
        );
    }
}
