//! The sparse landmark evaluation backend.
//!
//! A [`SparseBackend`] never holds an `n × n` matrix. Its state is:
//!
//! * **landmarks** — `L` nodes picked once per session by deterministic
//!   farthest-point traversal of the *metric* (the metric never
//!   changes);
//! * **sketch** — `2L` full distance rows (forward on the overlay,
//!   backward on its transpose), giving certified upper/lower bounds on
//!   any overlay distance, repaired incrementally through the shared
//!   [`sp_graph::edge_on_path`] invalidation discipline;
//! * **metric windows** — for every peer, its `window` metric-nearest
//!   neighbours; in the low-α locality regime these are the only link
//!   targets a peer could plausibly want (the paper's peers link within
//!   bounded metric balls), so candidate enumeration is `O(window)`
//!   instead of `O(n)`;
//! * **bounded Dijkstra scratch** — transient exact balls of at most
//!   `ball_cap` nodes, with a completeness certificate.
//!
//! Total: `O(n · (L + window) + edges)` bytes.
//!
//! [`SparseBackend::local_response`] is the scale path: it evaluates
//! drop/add/swap candidates with exact in-ball distances, certified
//! sketch **upper bounds** for demand the ball did not reach, and a
//! stretch-floor prune (`stretch ≥ 1` always, because overlay distances
//! are at least metric distances) that skips whole candidate classes at
//! high α. It is a *deterministic heuristic*: accepted moves improve the
//! estimator, not necessarily the exact cost — while `best_response`,
//! `is_nash` and `nash_gap` on a sparse session stay **certified** by
//! falling back to exact per-peer `G_{-i}` sweeps. Small sessions
//! (`window + 1 ≥ n`) route `local_response` to the exact path too, so
//! sparse and dense decisions are bit-identical there (property-tested).

use sp_graph::{
    farthest_point_landmarks, BoundedDijkstra, CsrGraph, DijkstraScratch, DistanceMatrix,
    LandmarkSketch, SketchRepair,
};

use crate::backend::{BackendMode, DistanceBackend};
use crate::session::EDGE_ON_PATH_EPS;
use crate::{BestResponse, Game, PeerId, StrategyProfile};

/// Tuning knobs for a sparse session ([`GameSession::new_sparse_with`]).
///
/// The defaults target better-response dynamics on ~10⁵-peer line
/// metrics; see the module docs for what each knob trades off.
///
/// [`GameSession::new_sparse_with`]: crate::GameSession::new_sparse_with
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseParams {
    /// Landmark count `L`: sketch memory is `2 · L` full rows and bound
    /// quality improves with `L`.
    pub landmarks: usize,
    /// Maximum nodes settled by one bounded evaluation ball.
    pub ball_cap: usize,
    /// Metric-nearest window per peer: both the candidate set for
    /// `local_response` and its demand sample.
    pub window: usize,
    /// Finite stand-in cost for a demand peer a candidate strategy
    /// provably or presumably cannot reach. Finite (unlike the exact
    /// evaluator's `∞`) so that partially-connecting moves still rank
    /// above staying disconnected.
    pub unreach_penalty: f64,
}

impl Default for SparseParams {
    fn default() -> Self {
        SparseParams {
            landmarks: 8,
            ball_cap: 64,
            window: 16,
            unreach_penalty: 1e6,
        }
    }
}

/// Work counters from one [`SparseBackend::local_response`] call; the
/// session folds them into [`SessionStats`](crate::SessionStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LocalCounts {
    /// Bounded evaluation sweeps run.
    pub ball_sweeps: usize,
    /// Demand entries answered by a sketch upper bound (ball cut off).
    pub sketch_hits: usize,
    /// Candidate strategies skipped by the stretch-floor prune.
    pub pruned: usize,
}

/// Landmark-sketch distance backend. See the module docs; constructed
/// only through [`GameSession::new_sparse`](crate::GameSession::new_sparse).
#[derive(Debug, Clone)]
pub struct SparseBackend {
    params: SparseParams,
    /// Effective window (`params.window` clamped to `n − 1`).
    window: usize,
    /// Landmark ids, fixed for the session (metric-derived).
    landmarks: Vec<usize>,
    /// Row-major `n × window` metric-nearest neighbour ids.
    near: Vec<u32>,
    /// Landmark rows over the current overlay; `None` until first use
    /// and after a wholesale profile replacement.
    sketch: Option<LandmarkSketch>,
    /// Transpose of the current overlay CSR (kept in lock-step with the
    /// sketch; rebuilding it is `O(n + m)`).
    transpose: Option<CsrGraph>,
    bounded: BoundedDijkstra,
    /// Transient exact row for `peer_cost`-style queries.
    row_buf: Vec<f64>,
    row_src: Option<usize>,
    /// The documented `O(n²)` escape hatch behind `overlay_distances` /
    /// `stretch_matrix` on sparse sessions — built only on demand,
    /// dropped on any mutation. Not part of the scale path.
    escape: Option<DistanceMatrix>,
}

impl SparseBackend {
    /// Precomputes the metric-derived state (landmarks, windows); the
    /// overlay-derived sketch is built lazily by
    /// [`SparseBackend::ensure_ready`].
    pub(crate) fn new(game: &Game, params: SparseParams) -> Self {
        let n = game.n();
        assert!(n < u32::MAX as usize, "peer ids must fit u32");
        let window = params.window.min(n.saturating_sub(1));
        let landmarks =
            farthest_point_landmarks(n, params.landmarks.min(n), |i, j| game.distance(i, j));
        let near = metric_windows(game, window);
        SparseBackend {
            params,
            window,
            landmarks,
            near,
            sketch: None,
            transpose: None,
            bounded: BoundedDijkstra::new(),
            row_buf: Vec::new(),
            row_src: None,
            escape: None,
        }
    }

    pub(crate) fn params(&self) -> &SparseParams {
        &self.params
    }

    pub(crate) fn window(&self) -> usize {
        self.window
    }

    /// Builds the sketch (and transpose) for the current overlay if it
    /// is not already standing. Returns the number of full rows swept
    /// (`2 · L` on a build, `0` otherwise) for the session's counters.
    pub(crate) fn ensure_ready(&mut self, csr: &CsrGraph, scratch: &mut DijkstraScratch) -> usize {
        if self.sketch.is_some() {
            return 0;
        }
        let transpose = csr.transpose();
        let sketch = LandmarkSketch::build(csr, &transpose, self.landmarks.clone(), scratch);
        let swept = 2 * self.landmarks.len();
        self.sketch = Some(sketch);
        self.transpose = Some(transpose);
        swept
    }

    /// Repairs the sketch after a committed edge diff (the sparse arm of
    /// the session's single invalidation code path). No-op while the
    /// sketch is lazily absent.
    pub(crate) fn repair(
        &mut self,
        csr: &CsrGraph,
        added: &[(usize, usize, f64)],
        removed: &[(usize, usize, f64)],
        scratch: &mut DijkstraScratch,
    ) -> SketchRepair {
        self.row_src = None;
        self.escape = None;
        let Some(sketch) = self.sketch.as_mut() else {
            return SketchRepair::default();
        };
        let transpose = csr.transpose();
        let counts =
            sketch.repair_after_edges(csr, &transpose, added, removed, EDGE_ON_PATH_EPS, scratch);
        self.transpose = Some(transpose);
        counts
    }

    /// Whether any overlay-derived state is standing (sketch, transient
    /// row, escape matrix) — the session's repair pass stays lazy when
    /// there is nothing to repair.
    pub(crate) fn has_cached_state(&self) -> bool {
        self.sketch.is_some() || self.row_src.is_some() || self.escape.is_some()
    }

    /// Whether the escape-hatch matrix is already materialised (the
    /// session charges `n` sweeps to the stats when it is not).
    pub(crate) fn escape_ready(&self) -> bool {
        self.escape.is_some()
    }

    /// Sweeps the exact overlay row of `u` into the transient buffer.
    /// Returns `false` when the buffer already holds `u`'s row (still
    /// valid — mutations clear it), `true` when a sweep was paid.
    pub(crate) fn compute_row(
        &mut self,
        csr: &CsrGraph,
        u: usize,
        scratch: &mut DijkstraScratch,
    ) -> bool {
        if self.row_src == Some(u) {
            return false;
        }
        let n = csr.node_count();
        if self.row_buf.len() != n {
            self.row_buf.clear();
            self.row_buf.resize(n, f64::INFINITY);
        }
        csr.dijkstra_into_with(u, &mut self.row_buf, scratch);
        self.row_src = Some(u);
        true
    }

    /// The transient row last computed by [`SparseBackend::compute_row`].
    pub(crate) fn row_ref(&self, u: usize) -> &[f64] {
        debug_assert_eq!(self.row_src, Some(u), "transient row is for another source");
        &self.row_buf
    }

    /// Certified `(lower, upper)` bounds on the overlay distance
    /// `d_G(u, v)`: sketch triangle bounds, with the metric distance as
    /// an additional lower bound (overlay edge weights *are* metric
    /// distances, so `d_G ≥ d_met` by the triangle inequality).
    pub(crate) fn dist_bounds(&self, game: &Game, u: usize, v: usize) -> (f64, f64) {
        if u == v {
            return (0.0, 0.0);
        }
        let sketch = self.sketch.as_ref().expect("ensure_ready precedes queries");
        let lower = sketch.lower(u, v).max(game.distance(u, v));
        (lower, sketch.upper(u, v))
    }

    /// The metric-nearest window of peer `i` (candidate/demand set).
    pub(crate) fn near_window(&self, i: usize) -> &[u32] {
        &self.near[i * self.window..(i + 1) * self.window]
    }

    /// The full overlay matrix escape hatch: `n` exact sweeps into a
    /// dense matrix, cached until the next mutation. Small-instance
    /// debugging only — this is precisely the allocation the sparse mode
    /// exists to avoid.
    pub(crate) fn escape_matrix(
        &mut self,
        csr: &CsrGraph,
        scratch: &mut DijkstraScratch,
    ) -> &DistanceMatrix {
        if self.escape.is_none() {
            let n = csr.node_count();
            // sp-lint: allow(dense-alloc, reason = "the documented O(n^2) escape hatch for overlay_distances()/stretch_matrix() on sparse sessions; never on the scale path")
            let mut m = DistanceMatrix::new_filled(n, f64::INFINITY);
            for u in 0..n {
                csr.dijkstra_into_with(u, m.row_mut(u), scratch);
            }
            self.escape = Some(m);
        }
        self.escape.as_ref().expect("built above")
    }

    /// Deterministic heuristic better response: first estimated-improving
    /// drop/add/swap over the peer's metric window. See the module docs
    /// for the estimator's contract.
    pub(crate) fn local_response(
        &mut self,
        game: &Game,
        profile: &StrategyProfile,
        csr: &CsrGraph,
        peer: PeerId,
        tol: f64,
        counts: &mut LocalCounts,
    ) -> Option<BestResponse> {
        let i = peer.index();
        let alpha = game.alpha();
        let demand: Vec<usize> = self.near_window(i).iter().map(|&x| x as usize).collect();
        let cur: Vec<(usize, f64)> = profile
            .strategy(peer)
            .iter()
            .map(|t| (t.index(), game.distance(i, t.index())))
            .collect();
        let cur_cost = self.estimate(game, csr, i, &cur, &demand, counts);
        let improves = |c: f64| {
            if c.is_infinite() {
                return false;
            }
            if cur_cost.is_infinite() {
                return true;
            }
            c < cur_cost - tol * (1.0 + cur_cost.abs())
        };
        let finish = |links: &[(usize, f64)], cost: f64| {
            Some(BestResponse {
                peer,
                links: links.iter().map(|&(v, _)| v).collect(),
                cost,
                current_cost: cur_cost,
                exact: false,
            })
        };

        // Drops, in ascending target order (matching the exact path).
        for k in 0..cur.len() {
            let mut cand = cur.clone();
            cand.remove(k);
            let c = self.estimate(game, csr, i, &cand, &demand, counts);
            if improves(c) {
                return finish(&cand, c);
            }
        }

        let add_targets: Vec<(usize, f64)> = demand
            .iter()
            .filter(|&&v| !cur.iter().any(|&(t, _)| t == v))
            .map(|&v| (v, game.distance(i, v)))
            .collect();

        // Adds, nearest-first. Stretch is at least 1 per demand peer
        // (d_G ≥ d_met), so no strategy of size |S| + 1 can estimate
        // below α(|S| + 1) + |D| — at high α that floor alone certifies
        // (under the estimator) that every add loses, and the whole
        // class is pruned unevaluated.
        let add_floor = alpha * (cur.len() + 1) as f64 + demand.len() as f64;
        if !improves(add_floor) {
            counts.pruned += add_targets.len();
        } else {
            for &(v, w) in &add_targets {
                let mut cand = cur.clone();
                cand.push((v, w));
                let c = self.estimate(game, csr, i, &cand, &demand, counts);
                if improves(c) {
                    return finish(&cand, c);
                }
            }
        }

        // Swaps: same floor with an unchanged link count.
        if !cur.is_empty() {
            let swap_floor = alpha * cur.len() as f64 + demand.len() as f64;
            if !improves(swap_floor) {
                counts.pruned += cur.len() * add_targets.len();
            } else {
                for k in 0..cur.len() {
                    for &(v, w) in &add_targets {
                        let mut cand = cur.clone();
                        cand[k] = (v, w);
                        let c = self.estimate(game, csr, i, &cand, &demand, counts);
                        if improves(c) {
                            return finish(&cand, c);
                        }
                    }
                }
            }
        }
        None
    }

    /// Estimated cost of `i` playing `links`, over the demand window:
    /// exact distances inside the bounded ball, certified sketch upper
    /// bounds routed through the candidate links beyond it, and
    /// [`SparseParams::unreach_penalty`] for demand no estimate reaches.
    fn estimate(
        &mut self,
        game: &Game,
        csr: &CsrGraph,
        i: usize,
        links: &[(usize, f64)],
        demand: &[usize],
        counts: &mut LocalCounts,
    ) -> f64 {
        let sweep = self
            .bounded
            .sweep_with_source_links(csr, i, Some(links), self.params.ball_cap);
        counts.ball_sweeps += 1;
        let sketch = self.sketch.as_ref().expect("ensure_ready precedes queries");
        let mut cost = game.alpha() * links.len() as f64;
        for &j in demand {
            let d = match sweep.distance(j) {
                Some(d) => d,
                None if sweep.complete => f64::INFINITY,
                None => {
                    counts.sketch_hits += 1;
                    let mut best = f64::INFINITY;
                    for &(v, w) in links {
                        let via = if v == j { w } else { w + sketch.upper(v, j) };
                        if via < best {
                            best = via;
                        }
                    }
                    best
                }
            };
            if d.is_finite() {
                cost += d / game.distance(i, j);
            } else {
                cost += self.params.unreach_penalty;
            }
        }
        cost
    }
}

impl DistanceBackend for SparseBackend {
    fn mode(&self) -> BackendMode {
        BackendMode::Sparse
    }

    fn memory_bytes(&self) -> usize {
        let f64s = std::mem::size_of::<f64>();
        let mut bytes = self.landmarks.len() * std::mem::size_of::<usize>()
            + self.near.len() * std::mem::size_of::<u32>()
            + self.row_buf.len() * f64s;
        if let Some(s) = &self.sketch {
            bytes += s.memory_bytes();
        }
        if let Some(t) = &self.transpose {
            bytes += (t.node_count() + 1) * std::mem::size_of::<usize>()
                + t.edge_count() * (std::mem::size_of::<usize>() + f64s);
        }
        if let Some(e) = &self.escape {
            bytes += e.len() * e.len() * f64s;
        }
        bytes
    }

    fn invalidate(&mut self) {
        self.sketch = None;
        self.transpose = None;
        self.row_src = None;
        self.escape = None;
    }
}

/// Row-major `n × window` table of each peer's metric-nearest
/// neighbours, nearest first, ties toward the lower index. Line metrics
/// take an `O(n · (log n + window))` sorted-merge path; dense metrics
/// fall back to per-peer scans (small instances only).
fn metric_windows(game: &Game, window: usize) -> Vec<u32> {
    let n = game.n();
    let mut near = Vec::with_capacity(n * window);
    if window == 0 {
        return near;
    }
    if let Some(pos) = game.line_positions() {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| pos[a].total_cmp(&pos[b]).then(a.cmp(&b)));
        let mut rank = vec![0usize; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r;
        }
        for i in 0..n {
            let r = rank[i];
            let (mut l, mut g) = (r, r + 1);
            for _ in 0..window {
                let left = (l > 0).then(|| {
                    let v = order[l - 1];
                    ((pos[i] - pos[v]).abs(), v)
                });
                let right = (g < n).then(|| {
                    let v = order[g];
                    ((pos[i] - pos[v]).abs(), v)
                });
                let take_left = match (left, right) {
                    (Some((dl, vl)), Some((dr, vr))) => (dl, vl) <= (dr, vr),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => unreachable!("window < n guarantees a candidate"),
                };
                if take_left {
                    near.push(order[l - 1] as u32);
                    l -= 1;
                } else {
                    near.push(order[g] as u32);
                    g += 1;
                }
            }
        }
    } else {
        let mut cands: Vec<(f64, usize)> = Vec::with_capacity(n.saturating_sub(1));
        for i in 0..n {
            cands.clear();
            // sp-lint: allow(float-eps, reason = "j != i is an integer peer-index guard; the distances on this line are constructed, not compared")
            cands.extend((0..n).filter(|&j| j != i).map(|j| (game.distance(i, j), j)));
            cands.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            near.extend(cands.iter().take(window).map(|&(_, j)| j as u32));
        }
    }
    near
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    #[test]
    fn metric_windows_line_path_matches_dense_fallback() {
        let coords = vec![0.0, 1.0, 3.0, 3.5, 10.0, -2.0];
        let implicit = Game::from_line_positions(coords.clone(), 1.0).unwrap();
        let dense = Game::from_space(&LineSpace::new(coords).unwrap(), 1.0).unwrap();
        for w in 0..=5 {
            assert_eq!(
                metric_windows(&implicit, w),
                metric_windows(&dense, w),
                "window {w}"
            );
        }
    }

    #[test]
    fn metric_windows_are_nearest_first() {
        let game = Game::from_line_positions(vec![0.0, 1.0, 2.5, 6.0], 1.0).unwrap();
        let near = metric_windows(&game, 3);
        // Peer 0 at 0.0: nearest 1 (1.0), then 2 (2.5), then 3 (6.0).
        assert_eq!(&near[0..3], &[1, 2, 3]);
        // Peer 2 at 2.5: nearest 1 (1.5), then 0 (2.5), then 3 (3.5).
        assert_eq!(&near[6..9], &[1, 0, 3]);
    }

    #[test]
    fn tie_breaks_prefer_lower_index() {
        // Peer 1 at 1.0 is equidistant (1.0) from peers 0 and 2.
        let game = Game::from_line_positions(vec![0.0, 1.0, 2.0], 1.0).unwrap();
        let near = metric_windows(&game, 2);
        assert_eq!(&near[2..4], &[0, 2]);
    }
}
