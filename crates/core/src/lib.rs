//! The selfish-peers network creation game (Moscibroda, Schmid &
//! Wattenhofer, PODC 2006).
//!
//! Peers are points in a metric space. Each peer `i` unilaterally selects a
//! set `s_i` of peers to maintain **directed** links to; the profile
//! `s = (s_0, …, s_{n-1})` induces the overlay `G[s]` whose edge `(i, j)`
//! has weight `d(i, j)`. Peer `i`'s individual cost is
//!
//! ```text
//! c_i(s) = α·|s_i| + Σ_{j≠i} stretch_{G[s]}(i, j),
//! stretch_G(i, j) = d_G(i, j) / d(i, j),
//! ```
//!
//! and the social cost is `C(G) = α|E| + Σ_{i≠j} stretch(i, j)`.
//!
//! This crate provides:
//!
//! * [`Game`] — the metric (as a distance matrix) plus the trade-off
//!   parameter `α`;
//! * [`StrategyProfile`] / [`LinkSet`] / [`PeerId`] — strategy bookkeeping;
//! * [`GameSession`] — **the evaluation engine**: a stateful handle
//!   owning a game and its evolving profile, keeping the overlay CSR,
//!   distance matrix, and stretch matrix cached across queries, and
//!   repairing them incrementally when [`GameSession::apply`] mutates a
//!   peer's links. Best-response oracles are served from the same
//!   persistent two-tier cache (overlay rows plus retained residual
//!   `G_{-i}` rows — see the `session` module docs for the invalidation
//!   invariants), so hot sequential loops stop paying `n - 1` fresh
//!   sweeps per activation. Multi-peer events (simultaneous rounds,
//!   churn) commit through [`GameSession::apply_batch`] — one CSR
//!   rebuild and one repair pass for the whole batch — and bulk row
//!   refills shard their Dijkstra sweeps over worker threads
//!   ([`sp_graph::CsrGraph::dijkstra_rows_with`]);
//! * [`topology`](fn@topology) / [`overlay_distances`] / [`stretch_matrix`]
//!   — the induced overlay and its stretches;
//! * [`peer_cost`] / [`social_cost`] — the paper's cost functions;
//! * [`best_response`] — a peer's optimal deviation, computed *exactly* by
//!   reduction to uncapacitated facility location (see `sp-facility`), or
//!   approximately via greedy/local-search;
//! * [`is_nash`] / [`nash_gap`] — (exact) Nash-equilibrium verification;
//! * [`poa`] — bounds used for Price-of-Anarchy bracketing;
//! * [`backend`] — **pluggable evaluation backends**: the exact dense
//!   [`OracleCache`]-backed default, and the [`SparseBackend`] landmark
//!   mode ([`GameSession::new_sparse`]) that answers large-`n`
//!   better-response dynamics in `O(n · (landmarks + window))` memory
//!   without ever materialising the `O(n²)` distance matrix (see the
//!   module docs for the mode-selection guidance).
//!
//! [`OracleCache`]: crate::backend::DenseBackend
//!
//! The free functions are retained as thin, source-compatible wrappers —
//! each builds a throwaway [`GameSession`] — so one-shot callers keep the
//! simple API while hot loops (dynamics, experiment sweeps) hold a
//! session and let the caches pay off.
//!
//! # Example: session-oriented evaluation
//!
//! ```
//! use sp_core::{Game, GameSession, Move, NashTest, PeerId, StrategyProfile};
//! use sp_metric::LineSpace;
//!
//! let space = LineSpace::new(vec![0.0, 1.0, 3.0]).unwrap();
//! let game = Game::from_space(&space, 1.0).unwrap();
//!
//! // The bidirectional chain: on a line every stretch is 1.
//! let chain = StrategyProfile::from_links(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
//! let mut session = GameSession::new(game, chain).unwrap();
//! let c = session.social_cost();
//! assert_eq!(c.link_cost, 4.0);    // α · |E| = 1 · 4
//! assert_eq!(c.stretch_cost, 6.0); // n(n-1) stretches of 1
//!
//! // The chain is a Nash equilibrium here: dropping a link disconnects,
//! // and extra links cost α without reducing any stretch below 1.
//! assert!(session.is_nash(&NashTest::exact()).unwrap().is_nash());
//!
//! // Mutate through the session: caches are repaired, not discarded.
//! session.apply(Move::AddLink { from: PeerId::new(0), to: PeerId::new(2) }).unwrap();
//! assert_eq!(session.social_cost().total(), c.total() + 1.0); // one more α, no stretch saved
//! ```
//!
//! # Example: the source-compatible free functions
//!
//! ```
//! use sp_core::{Game, StrategyProfile, social_cost, is_nash, NashTest};
//! use sp_metric::LineSpace;
//!
//! let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 3.0]).unwrap(), 1.0).unwrap();
//! let chain = StrategyProfile::from_links(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
//! assert_eq!(social_cost(&game, &chain).unwrap().total(), 10.0);
//! assert!(is_nash(&game, &chain, &NashTest::exact()).unwrap().is_nash());
//! ```

#![forbid(unsafe_code)]
// Index loops over small fixed-size numeric tables are clearer than
// iterator chains in this codebase's shortest-path/game kernels.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod backend;
mod best_response;
mod cost;
pub mod demand;
mod error;
mod game;
mod oracle_cache;
mod peer;
pub mod poa;
mod session;
mod sparse;
mod strategy;
mod topology;

pub use backend::{BackendMode, DenseBackend, DistanceBackend};
pub use best_response::{best_response, first_improving_move, BestResponse, BestResponseMethod};
pub use cost::{all_peer_costs, peer_cost, social_cost, SocialCost};
pub use error::CoreError;
pub use game::Game;
pub use peer::{LinkSet, PeerId};
pub use session::{GameSession, Move, SessionSnapshot, SessionStats};
pub use sparse::{SparseBackend, SparseParams};
pub use strategy::StrategyProfile;
pub use topology::{
    max_stretch, overlay_distances, stretch_matrix, topology, topology_without_peer,
};

mod equilibrium;
pub use equilibrium::{is_nash, nash_gap, Deviation, NashReport, NashTest};
