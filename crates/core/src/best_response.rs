use sp_facility::{
    solve_branch_and_bound, solve_enumeration, solve_greedy, solve_local_search, FacilityError,
    FacilityProblem,
};
use sp_graph::{edge_on_path, CsrGraph, DijkstraScratch};

use crate::oracle_cache::OracleCache;
use crate::session::EDGE_ON_PATH_EPS;
use crate::{topology_without_peer, CoreError, Game, LinkSet, PeerId, StrategyProfile};

/// How a peer's best response is computed.
///
/// The reduction to facility location (see [`best_response`]) is exact;
/// the method determines how the resulting UFL instance is solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BestResponseMethod {
    /// Exact, by branch-and-bound. The default: exact at any size the
    /// experiments use.
    #[default]
    Exact,
    /// Exact, by subset enumeration. Limited to 24 candidate neighbours
    /// (i.e. `n <= 25`); used to cross-validate the branch-and-bound.
    ExactEnumeration,
    /// Greedy marginal-gain heuristic (`O(log)`-approximate).
    Greedy,
    /// Add/drop/swap local search seeded by greedy (locally optimal).
    LocalSearch,
}

impl BestResponseMethod {
    /// Returns `true` when the method guarantees an optimal response.
    #[must_use]
    pub fn is_exact(self) -> bool {
        matches!(
            self,
            BestResponseMethod::Exact | BestResponseMethod::ExactEnumeration
        )
    }
}

/// The outcome of a best-response computation for one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct BestResponse {
    /// The responding peer.
    pub peer: PeerId,
    /// The (near-)optimal strategy found.
    pub links: LinkSet,
    /// Cost of playing [`BestResponse::links`] against the fixed rest.
    pub cost: f64,
    /// Cost of the peer's current strategy in the same profile.
    pub current_cost: f64,
    /// Whether the method guarantees `links` is exactly optimal.
    pub exact: bool,
}

impl BestResponse {
    /// `current_cost − cost`, the incentive to deviate. Positive iff the
    /// response strictly improves. (`+∞` when the response connects a peer
    /// that currently cannot reach everyone.)
    #[must_use]
    pub fn improvement(&self) -> f64 {
        if self.current_cost.is_infinite() && self.cost.is_infinite() {
            0.0
        } else {
            self.current_cost - self.cost
        }
    }

    /// Returns `true` if the response improves by more than a relative
    /// tolerance `tol · (1 + |current_cost|)` — the standard test used by
    /// equilibrium checks to absorb floating-point noise.
    #[must_use]
    pub fn improves(&self, tol: f64) -> bool {
        if self.cost.is_infinite() {
            return false;
        }
        if self.current_cost.is_infinite() {
            return true;
        }
        self.cost < self.current_cost - tol * (1.0 + self.current_cost.abs())
    }
}

/// How a [`ResponseOracle::build_from_cache`] call sourced its candidate
/// rows: overlay-row reuse, residual-row hits, or fresh `G_{-i}` sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct OracleReuse {
    /// Candidate rows served verbatim from the overlay distance matrix.
    pub(crate) rows_reused: usize,
    /// Candidate rows served from retained residual `G_{-i}` rows.
    pub(crate) residual_hits: usize,
    /// Candidate rows that paid a fresh `G_{-i}` sweep.
    pub(crate) rows_swept: usize,
}

impl OracleReuse {
    /// Rows that did **not** pay a sweep, whatever tier served them.
    pub(crate) fn hits(&self) -> usize {
        self.rows_reused + self.residual_hits
    }
}

/// The best-response reduction: candidate links as facilities, other peers
/// as clients. Built once per (profile, peer) and reusable for evaluating
/// arbitrary candidate strategies cheaply.
pub(crate) struct ResponseOracle {
    /// Candidate link targets, in ascending peer order; facility `k`
    /// corresponds to `candidates[k]`.
    candidates: Vec<usize>,
    problem: FacilityProblem,
}

impl ResponseOracle {
    pub(crate) fn build(
        game: &Game,
        profile: &StrategyProfile,
        peer: PeerId,
    ) -> Result<Self, CoreError> {
        let mut scratch = DijkstraScratch::new();
        ResponseOracle::build_with(game, profile, peer, &mut scratch)
    }

    /// Like [`ResponseOracle::build`] but reuses caller-provided Dijkstra
    /// scratch memory (the `GameSession` hot path).
    pub(crate) fn build_with(
        game: &Game,
        profile: &StrategyProfile,
        peer: PeerId,
        scratch: &mut DijkstraScratch,
    ) -> Result<Self, CoreError> {
        let n = game.n();
        if peer.index() >= n {
            return Err(CoreError::PeerOutOfBounds {
                peer: peer.index(),
                n,
            });
        }
        let i = peer.index();
        let g_minus = topology_without_peer(game, profile, peer)?;
        let csr = CsrGraph::from_digraph(&g_minus);
        let candidates: Vec<usize> = (0..n).filter(|&v| v != i).collect();
        let mut assignment = Vec::with_capacity(candidates.len());
        for &v in &candidates {
            let buf = csr.dijkstra_row_with(v, scratch);
            let d_iv = game.distance(i, v);
            let row: Vec<f64> = candidates
                .iter()
                .map(|&j| (d_iv + buf[j]) / game.distance(i, j))
                .collect();
            assignment.push(row);
        }
        let problem = FacilityProblem::with_uniform_open_cost(game.alpha(), assignment)
            .expect("reduction produces non-negative costs by construction");
        Ok(ResponseOracle {
            candidates,
            problem,
        })
    }

    /// Like [`ResponseOracle::build_with`], but serves candidate rows
    /// from a persistent [`OracleCache`] instead of sweeping `G_{-i}`
    /// from every candidate.
    ///
    /// The oracle needs residual distances `D_{G_{-i}}(v, j)` — shortest
    /// paths that avoid `i`'s out-links. Per candidate `v`, in order:
    ///
    /// 1. the cached full-overlay row `d_G(v, ·)` is already that row
    ///    whenever **no** out-link of `i` is tight on any of `v`'s
    ///    shortest paths, checked in `O(deg(i))` with the same
    ///    conservative tightness test the cache's removal repair uses
    ///    (`d_v(i) + w > d_v(t)` beyond [`EDGE_ON_PATH_EPS`]; ties fall
    ///    through, so reuse never changes a value);
    /// 2. a **residual row** retained from an earlier build for the same
    ///    peer — kept exact across profile mutations by
    ///    [`OracleCache::repair_after_edges`] — is used as-is;
    /// 3. otherwise the row pays a fresh `G_{-i}` sweep, and the result
    ///    is retained for the next build (space permitting).
    ///
    /// Candidate rows that are **invalid** in the overlay tier skip
    /// straight to step 2 — the lazy refill leaves a row invalid exactly
    /// when the residual tier serves it, so step 3 only pays for rows no
    /// tier covers. Returns the oracle plus the per-tier row accounting.
    pub(crate) fn build_from_cache(
        game: &Game,
        profile: &StrategyProfile,
        peer: PeerId,
        cache: &mut OracleCache,
        scratch: &mut DijkstraScratch,
    ) -> Result<(Self, OracleReuse), CoreError> {
        let n = game.n();
        if peer.index() >= n {
            return Err(CoreError::PeerOutOfBounds {
                peer: peer.index(),
                n,
            });
        }
        let i = peer.index();
        let out: Vec<(usize, f64)> = profile
            .strategy(peer)
            .iter()
            .map(|t| (t.index(), game.distance(i, t.index())))
            .collect();
        let candidates: Vec<usize> = (0..n).filter(|&v| v != i).collect();
        // `G_{-i}` is only materialised if some row actually routes
        // through `i`, needs a fresh sweep, and no residual row covers it.
        let mut g_minus: Option<CsrGraph> = None;
        let mut reuse = OracleReuse::default();
        let mut assignment = Vec::with_capacity(candidates.len());
        for &v in &candidates {
            // A candidate row may legitimately be invalid in the overlay
            // tier: the lazy refill (`GameSession::ensure_rows_for_oracle`)
            // leaves rows alone when the residual tier already serves
            // them. The tier order is unchanged — overlay when valid and
            // clean, residual, fresh sweep — and every tier is exact, so
            // laziness never changes a value.
            let overlay = cache.row_is_valid(v).then(|| {
                let cached = cache.row(v);
                let d_vi = cached[i];
                out.iter()
                    .all(|&(t, w)| !edge_on_path(d_vi, w, cached[t], EDGE_ON_PATH_EPS))
            });
            let d_iv = game.distance(i, v);
            let assign = |residual: &[f64]| -> Vec<f64> {
                candidates
                    .iter()
                    .map(|&j| (d_iv + residual[j]) / game.distance(i, j))
                    .collect()
            };
            let row: Vec<f64> = if overlay == Some(true) {
                reuse.rows_reused += 1;
                assign(cache.row(v))
            } else if let Some(residual) = cache.residual_row(i, v) {
                reuse.residual_hits += 1;
                assign(residual)
            } else {
                reuse.rows_swept += 1;
                if g_minus.is_none() {
                    let g = topology_without_peer(game, profile, peer)
                        .expect("peer bounds checked above");
                    g_minus = Some(CsrGraph::from_digraph(&g));
                }
                let csr = g_minus.as_ref().expect("built above");
                let buf = csr.dijkstra_row_with(v, scratch);
                let row = assign(buf);
                cache.store_residual(i, v, buf);
                row
            };
            assignment.push(row);
        }
        let problem = FacilityProblem::with_uniform_open_cost(game.alpha(), assignment)
            .expect("reduction produces non-negative costs by construction");
        Ok((
            ResponseOracle {
                candidates,
                problem,
            },
            reuse,
        ))
    }

    /// First strictly improving single-link change (drop, add, swap — in
    /// that order) from `current`, or `None`. Shared by the free
    /// [`first_improving_move`] and `GameSession::first_improving_move`.
    pub(crate) fn first_improving_move(
        &self,
        peer: PeerId,
        current: &LinkSet,
        tol: f64,
    ) -> Option<BestResponse> {
        let current_cost = self.eval(current);
        let improves = |cost: f64| -> bool {
            if cost.is_infinite() {
                return false;
            }
            if current_cost.is_infinite() {
                return true;
            }
            cost < current_cost - tol * (1.0 + current_cost.abs())
        };
        let wrap = |links: LinkSet, cost: f64| BestResponse {
            peer,
            links,
            cost,
            current_cost,
            exact: false,
        };

        // Drops.
        for j in current.iter() {
            let cand = current.without(j);
            let c = self.eval(&cand);
            if improves(c) {
                return Some(wrap(cand, c));
            }
        }
        // Adds.
        for &v in self.candidates() {
            let vp = PeerId::new(v);
            if current.contains(vp) {
                continue;
            }
            let cand = current.with(vp);
            let c = self.eval(&cand);
            if improves(c) {
                return Some(wrap(cand, c));
            }
        }
        // Swaps.
        for j in current.iter() {
            for &v in self.candidates() {
                let vp = PeerId::new(v);
                if current.contains(vp) {
                    continue;
                }
                let cand = current.without(j).with(vp);
                let c = self.eval(&cand);
                if improves(c) {
                    return Some(wrap(cand, c));
                }
            }
        }
        None
    }

    /// Cost of `peer` playing `links` against the fixed rest — identical
    /// to [`peer_cost`] on the deviated profile (asserted by tests), but
    /// `O(n·|links|)` instead of a Dijkstra.
    pub(crate) fn eval(&self, links: &LinkSet) -> f64 {
        let open: Vec<usize> = links
            .iter()
            .map(|p| {
                self.candidates
                    .binary_search(&p.index())
                    .expect("link target must be a valid candidate")
            })
            .collect();
        self.problem.cost_of(&open)
    }

    pub(crate) fn solve(&self, method: BestResponseMethod) -> Result<(LinkSet, f64), CoreError> {
        let sol = match method {
            BestResponseMethod::Exact => solve_branch_and_bound(&self.problem),
            BestResponseMethod::ExactEnumeration => {
                solve_enumeration(&self.problem).map_err(|e| match e {
                    FacilityError::TooManyFacilities { facilities, limit } => {
                        CoreError::InstanceTooLarge {
                            n: facilities + 1,
                            limit: limit + 1,
                        }
                    }
                    other => panic!("unexpected facility error: {other}"),
                })?
            }
            BestResponseMethod::Greedy => solve_greedy(&self.problem),
            BestResponseMethod::LocalSearch => solve_local_search(&self.problem, None),
        };
        let links: LinkSet = sol.open.iter().map(|&f| self.candidates[f]).collect();
        Ok((links, sol.cost))
    }

    pub(crate) fn candidates(&self) -> &[usize] {
        &self.candidates
    }
}

/// Accounting for one [`first_improving_move_lazy`] scan: the exact-tier
/// row sourcing it shares with [`ResponseOracle::build_from_cache`], plus
/// the bound-tier outcomes unique to the lazy path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LazyScan {
    /// Exact-tier row accounting (overlay reuse / residual hits / sweeps).
    pub(crate) reuse: OracleReuse,
    /// Candidate moves rejected on a certified lower bound alone — no
    /// exact row for the new link target was ever materialised.
    pub(crate) certified_rejects: usize,
    /// Candidate moves whose lower bound passed the improvement test and
    /// therefore paid exact escalation.
    pub(crate) exact_evals: usize,
}

/// A candidate row in the lazy scan, already assignment-converted
/// (`(d_iv + D(v, j)) / d_met(i, j)` over client positions).
enum LazyRow {
    /// Not yet touched by any evaluation.
    Unresolved,
    /// A certified **lower bound** on the exact assignment row: either a
    /// valid-but-dirty overlay row (`d_G(v, ·) ≤ D_{G_{-i}}(v, ·)` since
    /// removing `i`'s links only lengthens paths) or the metric row
    /// (`d_met(v, ·) ≤ D_{G_{-i}}(v, ·)` by the triangle inequality).
    Lower(Vec<f64>),
    /// The exact residual assignment row (overlay-clean, residual-tier,
    /// or freshly swept — the same three tiers as
    /// [`ResponseOracle::build_from_cache`]).
    Exact(Vec<f64>),
}

/// Lazily resolved candidate rows for one `(profile, peer)` scan.
///
/// Unlike [`ResponseOracle::build_from_cache`], which materialises every
/// candidate row up front (and therefore pays a fresh `G_{-i}` sweep for
/// every row a move by a hub peer dirtied), this store resolves rows to
/// the *weakest sufficient tier*: certified lower bounds serve rejection,
/// and only candidates whose bound survives the improvement test pay for
/// exact rows. Every exact row comes from the identical tier order as the
/// eager build, so any move this scan **accepts** is bit-identical (same
/// links, same cost) to the eager scan's acceptance.
struct LazyRows<'a> {
    game: &'a Game,
    profile: &'a StrategyProfile,
    peer: PeerId,
    /// `peer`'s out-links `(target, weight)` for the overlay-clean test.
    out: Vec<(usize, f64)>,
    candidates: Vec<usize>,
    rows: Vec<LazyRow>,
    g_minus: Option<CsrGraph>,
}

impl<'a> LazyRows<'a> {
    fn new(game: &'a Game, profile: &'a StrategyProfile, peer: PeerId) -> Self {
        let i = peer.index();
        let out: Vec<(usize, f64)> = profile
            .strategy(peer)
            .iter()
            .map(|t| (t.index(), game.distance(i, t.index())))
            .collect();
        let candidates: Vec<usize> = (0..game.n()).filter(|&v| v != i).collect();
        let rows = (0..candidates.len()).map(|_| LazyRow::Unresolved).collect();
        LazyRows {
            game,
            profile,
            peer,
            out,
            candidates,
            rows,
            g_minus: None,
        }
    }

    fn assign(&self, v: usize, residual: &[f64]) -> Vec<f64> {
        let i = self.peer.index();
        let d_iv = self.game.distance(i, v);
        self.candidates
            .iter()
            .map(|&j| (d_iv + residual[j]) / self.game.distance(i, j))
            .collect()
    }

    /// Tries the two *free exact* tiers (overlay-clean, residual) shared
    /// with [`ResponseOracle::build_from_cache`]. Returns the exact row
    /// on a hit.
    fn try_free_exact(
        &mut self,
        k: usize,
        cache: &mut OracleCache,
        scan: &mut LazyScan,
    ) -> Option<Vec<f64>> {
        let i = self.peer.index();
        let v = self.candidates[k];
        let overlay = cache.row_is_valid(v).then(|| {
            let cached = cache.row(v);
            let d_vi = cached[i];
            self.out
                .iter()
                .all(|&(t, w)| !edge_on_path(d_vi, w, cached[t], EDGE_ON_PATH_EPS))
        });
        if overlay == Some(true) {
            scan.reuse.rows_reused += 1;
            return Some(self.assign(v, cache.row(v)));
        }
        if let Some(residual) = cache.residual_row(i, v) {
            scan.reuse.residual_hits += 1;
            return Some(self.assign(v, residual));
        }
        None
    }

    /// Ensures `rows[k]` holds at least a certified lower bound. Free
    /// exact tiers are preferred (they cost the same `O(n)` conversion);
    /// otherwise a valid-but-dirty overlay row, and failing that the
    /// metric row, serve as the bound — neither pays a sweep.
    fn ensure_bound(&mut self, k: usize, cache: &mut OracleCache, scan: &mut LazyScan) {
        if !matches!(self.rows[k], LazyRow::Unresolved) {
            return;
        }
        if let Some(exact) = self.try_free_exact(k, cache, scan) {
            self.rows[k] = LazyRow::Exact(exact);
            return;
        }
        let v = self.candidates[k];
        let lower = if cache.row_is_valid(v) {
            // Valid but dirty: a lower bound on the residual row.
            self.assign(v, cache.row(v))
        } else {
            // Metric lower bound: `D_{G_{-i}}(v, j) ≥ d_met(v, j)`.
            let metric: Vec<f64> = (0..self.game.n())
                .map(|j| self.game.distance(v, j))
                .collect();
            self.assign(v, &metric)
        };
        self.rows[k] = LazyRow::Lower(lower);
    }

    /// Ensures `rows[k]` is exact, sweeping `G_{-i}` if no free tier
    /// serves it (and retaining the swept row in the residual tier,
    /// exactly like the eager build).
    fn ensure_exact(
        &mut self,
        k: usize,
        cache: &mut OracleCache,
        scratch: &mut DijkstraScratch,
        scan: &mut LazyScan,
    ) {
        if matches!(self.rows[k], LazyRow::Exact(_)) {
            return;
        }
        let from_free = if matches!(self.rows[k], LazyRow::Unresolved) {
            self.try_free_exact(k, cache, scan)
        } else {
            // A `Lower` row already failed both free tiers; nothing in the
            // cache changes mid-scan except residual rows we store
            // ourselves, one per candidate, so re-checking cannot hit.
            None
        };
        if let Some(exact) = from_free {
            self.rows[k] = LazyRow::Exact(exact);
            return;
        }
        scan.reuse.rows_swept += 1;
        if self.g_minus.is_none() {
            let g = topology_without_peer(self.game, self.profile, self.peer)
                .expect("peer bounds checked by caller");
            self.g_minus = Some(CsrGraph::from_digraph(&g));
        }
        let csr = self.g_minus.as_ref().expect("built above");
        let v = self.candidates[k];
        let buf = csr.dijkstra_row_with(v, scratch);
        let row = self.assign(v, buf);
        cache.store_residual(self.peer.index(), v, buf);
        self.rows[k] = LazyRow::Exact(row);
    }

    /// `FacilityProblem::cost_of` replicated over the lazy rows: open
    /// costs accumulate per facility, then one ascending client pass
    /// taking the per-client min over open rows. With all-exact rows the
    /// result is bit-identical to the eager oracle's `eval`.
    fn cost_with(&self, open: &[usize]) -> f64 {
        let alpha = self.game.alpha();
        let mut total = 0.0;
        for _ in open {
            total += alpha;
        }
        for c in 0..self.candidates.len() {
            let mut best = f64::INFINITY;
            for &k in open {
                let row = match &self.rows[k] {
                    LazyRow::Lower(r) | LazyRow::Exact(r) => r,
                    LazyRow::Unresolved => unreachable!("open rows are resolved before eval"),
                };
                let a = row[c];
                if a < best {
                    best = a;
                }
            }
            total += best;
        }
        total
    }

    /// Exact cost of opening `open` (facility positions).
    fn eval_exact(
        &mut self,
        open: &[usize],
        cache: &mut OracleCache,
        scratch: &mut DijkstraScratch,
        scan: &mut LazyScan,
    ) -> f64 {
        for &k in open {
            self.ensure_exact(k, cache, scratch, scan);
        }
        self.cost_with(open)
    }

    /// Certified lower bound on the cost of opening `open`: per-entry
    /// `lower ≤ exact` makes every per-client min and hence the total a
    /// lower bound, so a bound that fails the improvement test certifies
    /// the exact cost fails it too.
    fn eval_lower(&mut self, open: &[usize], cache: &mut OracleCache, scan: &mut LazyScan) -> f64 {
        for &k in open {
            self.ensure_bound(k, cache, scan);
        }
        self.cost_with(open)
    }

    fn positions(&self, links: &LinkSet) -> Vec<usize> {
        links
            .iter()
            .map(|p| {
                self.candidates
                    .binary_search(&p.index())
                    .expect("link target must be a valid candidate")
            })
            .collect()
    }
}

/// Satellite-2 lazy better-response scan: [`first_improving_move`]
/// semantics with per-candidate row resolution.
///
/// The eager cached scan ([`ResponseOracle::build_from_cache`] +
/// [`ResponseOracle::first_improving_move`]) materialises **every**
/// candidate row before evaluating a single move, so one hub move that
/// dirties most overlay rows forces ~`n` fresh sweeps on the next scan
/// even though (at high `α`) almost every candidate move is hopeless.
/// This variant rejects candidate adds/swaps on **certified lower
/// bounds** — dirty overlay rows and metric rows, both provably `≤` the
/// exact residual rows — and escalates to exact rows only for candidates
/// whose bound survives the improvement test. Drops evaluate exact
/// directly (their rows are the current links', needed anyway).
///
/// Guarantee: the scan visits moves in the identical drop/add/swap order
/// with the identical improvement predicate, rejection by bound is sound
/// (`bound ≤ exact`, and the predicate is monotone in cost), and every
/// accepted move's cost comes from exact rows sourced by the same tier
/// order as the eager build — so the returned move (or `None`) is
/// **bit-identical** to the eager scan's.
pub(crate) fn first_improving_move_lazy(
    game: &Game,
    profile: &StrategyProfile,
    peer: PeerId,
    cache: &mut OracleCache,
    scratch: &mut DijkstraScratch,
    tol: f64,
) -> Result<(Option<BestResponse>, LazyScan), CoreError> {
    let n = game.n();
    if peer.index() >= n {
        return Err(CoreError::PeerOutOfBounds {
            peer: peer.index(),
            n,
        });
    }
    let mut scan = LazyScan::default();
    let mut rows = LazyRows::new(game, profile, peer);
    let current = profile.strategy(peer);
    let current_open = rows.positions(current);
    let current_cost = rows.eval_exact(&current_open, cache, scratch, &mut scan);
    let improves = |cost: f64| -> bool {
        if cost.is_infinite() {
            return false;
        }
        if current_cost.is_infinite() {
            return true;
        }
        cost < current_cost - tol * (1.0 + current_cost.abs())
    };
    let wrap = |links: LinkSet, cost: f64| BestResponse {
        peer,
        links,
        cost,
        current_cost,
        exact: false,
    };

    // Drops: all rows involved are current-link rows, already exact.
    for j in current.iter() {
        let cand = current.without(j);
        let open = rows.positions(&cand);
        let c = rows.eval_exact(&open, cache, scratch, &mut scan);
        if improves(c) {
            return Ok((Some(wrap(cand, c)), scan));
        }
    }
    // Adds: bound first, escalate only on a surviving bound.
    let candidates = rows.candidates.clone();
    for &v in &candidates {
        let vp = PeerId::new(v);
        if current.contains(vp) {
            continue;
        }
        let cand = current.with(vp);
        let open = rows.positions(&cand);
        let lb = rows.eval_lower(&open, cache, &mut scan);
        if !improves(lb) {
            scan.certified_rejects += 1;
            continue;
        }
        scan.exact_evals += 1;
        let c = rows.eval_exact(&open, cache, scratch, &mut scan);
        if improves(c) {
            return Ok((Some(wrap(cand, c)), scan));
        }
    }
    // Swaps.
    for j in current.iter() {
        for &v in &candidates {
            let vp = PeerId::new(v);
            if current.contains(vp) {
                continue;
            }
            let cand = current.without(j).with(vp);
            let open = rows.positions(&cand);
            let lb = rows.eval_lower(&open, cache, &mut scan);
            if !improves(lb) {
                scan.certified_rejects += 1;
                continue;
            }
            scan.exact_evals += 1;
            let c = rows.eval_exact(&open, cache, scratch, &mut scan);
            if improves(c) {
                return Ok((Some(wrap(cand, c)), scan));
            }
        }
    }
    Ok((None, scan))
}

/// Computes `peer`'s best response to `profile` (all other strategies
/// fixed).
///
/// The computation removes `peer`'s out-links, computes residual shortest
/// paths `D(v, j)`, and solves the facility-location instance with opening
/// cost `α` and assignment costs `(d(i,v) + D(v,j)) / d(i,j)` — an *exact*
/// reformulation of the peer's strategy space (shortest paths never
/// revisit the source).
///
/// # Errors
///
/// * [`CoreError::ProfileSizeMismatch`] / [`CoreError::PeerOutOfBounds`]
///   for malformed inputs;
/// * [`CoreError::InstanceTooLarge`] if
///   [`BestResponseMethod::ExactEnumeration`] is asked for more than 25
///   peers.
///
/// # Example
///
/// ```
/// use sp_core::{best_response, BestResponseMethod, Game, PeerId, StrategyProfile};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0]).unwrap(), 0.5).unwrap();
/// let p = StrategyProfile::empty(3);
/// let br = best_response(&game, &p, PeerId::new(0), BestResponseMethod::Exact).unwrap();
/// // From the empty profile the peer must link everyone it wants to reach.
/// assert_eq!(br.links.len(), 2);
/// assert!(br.improves(1e-9));
/// ```
pub fn best_response(
    game: &Game,
    profile: &StrategyProfile,
    peer: PeerId,
    method: BestResponseMethod,
) -> Result<BestResponse, CoreError> {
    // One-shot wrapper on a throwaway session: the fresh `G_{-i}` oracle
    // (`n - 1` sweeps) beats the cached path here, which would fill all
    // `n` overlay rows first and then drop the cache unread. Hot loops
    // hold a session and get `GameSession::best_response` reuse instead.
    crate::GameSession::from_refs(game, profile)?.best_response_uncached(peer, method)
}

/// Finds the first strictly improving **single-link** move (drop, add, or
/// swap, in that order, targets in ascending order) for `peer`, or `None`
/// if no such move improves by more than the relative tolerance.
///
/// This is the "better response" used by better-response dynamics; it is
/// much cheaper than a full best response and produces the small,
/// incremental topology changes discussed in the paper's Section 5.
///
/// # Errors
///
/// Same conditions as [`best_response`].
pub fn first_improving_move(
    game: &Game,
    profile: &StrategyProfile,
    peer: PeerId,
    tol: f64,
) -> Result<Option<BestResponse>, CoreError> {
    if game.n() <= 1 {
        if peer.index() >= game.n() {
            return Err(CoreError::PeerOutOfBounds {
                peer: peer.index(),
                n: game.n(),
            });
        }
        return Ok(None);
    }
    let oracle = ResponseOracle::build(game, profile, peer)?;
    Ok(oracle.first_improving_move(peer, profile.strategy(peer), tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{peer_cost, social_cost};
    use sp_metric::LineSpace;

    fn line_game(alpha: f64) -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap(), alpha).unwrap()
    }

    #[test]
    fn oracle_eval_matches_peer_cost() {
        let game = line_game(1.3);
        let p = StrategyProfile::from_links(4, &[(1, 0), (1, 2), (2, 3), (3, 0)]).unwrap();
        let peer = PeerId::new(0);
        let oracle = ResponseOracle::build(&game, &p, peer).unwrap();
        for links in [
            LinkSet::new(),
            [1usize].into_iter().collect::<LinkSet>(),
            [1usize, 3].into_iter().collect::<LinkSet>(),
            LinkSet::all_except(4, peer),
        ] {
            let via_oracle = oracle.eval(&links);
            let deviated = p.with_strategy(peer, links.clone()).unwrap();
            let direct = peer_cost(&game, &deviated, peer).unwrap();
            assert!(
                (via_oracle - direct).abs() < 1e-9
                    || (via_oracle.is_infinite() && direct.is_infinite()),
                "links {links}: oracle {via_oracle} vs direct {direct}"
            );
        }
    }

    #[test]
    fn exact_methods_agree() {
        let game = line_game(0.8);
        let p = StrategyProfile::from_links(4, &[(1, 0), (2, 1), (3, 2)]).unwrap();
        for peer in 0..4 {
            let a = best_response(&game, &p, PeerId::new(peer), BestResponseMethod::Exact).unwrap();
            let b = best_response(
                &game,
                &p,
                PeerId::new(peer),
                BestResponseMethod::ExactEnumeration,
            )
            .unwrap();
            assert!(
                (a.cost - b.cost).abs() < 1e-9,
                "peer {peer}: {} vs {}",
                a.cost,
                b.cost
            );
        }
    }

    #[test]
    fn best_response_cost_is_deviated_profile_cost() {
        let game = line_game(2.0);
        let p = StrategyProfile::empty(4);
        let br = best_response(&game, &p, PeerId::new(2), BestResponseMethod::Exact).unwrap();
        let deviated = p.with_strategy(PeerId::new(2), br.links.clone()).unwrap();
        let direct = peer_cost(&game, &deviated, PeerId::new(2)).unwrap();
        assert!((br.cost - direct).abs() < 1e-9);
        assert!(br.exact);
        assert!(br.improvement().is_infinite());
    }

    #[test]
    fn heuristics_never_beat_exact() {
        let game = line_game(1.0);
        let p = StrategyProfile::from_links(4, &[(0, 3), (3, 0), (1, 2), (2, 1)]).unwrap();
        for peer in 0..4 {
            let exact =
                best_response(&game, &p, PeerId::new(peer), BestResponseMethod::Exact).unwrap();
            for m in [BestResponseMethod::Greedy, BestResponseMethod::LocalSearch] {
                let h = best_response(&game, &p, PeerId::new(peer), m).unwrap();
                assert!(h.cost >= exact.cost - 1e-9);
                assert!(!h.exact);
                // Heuristic responses never exceed the current cost.
                assert!(h.cost <= h.current_cost + 1e-9 || h.current_cost.is_infinite());
            }
        }
    }

    #[test]
    fn single_peer_game_trivial_response() {
        let game = Game::from_space(&LineSpace::new(vec![0.0]).unwrap(), 1.0).unwrap();
        let p = StrategyProfile::empty(1);
        let br = best_response(&game, &p, PeerId::new(0), BestResponseMethod::Exact).unwrap();
        assert!(br.links.is_empty());
        assert_eq!(br.cost, 0.0);
    }

    #[test]
    fn first_improving_move_connects_isolated_peer() {
        let game = line_game(0.5);
        let p = StrategyProfile::from_links(4, &[(1, 0), (1, 2), (2, 3), (3, 1), (0, 1)]).unwrap();
        // Remove peer 0's link: it becomes disconnected.
        let mut q = p.clone();
        q.set_strategy(PeerId::new(0), LinkSet::new()).unwrap();
        let mv = first_improving_move(&game, &q, PeerId::new(0), 1e-9).unwrap();
        let mv = mv.expect("an isolated peer must want to add a link");
        assert_eq!(mv.links.len(), 1);
        assert!(mv.cost.is_finite());
    }

    #[test]
    fn no_improving_move_in_clear_equilibrium() {
        // Two peers: each must link the other; any change disconnects or
        // adds nothing.
        let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0]).unwrap(), 1.0).unwrap();
        let p = StrategyProfile::complete(2);
        for i in 0..2 {
            assert!(first_improving_move(&game, &p, PeerId::new(i), 1e-9)
                .unwrap()
                .is_none());
        }
    }

    #[test]
    fn improvement_and_improves_edge_cases() {
        let br = BestResponse {
            peer: PeerId::new(0),
            links: LinkSet::new(),
            cost: f64::INFINITY,
            current_cost: f64::INFINITY,
            exact: true,
        };
        assert_eq!(br.improvement(), 0.0);
        assert!(!br.improves(1e-9));
        let br2 = BestResponse {
            cost: 5.0,
            current_cost: f64::INFINITY,
            ..br.clone()
        };
        assert!(br2.improves(1e-9));
        assert!(br2.improvement().is_infinite());
        let br3 = BestResponse {
            cost: 5.0,
            current_cost: 5.0 + 1e-12,
            ..br.clone()
        };
        assert!(!br3.improves(1e-9));
    }

    #[test]
    fn best_response_reduces_social_cost_when_played() {
        // Sanity: a strictly improving response strictly lowers the
        // deviating peer's cost (social cost may move either way).
        let game = line_game(0.5);
        let p = StrategyProfile::empty(4);
        let br = best_response(&game, &p, PeerId::new(0), BestResponseMethod::Exact).unwrap();
        assert!(br.improves(1e-9));
        let q = p.with_strategy(PeerId::new(0), br.links.clone()).unwrap();
        let _ = social_cost(&game, &q).unwrap();
        assert!(peer_cost(&game, &q, PeerId::new(0)).unwrap() < f64::INFINITY);
    }
}
