//! Session-oriented game evaluation with cached overlay state.
//!
//! The free functions ([`peer_cost`](crate::peer_cost),
//! [`social_cost`](crate::social_cost), …) rebuild the overlay graph and
//! rerun shortest paths on every call, which is wasteful in hot loops
//! like best-response dynamics where successive queries differ by a
//! single peer's out-links. A [`GameSession`] owns the game and the
//! current profile and keeps three derived structures resident:
//!
//! * the overlay CSR snapshot;
//! * the overlay distance matrix, with **per-row validity** — rows are
//!   (re)computed lazily, one Dijkstra sweep at a time;
//! * the stretch matrix, derived from the distances on demand.
//!
//! [`GameSession::apply`] mutates the profile through [`Move`]s and
//! repairs the cache incrementally instead of discarding it:
//!
//! * a row `u` survives a **removed** link `(i, j)` untouched when no
//!   shortest path from `u` used that link (checked in `O(1)` per row
//!   per removed link via `d_u(i) + w(i,j) > d_u(j)`);
//! * an **added** link `(i, j)` triggers a decrease-only re-relaxation
//!   seeded at `j` ([`sp_graph::CsrGraph::relax_decrease_into`]) — work
//!   proportional to the region whose distances actually improve, not a
//!   full APSP;
//! * rows that cannot be repaired cheaply are merely marked invalid and
//!   recomputed the next time something reads them.
//!
//! Multi-move churn events (a simultaneous round, a peer departure) go
//! through [`GameSession::apply_batch`], which folds any number of
//! [`Move`]s into **one** profile mutation, **one** CSR rebuild, and a
//! **single** repair pass: one removed-edge tightness scan over the
//! valid rows against the union of all removed links, and one seeded
//! decrease-only relaxation per surviving row covering all added links.
//! Bulk row refills (a cold [`GameSession::social_cost`], the rows
//! dropped by a batch) are sharded over `std::thread::available_parallelism`
//! scoped worker threads ([`sp_graph::CsrGraph::dijkstra_rows_with`]),
//! each with its own [`DijkstraScratch`].
//!
//! Both row tiers — the overlay matrix and the residual `G_{-i}` rows
//! that back the best-response oracles — live in one
//! [`OracleCache`](crate::oracle_cache), so every oracle the session
//! hands out (a sequential [`GameSession::best_response`] activation,
//! the sharded [`GameSession::best_responses_round`] fan-out) is served
//! and invalidated by the same code path. The uncached variants
//! ([`GameSession::best_response_uncached`],
//! [`GameSession::first_improving_move_uncached`]) sweep a fresh
//! `G_{-i}` oracle per call; they are the reference the cached paths are
//! property-tested bit-identical against, and the baseline the
//! `sequential_reuse` bench measures the cache's savings from.
//!
//! [`SessionStats`] counts the sweeps actually performed, so benchmarks
//! and tests can verify the cache earns its keep.
//!
//! # Backends
//!
//! Everything above describes the **dense** backend — the default, and
//! the exact reference. A session can instead be created in **sparse**
//! mode ([`GameSession::new_sparse`]), which swaps the `O(n²)` distance
//! matrix for landmark sketches plus bounded-radius sweeps (see
//! [`crate::backend`] for the mode-selection guidance). Sparse sessions
//! answer the heuristic [`GameSession::local_response`] without ever
//! materialising a matrix, and route the certified queries
//! (`best_response`, `nash_gap`, `is_nash`) through exact per-peer
//! `G_{-i}` sweeps — `O(n)` memory at a time — counted in
//! [`SessionStats::sparse_exact_fallbacks`].

use std::sync::Arc;

use sp_graph::{CsrGraph, DiGraph, DijkstraScratch, DistanceMatrix};

use crate::backend::{BackendMode, DenseBackend, SessionBackend};
use crate::best_response::{first_improving_move_lazy, OracleReuse, ResponseOracle};
use crate::cost::peer_cost_from_distances;
use crate::equilibrium::{Deviation, NashReport, NashTest};
use crate::sparse::{LocalCounts, SparseBackend, SparseParams};
use crate::{
    BestResponse, BestResponseMethod, CoreError, Game, LinkSet, PeerId, SocialCost, StrategyProfile,
};

/// Relative tolerance for the "was this removed edge on a shortest
/// path?" test. Conservative: ties invalidate the row (costs a recompute,
/// never correctness). Shared with the best-response oracle's cached-row
/// reuse test, which asks the same question about a peer's out-links.
pub(crate) const EDGE_ON_PATH_EPS: f64 = 1e-9;

/// Minimum number of invalid rows before a bulk refill shards the sweeps
/// over worker threads; below this the per-thread spawn cost outweighs
/// the Dijkstra work on the instance sizes the workspace runs.
const PAR_ROWS_MIN: usize = 32;

/// Minimum number of activated peers before
/// [`GameSession::best_responses_round`] shards its oracles over worker
/// threads under automatic parallelism; smaller rounds run on the calling
/// thread (still against the shared round-start snapshot).
const PAR_ORACLES_MIN: usize = 8;

/// A unilateral change to the current profile, applied through
/// [`GameSession::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Move {
    /// Replace `peer`'s entire out-link set (what best-response dynamics
    /// does each accepted activation).
    SetStrategy {
        /// The moving peer.
        peer: PeerId,
        /// Its new out-links.
        links: LinkSet,
    },
    /// Add the single link `from → to`.
    AddLink {
        /// Link owner.
        from: PeerId,
        /// Link target.
        to: PeerId,
    },
    /// Remove the single link `from → to`.
    RemoveLink {
        /// Link owner.
        from: PeerId,
        /// Link target.
        to: PeerId,
    },
}

/// Counters describing how much shortest-path work a session performed.
///
/// `full_sssp / n` is the number of APSP-equivalents actually computed;
/// the legacy rebuild-per-call path performs one full APSP per
/// `social_cost` and one sweep (plus a topology rebuild) per `peer_cost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Overlay CSR snapshots built.
    pub csr_rebuilds: usize,
    /// Full single-source sweeps (one distance-matrix row from scratch).
    pub full_sssp: usize,
    /// Seeded decrease-only re-relaxations (cheap incremental repairs).
    pub incremental_relaxations: usize,
    /// Rows dropped by [`GameSession::apply`] because a removed link may
    /// have carried a shortest path.
    pub rows_invalidated: usize,
    /// Rows that survived an [`GameSession::apply`] untouched or via a
    /// cheap repair.
    pub rows_preserved: usize,
    /// Best-response oracles built (each costs `n - 1` sweeps, counted
    /// separately from `full_sssp`).
    pub oracle_builds: usize,
    /// Calls to [`GameSession::apply_batch`] that reached the repair pass
    /// (batches that were pure no-ops are not counted).
    pub batch_applies: usize,
    /// Individual moves folded into those batched applies.
    pub batch_moves: usize,
    /// Bulk row refills that ran sharded over worker threads.
    pub parallel_passes: usize,
    /// Rows recomputed inside parallel passes (also counted in
    /// [`SessionStats::full_sssp`]).
    pub parallel_rows: usize,
    /// Calls to [`GameSession::best_responses_round`] that actually
    /// fanned oracles out over worker shards.
    pub oracle_parallel_rounds: usize,
    /// Worker shards spawned across those parallel rounds.
    pub oracle_shards: usize,
    /// Oracle candidate rows served from the round-frozen distance
    /// snapshot instead of a fresh `G_{-i}` sweep.
    pub oracle_rows_reused: usize,
    /// Oracle candidate rows that did pay a fresh `G_{-i}` sweep (the
    /// candidate's shortest paths may route through the responding peer).
    pub oracle_rows_swept: usize,
    /// Candidate rows served without a sweep by **sequential** cached
    /// oracle builds ([`GameSession::best_response`],
    /// [`GameSession::first_improving_move`], `nash_gap`, `is_nash`) —
    /// overlay-row reuse plus residual-row hits. The round engine's
    /// reuse is counted separately in
    /// [`SessionStats::oracle_rows_reused`].
    pub seq_oracle_hits: usize,
    /// Residual `G_{-i}` rows dropped by [`GameSession::apply`] /
    /// [`GameSession::apply_batch`] repair because a removed link (owned
    /// by another peer) could have been tight on them.
    pub seq_oracle_invalidated: usize,
    /// Candidate rows that paid a fresh `G_{-i}` sweep inside sequential
    /// cached oracle builds (neither cache tier could serve them).
    pub seq_oracle_swept: usize,
    /// Invalid overlay rows a cached oracle build did **not** refill
    /// because the residual tier already served them (the lazy-refill
    /// path; each skip saves one full sweep `ensure_all_rows` would have
    /// paid).
    pub seq_refills_skipped: usize,
    /// Snapshots exported via [`GameSession::snapshot`] — the spill half
    /// of an eviction cycle in a session registry.
    pub snapshot_exports: usize,
    /// `1` when this session was rebuilt by [`GameSession::restore`]
    /// (registries count restores by summing this over live sessions).
    pub snapshot_restores: usize,
    /// Landmark sketch rows swept by a sparse backend — the initial
    /// `2·L` build rows plus every row the post-move repair rebuilt
    /// (also counted in [`SessionStats::full_sssp`]).
    pub sparse_sketch_rows: usize,
    /// Bounded-radius Dijkstra sweeps performed by
    /// [`GameSession::local_response`] candidate evaluation.
    pub sparse_ball_sweeps: usize,
    /// Demand entries a sparse candidate evaluation answered with a
    /// certified sketch upper bound instead of an exact distance.
    pub sparse_sketch_hits: usize,
    /// Candidate moves a sparse [`GameSession::local_response`] pruned on
    /// the stretch-floor bound without evaluating them.
    pub sparse_pruned_candidates: usize,
    /// Certified queries on a sparse session that fell back to exact
    /// `G_{-i}` evaluation (`best_response`, `nash_gap`, `is_nash`,
    /// `first_improving_move`, and `local_response` on instances small
    /// enough that the window covers every peer).
    pub sparse_exact_fallbacks: usize,
    /// Candidate moves the lazy oracle scan
    /// ([`GameSession::set_lazy_oracle`]) rejected on a certified lower
    /// bound alone — each one skips materialising an exact row that the
    /// eager scan would have swept or converted.
    pub lazy_certified_rejects: usize,
    /// Candidate moves whose lazy lower bound survived the improvement
    /// test and therefore paid exact escalation.
    pub lazy_exact_evals: usize,
}

impl SessionStats {
    /// Full APSP-equivalents computed for cost queries: `full_sssp / n`.
    #[must_use]
    pub fn apsp_equivalents(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.full_sssp as f64 / n as f64
        }
    }

    /// Adds every counter of `other` into `self` — the one true way to
    /// aggregate stats across forks, rounds, or repeated runs. The
    /// exhaustive destructure makes "added a field, forgot a merge
    /// site" a compile error, and the `counters` marker lets `sp-lint`
    /// cross-check the field list besides.
    // sp-lint: counters(SessionStats)
    pub fn merge(&mut self, other: &SessionStats) {
        let SessionStats {
            csr_rebuilds,
            full_sssp,
            incremental_relaxations,
            rows_invalidated,
            rows_preserved,
            oracle_builds,
            batch_applies,
            batch_moves,
            parallel_passes,
            parallel_rows,
            oracle_parallel_rounds,
            oracle_shards,
            oracle_rows_reused,
            oracle_rows_swept,
            seq_oracle_hits,
            seq_oracle_invalidated,
            seq_oracle_swept,
            seq_refills_skipped,
            snapshot_exports,
            snapshot_restores,
            sparse_sketch_rows,
            sparse_ball_sweeps,
            sparse_sketch_hits,
            sparse_pruned_candidates,
            sparse_exact_fallbacks,
            lazy_certified_rejects,
            lazy_exact_evals,
        } = *other;
        self.csr_rebuilds += csr_rebuilds;
        self.full_sssp += full_sssp;
        self.incremental_relaxations += incremental_relaxations;
        self.rows_invalidated += rows_invalidated;
        self.rows_preserved += rows_preserved;
        self.oracle_builds += oracle_builds;
        self.batch_applies += batch_applies;
        self.batch_moves += batch_moves;
        self.parallel_passes += parallel_passes;
        self.parallel_rows += parallel_rows;
        self.oracle_parallel_rounds += oracle_parallel_rounds;
        self.oracle_shards += oracle_shards;
        self.oracle_rows_reused += oracle_rows_reused;
        self.oracle_rows_swept += oracle_rows_swept;
        self.seq_oracle_hits += seq_oracle_hits;
        self.seq_oracle_invalidated += seq_oracle_invalidated;
        self.seq_oracle_swept += seq_oracle_swept;
        self.seq_refills_skipped += seq_refills_skipped;
        self.snapshot_exports += snapshot_exports;
        self.snapshot_restores += snapshot_restores;
        self.sparse_sketch_rows += sparse_sketch_rows;
        self.sparse_ball_sweeps += sparse_ball_sweeps;
        self.sparse_sketch_hits += sparse_sketch_hits;
        self.sparse_pruned_candidates += sparse_pruned_candidates;
        self.sparse_exact_fallbacks += sparse_exact_fallbacks;
        self.lazy_certified_rejects += lazy_certified_rejects;
        self.lazy_exact_evals += lazy_exact_evals;
    }
}

/// A faithful, game-independent capture of a [`GameSession`]'s mutable
/// state: the profile plus both warm cache tiers, exactly as they stand.
///
/// [`GameSession::restore`] rebuilds a session from a snapshot and the
/// (immutable) [`Game`] such that every subsequent query answers
/// **bit-identically** to the source session — the contract that lets a
/// service spill sessions to disk under memory pressure and page them
/// back in without observable effect. Row vectors are stored in
/// deterministic order (overlay rows by source, residual rows by
/// `(excluded, source)`), so equal sessions produce equal snapshots.
///
/// The snapshot deliberately omits derived state (the overlay CSR and the
/// stretch matrix are recomputed lazily from the profile and the distance
/// rows without any shortest-path sweeps) and the work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The strategy profile at capture time.
    pub profile: StrategyProfile,
    /// Valid overlay distance rows as `(source, distances)`, ascending.
    pub overlay_rows: Vec<(usize, Vec<f64>)>,
    /// Retained residual rows as `(excluded, source, distances)`, sorted.
    pub residual_rows: Vec<(usize, usize, Vec<f64>)>,
}

/// A stateful evaluation handle: a [`Game`], the current
/// [`StrategyProfile`], and lazily maintained overlay caches.
///
/// All query methods take `&mut self` because they fill caches on
/// demand; none of them changes the profile. Only [`GameSession::apply`]
/// and [`GameSession::set_profile`] do.
///
/// # Example
///
/// ```
/// use sp_core::{GameSession, Move, Game, PeerId, StrategyProfile};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 3.0]).unwrap(), 1.0).unwrap();
/// let chain = StrategyProfile::from_links(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
/// let mut session = GameSession::new(game, chain).unwrap();
///
/// let before = session.social_cost().total();
/// session.apply(Move::AddLink { from: PeerId::new(0), to: PeerId::new(2) }).unwrap();
/// let after = session.social_cost().total();
/// // The extra link costs α = 1 and saves no stretch on a line.
/// assert_eq!(after, before + 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct GameSession {
    /// The immutable game, reference-counted so
    /// [`GameSession::fork_readonly`] shards share one copy of the
    /// underlying O(n²) distance matrix instead of cloning it per shard.
    game: Arc<Game>,
    profile: StrategyProfile,
    /// Overlay CSR snapshot; `None` when no query has needed it yet (or
    /// after a full reset).
    csr: Option<CsrGraph>,
    /// The pluggable distance backend. Dense sessions hold the two-tier
    /// row cache (overlay distance rows with per-row validity plus
    /// retained residual `G_{-i}` oracle rows); sparse sessions hold
    /// landmark sketches and bounded-sweep state. Both are repaired —
    /// never discarded — by [`GameSession::apply`] / `apply_batch`.
    backend: SessionBackend,
    /// Cached stretch matrix; cleared by every profile mutation.
    stretch: Option<DistanceMatrix>,
    scratch: DijkstraScratch,
    /// Worker-thread override for bulk row refills; `None` = auto.
    parallelism: Option<usize>,
    /// When set (dense sessions only), [`GameSession::first_improving_move`]
    /// runs the lazy certified-bound scan instead of the eager cached
    /// oracle build. Off by default; opt in via
    /// [`GameSession::set_lazy_oracle`].
    lazy_oracle: bool,
    stats: SessionStats,
}

/// Which [`SessionStats`] bucket a cached oracle build counts into:
/// sequential activations vs the simultaneous-round fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OracleCounter {
    Sequential,
    Round,
}

impl GameSession {
    /// Creates a session owning `game` and `profile`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProfileSizeMismatch`] when the profile and
    /// game disagree on the number of peers.
    pub fn new(game: Game, profile: StrategyProfile) -> Result<Self, CoreError> {
        if profile.n() != game.n() {
            return Err(CoreError::ProfileSizeMismatch {
                expected: game.n(),
                actual: profile.n(),
            });
        }
        let n = game.n();
        Ok(GameSession {
            game: Arc::new(game),
            profile,
            csr: None,
            backend: SessionBackend::Dense(DenseBackend::new(n)),
            stretch: None,
            scratch: DijkstraScratch::new(),
            parallelism: None,
            lazy_oracle: false,
            stats: SessionStats::default(),
        })
    }

    /// Convenience constructor cloning borrowed inputs — what the legacy
    /// free-function wrappers use.
    ///
    /// # Errors
    ///
    /// Same as [`GameSession::new`].
    pub fn from_refs(game: &Game, profile: &StrategyProfile) -> Result<Self, CoreError> {
        GameSession::new(game.clone(), profile.clone())
    }

    /// Creates a session on the **sparse** landmark backend with default
    /// [`SparseParams`] — the mode for instances too large for the dense
    /// `8n²`-byte matrix. See [`crate::backend`] for when to pick which
    /// mode.
    ///
    /// # Errors
    ///
    /// Same as [`GameSession::new`].
    pub fn new_sparse(game: Game, profile: StrategyProfile) -> Result<Self, CoreError> {
        GameSession::new_sparse_with(game, profile, SparseParams::default())
    }

    /// Like [`GameSession::new_sparse`] with explicit tuning parameters.
    ///
    /// # Errors
    ///
    /// Same as [`GameSession::new`].
    pub fn new_sparse_with(
        game: Game,
        profile: StrategyProfile,
        params: SparseParams,
    ) -> Result<Self, CoreError> {
        if profile.n() != game.n() {
            return Err(CoreError::ProfileSizeMismatch {
                expected: game.n(),
                actual: profile.n(),
            });
        }
        let backend = SessionBackend::Sparse(Box::new(SparseBackend::new(&game, params)));
        Ok(GameSession {
            game: Arc::new(game),
            profile,
            csr: None,
            backend,
            stretch: None,
            scratch: DijkstraScratch::new(),
            parallelism: None,
            lazy_oracle: false,
            stats: SessionStats::default(),
        })
    }

    /// Which backend this session evaluates on.
    #[must_use]
    pub fn backend_mode(&self) -> BackendMode {
        self.backend.mode()
    }

    /// The sparse tuning parameters, when this is a sparse session
    /// (`None` on dense sessions) — what a service persists so a
    /// restored session behaves identically.
    #[must_use]
    pub fn sparse_params(&self) -> Option<SparseParams> {
        if self.backend.is_sparse() {
            Some(*self.backend.sparse().params())
        } else {
            None
        }
    }

    /// Routes [`GameSession::first_improving_move`] through the lazy
    /// certified-bound oracle scan (dense sessions only; sparse sessions
    /// ignore the flag — their fallback path is already exact). The lazy
    /// scan returns **bit-identical** moves while skipping exact row
    /// materialisation for candidates rejected on a certified lower
    /// bound; see [`SessionStats::lazy_certified_rejects`].
    pub fn set_lazy_oracle(&mut self, on: bool) {
        self.lazy_oracle = on;
    }

    /// The game being evaluated.
    #[must_use]
    pub fn game(&self) -> &Game {
        &self.game
    }

    /// A shared handle to the game — what service layers clone to keep
    /// the game alive while the session itself is mutably borrowed (the
    /// dynamics runner borrows the game and the session at once), without
    /// copying the O(n²) distance matrix.
    #[must_use]
    pub fn game_arc(&self) -> Arc<Game> {
        Arc::clone(&self.game)
    }

    /// The current profile.
    #[must_use]
    pub fn profile(&self) -> &StrategyProfile {
        &self.profile
    }

    /// Number of peers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.game.n()
    }

    /// Consumes the session, returning the current profile.
    #[must_use]
    pub fn into_profile(self) -> StrategyProfile {
        self.profile
    }

    /// Forks a read-only evaluation snapshot of the current state — the
    /// per-shard session behind [`GameSession::best_responses_round`].
    ///
    /// The fork **shares** the immutable [`Game`] (one atomic increment,
    /// no O(n²) distance-matrix copy) and snapshots the mutable caches as
    /// they stand: the overlay CSR, the distance matrix with its per-row
    /// validity, and the profile. Nothing is recomputed. The fork gets a
    /// fresh [`DijkstraScratch`] (so shards never contend) and zeroed
    /// [`SessionStats`], and its bulk refills are pinned to the calling
    /// thread (`Some(1)`) — shards must not nest worker pools. Retained
    /// residual oracle rows are **not** carried into the fork (a shard
    /// lives for one round and would never read its own stores), so the
    /// fork is cheap even when the parent's residual cache is full.
    ///
    /// The fork is an independent session: mutating it (or the parent)
    /// never affects the other.
    #[must_use]
    pub fn fork_readonly(&self) -> GameSession {
        let backend = match &self.backend {
            SessionBackend::Dense(b) => {
                SessionBackend::Dense(DenseBackend::from_cache(b.cache.fork()))
            }
            // Sparse state is already O(n); clone it wholesale so the
            // fork answers sketch queries without resweeping landmarks.
            SessionBackend::Sparse(b) => SessionBackend::Sparse(b.clone()),
        };
        GameSession {
            game: Arc::clone(&self.game),
            profile: self.profile.clone(),
            csr: self.csr.clone(),
            backend,
            stretch: None,
            scratch: DijkstraScratch::new(),
            parallelism: Some(1),
            lazy_oracle: self.lazy_oracle,
            stats: SessionStats::default(),
        }
    }

    /// Work counters accumulated since creation (or the last
    /// [`GameSession::reset_stats`]).
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Zeroes the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = SessionStats::default();
    }

    /// Shrinks (or grows) the byte budget behind the retained-residual
    /// oracle tier. The default budget (64 MiB) assumes this session is
    /// the process's main tenant; a multi-session host like the
    /// `sp-serve` registry calls this with a per-tenant slice so one
    /// oracle-heavy session cannot monopolise the host's memory — and so
    /// its spill snapshots stay proportionate. Affects only how many
    /// rows are *retained* (work), never the value any tier serves
    /// (bit-identity is cap-independent).
    pub fn set_residual_budget(&mut self, bytes: usize) {
        if !self.backend.is_sparse() {
            self.backend.dense_mut().set_budget(bytes);
        }
    }

    /// Semantic size of this session's mutable state in bytes: the
    /// profile, the overlay CSR snapshot, the cached stretch matrix, and
    /// both tiers of the oracle cache. The (shared, immutable) [`Game`]
    /// is excluded — registries account for it per slot, since sessions
    /// may share one game through [`GameSession::game_arc`].
    ///
    /// Sizes are computed from the data's shape, not from allocator
    /// bookkeeping, so the same session state reports the same bytes on
    /// every machine — which is what lets a registry's eviction decisions
    /// (and the benches that count them) stay deterministic.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let n = self.game.n();
        let usize_b = std::mem::size_of::<usize>();
        let f64_b = std::mem::size_of::<f64>();
        let profile = n * std::mem::size_of::<LinkSet>()
            + self.profile.link_count() * std::mem::size_of::<PeerId>();
        let csr = self.csr.as_ref().map_or(0, |c| {
            (n + 1) * usize_b + c.edge_count() * (usize_b + f64_b)
        });
        let stretch = self.stretch.as_ref().map_or(0, |_| n * n * f64_b);
        profile + csr + stretch + self.backend.memory_bytes()
    }

    /// Captures the session's mutable state — profile plus both warm
    /// cache tiers — for spill-to-disk persistence. See
    /// [`SessionSnapshot`] for the fidelity contract.
    #[must_use]
    pub fn snapshot(&mut self) -> SessionSnapshot {
        self.stats.snapshot_exports += 1;
        if self.backend.is_sparse() {
            // Sparse sessions carry no spillable row tiers: the sketch is
            // cheap to rebuild (2·L sweeps) and is never part of the
            // bit-identity contract, so the snapshot is just the profile.
            return SessionSnapshot {
                profile: self.profile.clone(),
                overlay_rows: Vec::new(),
                residual_rows: Vec::new(),
            };
        }
        SessionSnapshot {
            profile: self.profile.clone(),
            overlay_rows: self
                .backend
                .dense()
                .valid_rows()
                .map(|(u, row)| (u, row.to_vec()))
                .collect(),
            residual_rows: self
                .backend
                .dense()
                .residual_rows_sorted()
                .into_iter()
                .map(|(i, v, row)| (i, v, row.to_vec()))
                .collect(),
        }
    }

    /// Rebuilds a session from `game` and a snapshot captured by
    /// [`GameSession::snapshot`]: the profile and both cache tiers are
    /// installed verbatim, so every query on the restored session
    /// answers bit-identically to the source session (property-tested in
    /// `crates/serve/tests/proptest_snapshot.rs`). Work counters start
    /// fresh except [`SessionStats::snapshot_restores`], which is `1`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ProfileSizeMismatch`] when the profile disagrees
    ///   with the game on the peer count;
    /// * [`CoreError::InvalidSnapshot`] for malformed rows (wrong
    ///   length, out-of-range or duplicate indices, self-residuals).
    pub fn restore(game: Game, snapshot: SessionSnapshot) -> Result<Self, CoreError> {
        let mut session = GameSession::new(game, snapshot.profile)?;
        let n = session.game.n();
        let bad = |reason: String| CoreError::InvalidSnapshot { reason };
        let mut last_u: Option<usize> = None;
        for (u, row) in &snapshot.overlay_rows {
            if *u >= n {
                return Err(bad(format!(
                    "overlay row source {u} out of range for n={n}"
                )));
            }
            if last_u.is_some_and(|p| p >= *u) {
                return Err(bad("overlay rows not strictly ascending".to_owned()));
            }
            last_u = Some(*u);
            if row.len() != n {
                return Err(bad(format!(
                    "overlay row {u} has {} entries, expected {n}",
                    row.len()
                )));
            }
            session.backend.dense_mut().restore_row(*u, row);
        }
        let mut last_key: Option<(usize, usize)> = None;
        for (i, v, row) in snapshot.residual_rows {
            if i >= n || v >= n || i == v {
                return Err(bad(format!(
                    "residual row key ({i}, {v}) invalid for n={n}"
                )));
            }
            if last_key.is_some_and(|p| p >= (i, v)) {
                return Err(bad("residual rows not strictly ascending".to_owned()));
            }
            last_key = Some((i, v));
            if row.len() != n {
                return Err(bad(format!(
                    "residual row ({i}, {v}) has {} entries, expected {n}",
                    row.len()
                )));
            }
            session.backend.dense_mut().restore_residual(i, v, row);
        }
        session.stats.snapshot_restores = 1;
        Ok(session)
    }

    /// Rebuilds a **sparse** session from a profile-only snapshot (what
    /// [`GameSession::snapshot`] produces for sparse sessions). Work
    /// counters start fresh except [`SessionStats::snapshot_restores`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`GameSession::new_sparse_with`].
    pub fn restore_sparse(
        game: Game,
        profile: StrategyProfile,
        params: SparseParams,
    ) -> Result<Self, CoreError> {
        let mut session = GameSession::new_sparse_with(game, profile, params)?;
        session.stats.snapshot_restores = 1;
        Ok(session)
    }

    /// Replaces the whole profile, discarding every cache. Prefer
    /// [`GameSession::apply`] for single-peer changes — that is the
    /// operation the incremental repair is built for.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProfileSizeMismatch`] on size disagreement.
    pub fn set_profile(&mut self, profile: StrategyProfile) -> Result<(), CoreError> {
        if profile.n() != self.game.n() {
            return Err(CoreError::ProfileSizeMismatch {
                expected: self.game.n(),
                actual: profile.n(),
            });
        }
        self.profile = profile;
        self.invalidate_all();
        Ok(())
    }

    fn invalidate_all(&mut self) {
        self.csr = None;
        self.backend.invalidate();
        self.stretch = None;
    }

    /// Applies a unilateral move, repairing the distance cache
    /// incrementally, and returns the links the peer held before.
    ///
    /// # Errors
    ///
    /// * [`CoreError::PeerOutOfBounds`] for out-of-range peers (either
    ///   endpoint of a single-link move, or a target inside
    ///   [`Move::SetStrategy`] links);
    /// * [`CoreError::SelfLink`] when a move would create a self-link.
    pub fn apply(&mut self, mv: Move) -> Result<LinkSet, CoreError> {
        self.validate_move(&mv)?;
        let (peer, new_links) = self.resolve_validated(&mv);
        let old_links = self.profile.strategy(peer).clone();
        if old_links == new_links {
            return Ok(old_links);
        }

        let mut added: Vec<(usize, usize, f64)> = Vec::new();
        let mut removed: Vec<(usize, usize, f64)> = Vec::new();
        self.edge_diff(
            peer.index(),
            &old_links,
            &new_links,
            &mut added,
            &mut removed,
        );

        self.profile
            .set_strategy(peer, new_links)
            .expect("move endpoints validated above");
        self.repair_after_edges(&added, &removed);
        Ok(old_links)
    }

    /// Applies a whole batch of moves — a simultaneous round, a churn
    /// event — as **one** cache transaction: the profile is mutated move
    /// by move (later moves see earlier ones), but the overlay CSR is
    /// rebuilt once and the distance rows are repaired in a single pass
    /// against the *net* edge change, so moves that cancel out inside
    /// the batch cost nothing.
    ///
    /// Returns, for each move in order, the links its peer held
    /// immediately before that move — exactly what a sequence of
    /// [`GameSession::apply`] calls would have returned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GameSession::apply`], checked for **every**
    /// move up front: a failed batch leaves the session untouched.
    pub fn apply_batch(&mut self, moves: &[Move]) -> Result<Vec<LinkSet>, CoreError> {
        for mv in moves {
            self.validate_move(mv)?;
        }
        let n = self.game.n();
        let mut previous = Vec::with_capacity(moves.len());
        let mut pre_batch: Vec<Option<LinkSet>> = vec![None; n];
        for mv in moves {
            let (peer, new_links) = self.resolve_validated(mv);
            let old = self.profile.strategy(peer).clone();
            if pre_batch[peer.index()].is_none() {
                pre_batch[peer.index()] = Some(old.clone());
            }
            if old != new_links {
                self.profile
                    .set_strategy(peer, new_links)
                    .expect("validated above");
            }
            previous.push(old);
        }

        // Net edge diff of every touched peer against its pre-batch
        // strategy — the union the single repair pass runs on.
        let mut added: Vec<(usize, usize, f64)> = Vec::new();
        let mut removed: Vec<(usize, usize, f64)> = Vec::new();
        for (i, old) in pre_batch.iter().enumerate() {
            let Some(old) = old else { continue };
            let new = self.profile.strategy(PeerId::new(i));
            self.edge_diff(i, old, new, &mut added, &mut removed);
        }
        if added.is_empty() && removed.is_empty() {
            return Ok(previous);
        }
        self.stats.batch_applies += 1;
        self.stats.batch_moves += moves.len();
        self.repair_after_edges(&added, &removed);
        Ok(previous)
    }

    /// Bounds- and self-link-checks one move without touching any state.
    fn validate_move(&self, mv: &Move) -> Result<(), CoreError> {
        let n = self.game.n();
        let check = |peer: PeerId| -> Result<(), CoreError> {
            if peer.index() >= n {
                return Err(CoreError::PeerOutOfBounds {
                    peer: peer.index(),
                    n,
                });
            }
            Ok(())
        };
        match mv {
            Move::SetStrategy { peer, links } => {
                check(*peer)?;
                for t in links.iter() {
                    check(t)?;
                    if t == *peer {
                        return Err(CoreError::SelfLink { peer: peer.index() });
                    }
                }
            }
            Move::AddLink { from, to } => {
                check(*from)?;
                check(*to)?;
                if from == to {
                    return Err(CoreError::SelfLink { peer: from.index() });
                }
            }
            Move::RemoveLink { from, to } => {
                check(*from)?;
                check(*to)?;
            }
        }
        Ok(())
    }

    /// Resolves an already-validated move to `(peer, its new link set)`
    /// against the *current* profile.
    fn resolve_validated(&self, mv: &Move) -> (PeerId, LinkSet) {
        match mv {
            Move::SetStrategy { peer, links } => (*peer, links.clone()),
            Move::AddLink { from, to } => (*from, self.profile.strategy(*from).with(*to)),
            Move::RemoveLink { from, to } => (*from, self.profile.strategy(*from).without(*to)),
        }
    }

    /// Appends the `(from, to, weight)` edges by which `new` differs from
    /// `old` for peer `i` — the diff representation both repair paths
    /// consume.
    fn edge_diff(
        &self,
        i: usize,
        old: &LinkSet,
        new: &LinkSet,
        added: &mut Vec<(usize, usize, f64)>,
        removed: &mut Vec<(usize, usize, f64)>,
    ) {
        for t in new.iter().filter(|t| !old.contains(*t)) {
            added.push((i, t.index(), self.game.distance(i, t.index())));
        }
        for t in old.iter().filter(|t| !new.contains(*t)) {
            removed.push((i, t.index(), self.game.distance(i, t.index())));
        }
    }

    /// The shared repair pass behind [`GameSession::apply`] and
    /// [`GameSession::apply_batch`]: given the net `(from, to, weight)`
    /// edge changes already written to the profile, lets the
    /// [`OracleCache`] drop rows whose shortest paths may have used a
    /// removed edge (overlay **and** residual tiers) and decrease-relax
    /// the survivors for the added edges.
    fn repair_after_edges(
        &mut self,
        added: &[(usize, usize, f64)],
        removed: &[(usize, usize, f64)],
    ) {
        self.stretch = None;

        if self.backend.is_sparse() {
            // Same lazy bail-out shape as the dense tier: with nothing
            // cached, dropping the CSR is strictly cheaper than
            // rebuilding it just to repair an empty sketch.
            if self.csr.is_none() || !self.backend.sparse().has_cached_state() {
                self.csr = None;
                self.backend.invalidate();
                return;
            }
            self.rebuild_csr();
            let csr = self.csr.as_ref().expect("just rebuilt");
            let repair = self
                .backend
                .sparse_mut()
                .repair(csr, added, removed, &mut self.scratch);
            self.stats.rows_invalidated += repair.rows_rebuilt;
            self.stats.rows_preserved += repair.rows_preserved;
            self.stats.full_sssp += repair.rows_rebuilt;
            self.stats.sparse_sketch_rows += repair.rows_rebuilt;
            return;
        }

        // Residual rows can outlive every overlay row (a removal that is
        // tight for all sources invalidates the whole overlay tier while
        // the residual tier repairs in place), so the lazy bail-out must
        // check both tiers: wiping live residual rows here would re-pay
        // sweeps the cache already earned.
        if self.csr.is_none()
            || (!self.backend.dense().any_valid_row() && !self.backend.dense().has_residual_rows())
        {
            // Nothing cached worth repairing; stay lazy.
            self.csr = None;
            self.backend.invalidate();
            return;
        }

        // The edge set changed: refresh the CSR snapshot (O(m), cheap
        // next to the sweeps it lets us keep).
        self.rebuild_csr();
        let csr = self.csr.as_ref().expect("just rebuilt");
        let counts =
            self.backend
                .dense_mut()
                .repair_after_edges(csr, added, removed, &mut self.scratch);
        self.stats.rows_invalidated += counts.rows_invalidated;
        self.stats.rows_preserved += counts.rows_preserved;
        self.stats.incremental_relaxations += counts.incremental_relaxations;
        self.stats.seq_oracle_invalidated += counts.residual_invalidated;
    }

    fn rebuild_csr(&mut self) {
        let mut g = DiGraph::new(self.game.n());
        for (i, s) in self.profile.iter() {
            for j in s.iter() {
                g.add_edge(
                    i.index(),
                    j.index(),
                    self.game.distance(i.index(), j.index()),
                );
            }
        }
        self.csr = Some(CsrGraph::from_digraph(&g));
        self.stats.csr_rebuilds += 1;
    }

    fn ensure_csr(&mut self) {
        if self.csr.is_none() {
            self.rebuild_csr();
        }
    }

    /// Makes an exact distance row for source `u` available and returns
    /// it: the cached overlay row (dense) or the transient single-row
    /// buffer (sparse — the row stays valid until the next mutation).
    fn row(&mut self, u: usize) -> &[f64] {
        self.ensure_csr();
        let csr = self.csr.as_ref().expect("ensured above");
        if self.backend.is_sparse() {
            if self
                .backend
                .sparse_mut()
                .compute_row(csr, u, &mut self.scratch)
            {
                self.stats.full_sssp += 1;
            }
            return self.backend.sparse().row_ref(u);
        }
        if self
            .backend
            .dense_mut()
            .ensure_row(csr, u, &mut self.scratch)
        {
            self.stats.full_sssp += 1;
        }
        self.backend.dense().row(u)
    }

    /// Overrides the worker-thread count for every sharded code path:
    /// bulk row refills **and** the oracle fan-out of
    /// [`GameSession::best_responses_round`].
    ///
    /// `None` (the default) derives it from
    /// `std::thread::available_parallelism` and only shards when enough
    /// work queues up (`PAR_ROWS_MIN` invalid rows, `PAR_ORACLES_MIN`
    /// activated peers); an explicit `Some(k > 1)` shards unconditionally
    /// (tests use this to exercise the threaded paths on any machine),
    /// and `Some(1)` forces the sequential paths. `Some(0)` would name a
    /// worker pool that can run nothing, so it is **clamped to
    /// `Some(1)`** — the documented fallback is the calling thread, never
    /// a panic or a silent no-op pool.
    pub fn set_parallelism(&mut self, workers: Option<usize>) {
        self.parallelism = workers.map(|w| w.max(1));
    }

    /// The worker-thread count the sharded paths would use right now:
    /// the [`GameSession::set_parallelism`] override if one is set,
    /// otherwise `std::thread::available_parallelism`.
    #[must_use]
    pub fn resolved_parallelism(&self) -> usize {
        self.worker_count()
    }

    fn worker_count(&self) -> usize {
        self.parallelism.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Makes every row valid: the invalid rows are recomputed with one
    /// full sweep each, sharded over worker threads when there are
    /// enough of them to pay for the spawns.
    fn ensure_all_rows(&mut self) {
        debug_assert!(
            !self.backend.is_sparse(),
            "ensure_all_rows materialises the full matrix; sparse paths must not reach it"
        );
        let invalid = self.backend.dense().invalid_row_count();
        if invalid == 0 {
            return;
        }
        let workers = self.worker_count().min(invalid);
        if workers > 1 && (self.parallelism.is_some() || invalid >= PAR_ROWS_MIN) {
            self.ensure_csr();
            let csr = self.csr.as_ref().expect("ensured above");
            csr.dijkstra_rows_with(self.backend.dense_mut().invalid_jobs(), workers);
            self.backend.dense_mut().mark_all_valid();
            self.stats.full_sssp += invalid;
            self.stats.parallel_passes += 1;
            self.stats.parallel_rows += invalid;
        } else {
            for u in 0..self.game.n() {
                let _ = self.row(u);
            }
        }
    }

    /// Individual cost of `peer` under the current profile:
    /// `c_i(s) = α·|s_i| + Σ_{j≠i} stretch(i, j)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PeerOutOfBounds`] for out-of-range peers.
    pub fn peer_cost(&mut self, peer: PeerId) -> Result<f64, CoreError> {
        if peer.index() >= self.game.n() {
            return Err(CoreError::PeerOutOfBounds {
                peer: peer.index(),
                n: self.game.n(),
            });
        }
        let _ = self.row(peer.index());
        let row = self.backend.stored_row(peer.index());
        Ok(peer_cost_from_distances(
            &self.game,
            &self.profile,
            peer,
            row,
        ))
    }

    /// Individual costs of every peer. Dense sessions fill the whole
    /// distance cache; sparse sessions stream one transient row per peer
    /// (`O(n)` memory, `n` sweeps).
    #[must_use]
    pub fn all_peer_costs(&mut self) -> Vec<f64> {
        if self.backend.is_sparse() {
            return (0..self.game.n())
                .map(|u| {
                    self.peer_cost(PeerId::new(u))
                        .expect("peer index in range by construction")
                })
                .collect();
        }
        self.ensure_all_rows();
        (0..self.game.n())
            .map(|u| {
                peer_cost_from_distances(
                    &self.game,
                    &self.profile,
                    PeerId::new(u),
                    self.backend.dense().row(u),
                )
            })
            .collect()
    }

    /// Social cost of the current profile, decomposed into link and
    /// stretch terms. Sparse sessions stream the summation one transient
    /// row at a time — `n` sweeps, never an `n × n` matrix.
    #[must_use]
    pub fn social_cost(&mut self) -> SocialCost {
        if self.backend.is_sparse() {
            let n = self.game.n();
            let mut stretch_cost = 0.0f64;
            'souter: for u in 0..n {
                let _ = self.row(u);
                let row = self.backend.stored_row(u);
                for j in 0..n {
                    if j != u {
                        stretch_cost += row[j] / self.game.distance(u, j);
                    }
                }
                if stretch_cost.is_infinite() {
                    stretch_cost = f64::INFINITY;
                    break 'souter;
                }
            }
            return SocialCost {
                link_cost: self.game.alpha() * self.profile.link_count() as f64,
                stretch_cost,
            };
        }
        self.ensure_all_rows();
        let n = self.game.n();
        let mut stretch_cost = 0.0f64;
        'outer: for u in 0..n {
            let row = self.backend.dense().row(u);
            for j in 0..n {
                if j != u {
                    stretch_cost += row[j] / self.game.distance(u, j);
                }
            }
            if stretch_cost.is_infinite() {
                stretch_cost = f64::INFINITY;
                break 'outer;
            }
        }
        SocialCost {
            link_cost: self.game.alpha() * self.profile.link_count() as f64,
            stretch_cost,
        }
    }

    /// The overlay distance matrix `d_G(i, j)` (fills every row).
    ///
    /// On a **sparse** session this is the documented `O(n²)` escape
    /// hatch — the matrix is materialised transiently for small-instance
    /// debugging and dropped again on the next mutation. Large-`n`
    /// sparse flows must stay on `local_response` / `peer_cost` /
    /// `social_cost`, which never call this.
    pub fn overlay_distances(&mut self) -> &DistanceMatrix {
        if self.backend.is_sparse() {
            self.ensure_csr();
            if !self.backend.sparse().escape_ready() {
                self.stats.full_sssp += self.game.n();
            }
            let csr = self.csr.as_ref().expect("ensured above");
            return self
                .backend
                .sparse_mut()
                .escape_matrix(csr, &mut self.scratch);
        }
        self.ensure_all_rows();
        self.backend.dense().matrix()
    }

    /// The stretch matrix `d_G(i, j) / d(i, j)` (cached until the next
    /// profile mutation). Sparse sessions route through the
    /// [`GameSession::overlay_distances`] escape hatch.
    pub fn stretch_matrix(&mut self) -> &DistanceMatrix {
        if self.stretch.is_none() {
            let n = self.game.n();
            // sp-lint: allow(dense-alloc, reason = "the stretch matrix is inherently n^2; sparse flows never request it")
            let mut s = DistanceMatrix::new_filled(n, 1.0);
            if self.backend.is_sparse() {
                let game = Arc::clone(&self.game);
                let d = self.overlay_distances();
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            s[(i, j)] = d[(i, j)] / game.distance(i, j);
                        }
                    }
                }
            } else {
                self.ensure_all_rows();
                for i in 0..n {
                    let row = self.backend.dense().row(i);
                    for j in 0..n {
                        if i != j {
                            s[(i, j)] = row[j] / self.game.distance(i, j);
                        }
                    }
                }
            }
            self.stretch = Some(s);
        }
        self.stretch.as_ref().expect("filled above")
    }

    /// The largest stretch over all ordered pairs (`1.0` for fewer than
    /// two peers, `∞` when some peer cannot reach some other peer).
    #[must_use]
    pub fn max_stretch(&mut self) -> f64 {
        let n = self.game.n();
        let s = self.stretch_matrix();
        let mut m = 1.0f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m = m.max(s[(i, j)]);
                }
            }
        }
        m
    }

    /// `peer`'s best response against the fixed rest of the current
    /// profile, served from the persistent oracle cache: a candidate
    /// row comes verbatim from the overlay distance matrix whenever none
    /// of `peer`'s out-links is tight on its shortest paths (the same
    /// conservative test the removal repair uses, so reuse never changes
    /// a value), from a retained residual `G_{-i}` row swept by an
    /// earlier build otherwise, and only pays a fresh sweep when neither
    /// tier can serve it — that sweep is then retained for the next
    /// build. Because [`GameSession::apply`] repairs both tiers
    /// per-move, consecutive activations in sequential dynamics serve
    /// most candidate rows without sweeping.
    ///
    /// Fills the whole distance cache on first use. Bit-identical to
    /// [`GameSession::best_response_uncached`] (property-tested in
    /// `crates/core/tests/proptest_session.rs`, including across
    /// arbitrary interleaved `apply` sequences); cache tier accounting
    /// lands in [`SessionStats::seq_oracle_hits`] /
    /// [`SessionStats::seq_oracle_swept`].
    ///
    /// # Errors
    ///
    /// Same conditions as the free [`crate::best_response`].
    pub fn best_response(
        &mut self,
        peer: PeerId,
        method: BestResponseMethod,
    ) -> Result<BestResponse, CoreError> {
        self.best_response_counted(peer, method, OracleCounter::Sequential)
    }

    /// Like [`GameSession::best_response`], but always builds a fresh
    /// `G_{-i}` oracle — `n - 1` Dijkstra sweeps, no cache reads or
    /// stores. This is the reference implementation the cached path is
    /// property-tested against, and the pre-cache baseline the
    /// `sequential_reuse` bench measures savings from.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GameSession::best_response`].
    pub fn best_response_uncached(
        &mut self,
        peer: PeerId,
        method: BestResponseMethod,
    ) -> Result<BestResponse, CoreError> {
        let current_cost = self.peer_cost(peer)?;
        if self.game.n() <= 1 {
            return Ok(Self::trivial_response(peer, current_cost));
        }
        let oracle =
            ResponseOracle::build_with(&self.game, &self.profile, peer, &mut self.scratch)?;
        self.stats.oracle_builds += 1;
        self.finish_response(peer, method, &oracle, current_cost)
    }

    /// The response on a game too small to have candidates (`n <= 1`):
    /// the empty strategy at cost 0, trivially exact. One definition so
    /// the cached and uncached paths cannot diverge on the contract.
    fn trivial_response(peer: PeerId, current_cost: f64) -> BestResponse {
        BestResponse {
            peer,
            links: LinkSet::new(),
            cost: 0.0,
            current_cost,
            exact: true,
        }
    }

    /// Bounds-checks `peer` and reports whether the game is too small
    /// for any single-link move to exist (`n <= 1`) — the shared guard
    /// of the better-response paths.
    fn too_small_for_moves(&self, peer: PeerId) -> Result<bool, CoreError> {
        if self.game.n() <= 1 {
            if peer.index() >= self.game.n() {
                return Err(CoreError::PeerOutOfBounds {
                    peer: peer.index(),
                    n: self.game.n(),
                });
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Makes the overlay rows a cached oracle build for `peer` will read
    /// valid — lazily: an invalid row `u` whose residual twin `(peer, u)`
    /// is retained stays invalid, because the build serves it from the
    /// residual tier (exact by the repair invariants) and refilling it
    /// here would pay a full sweep for a value the build never reads.
    /// Rows no tier covers are refilled, sharded over worker threads when
    /// enough queue up — the same policy as
    /// [`GameSession::ensure_all_rows`].
    fn ensure_rows_for_oracle(&mut self, peer: PeerId) {
        let n = self.game.n();
        let i = peer.index();
        let mut need: Vec<usize> = Vec::new();
        let mut skipped = 0usize;
        for u in 0..n {
            if self.backend.dense().row_is_valid(u) {
                continue;
            }
            if u != i && self.backend.dense().residual_row(i, u).is_some() {
                skipped += 1;
            } else {
                need.push(u);
            }
        }
        self.stats.seq_refills_skipped += skipped;
        if need.is_empty() {
            return;
        }
        let workers = self.worker_count().min(need.len());
        if workers > 1 && (self.parallelism.is_some() || need.len() >= PAR_ROWS_MIN) {
            self.ensure_csr();
            let csr = self.csr.as_ref().expect("ensured above");
            csr.dijkstra_rows_with(self.backend.dense_mut().jobs_for(&need), workers);
            self.backend.dense_mut().mark_rows_valid(&need);
            self.stats.full_sssp += need.len();
            self.stats.parallel_passes += 1;
            self.stats.parallel_rows += need.len();
        } else {
            for u in need {
                let _ = self.row(u);
            }
        }
    }

    /// Builds the cached oracle for `peer` and counts its row accounting
    /// into the requested [`SessionStats`] bucket.
    fn cached_oracle(
        &mut self,
        peer: PeerId,
        counter: OracleCounter,
    ) -> Result<ResponseOracle, CoreError> {
        self.ensure_rows_for_oracle(peer);
        let (oracle, reuse): (ResponseOracle, OracleReuse) = ResponseOracle::build_from_cache(
            &self.game,
            &self.profile,
            peer,
            self.backend.dense_mut(),
            &mut self.scratch,
        )?;
        self.stats.oracle_builds += 1;
        match counter {
            OracleCounter::Sequential => {
                self.stats.seq_oracle_hits += reuse.hits();
                self.stats.seq_oracle_swept += reuse.rows_swept;
            }
            OracleCounter::Round => {
                self.stats.oracle_rows_reused += reuse.hits();
                self.stats.oracle_rows_swept += reuse.rows_swept;
            }
        }
        Ok(oracle)
    }

    /// Shared body of the cached response paths.
    fn best_response_counted(
        &mut self,
        peer: PeerId,
        method: BestResponseMethod,
        counter: OracleCounter,
    ) -> Result<BestResponse, CoreError> {
        let current_cost = self.peer_cost(peer)?;
        if self.game.n() <= 1 {
            return Ok(Self::trivial_response(peer, current_cost));
        }
        if self.backend.is_sparse() {
            // Certified queries on a sparse session pay an exact fresh
            // `G_{-i}` oracle — `O(n)` memory, never an n×n matrix — so
            // the verdict carries the same guarantees as dense mode.
            self.stats.sparse_exact_fallbacks += 1;
            let oracle =
                ResponseOracle::build_with(&self.game, &self.profile, peer, &mut self.scratch)?;
            self.stats.oracle_builds += 1;
            return self.finish_response(peer, method, &oracle, current_cost);
        }
        let oracle = self.cached_oracle(peer, counter)?;
        self.finish_response(peer, method, &oracle, current_cost)
    }

    /// Shared tail of the oracle-backed response paths: solve the UFL
    /// instance and fall back to the current strategy when a heuristic
    /// comes out worse.
    fn finish_response(
        &mut self,
        peer: PeerId,
        method: BestResponseMethod,
        oracle: &ResponseOracle,
        current_cost: f64,
    ) -> Result<BestResponse, CoreError> {
        let (links, cost) = oracle.solve(method)?;
        // sp-lint: allow(float-eps, reason = "conservative accept: a heuristic tie or epsilon-worse solution keeps the current strategy, which is always valid")
        if cost > current_cost {
            // Heuristics may come out worse; keeping the current strategy
            // is then the better (valid) response.
            return Ok(BestResponse {
                peer,
                links: self.profile.strategy(peer).clone(),
                cost: current_cost,
                current_cost,
                exact: method.is_exact(),
            });
        }
        Ok(BestResponse {
            peer,
            links,
            cost,
            current_cost,
            exact: method.is_exact(),
        })
    }

    /// Best responses of every peer in `peers` against the **frozen**
    /// current profile — the oracle fan-out of one simultaneous-move
    /// round.
    ///
    /// The session first makes every distance row valid (that snapshot is
    /// the round-start state all oracles read), then computes one cached
    /// oracle (the [`GameSession::best_response`] code path, counted into
    /// the round counters) per activated peer. When the
    /// [`GameSession::set_parallelism`] knob resolves to more than one
    /// worker — and, under automatic parallelism, at least
    /// `PAR_ORACLES_MIN` peers are activated — activation position `p`
    /// is assigned to shard `p mod k` (a deterministic round-robin
    /// interleave, so fallback-sweep-heavy peers spread evenly across
    /// shards instead of clustering in one contiguous chunk), each shard
    /// runs on its own worker thread over a
    /// [`GameSession::fork_readonly`] snapshot with a per-thread
    /// [`DijkstraScratch`], and the results are scattered back into
    /// activation order.
    ///
    /// **Determinism contract:** the returned responses are identical —
    /// bit-for-bit, including tie-breaking — whatever the shard count,
    /// because every shard evaluates the same frozen snapshot with the
    /// same per-peer code path and the interleave is a pure function of
    /// `(position, shard count)` that the merge inverts exactly. Shard
    /// oracle/reuse counters are folded into this session's
    /// [`SessionStats`]; `oracle_parallel_rounds`/`oracle_shards` record
    /// the fan-out itself.
    ///
    /// # Errors
    ///
    /// [`CoreError::PeerOutOfBounds`] for any out-of-range peer (checked
    /// up front), plus the [`GameSession::best_response`] conditions; the
    /// error of the lowest-indexed failing shard is returned.
    pub fn best_responses_round(
        &mut self,
        peers: &[PeerId],
        method: BestResponseMethod,
    ) -> Result<Vec<BestResponse>, CoreError> {
        let n = self.game.n();
        for &p in peers {
            if p.index() >= n {
                return Err(CoreError::PeerOutOfBounds { peer: p.index(), n });
            }
        }
        if peers.is_empty() {
            return Ok(Vec::new());
        }
        if n <= 1 || self.backend.is_sparse() {
            // Sparse sessions evaluate the round sequentially through the
            // exact fallback path — no frozen matrix to fan out over.
            return peers
                .iter()
                .map(|&p| self.best_response(p, method))
                .collect();
        }
        // Freeze the round-start snapshot every oracle will read.
        self.ensure_all_rows();
        let workers = self.worker_count().min(peers.len());
        let shards =
            if workers > 1 && (self.parallelism.is_some() || peers.len() >= PAR_ORACLES_MIN) {
                workers
            } else {
                1
            };
        if shards <= 1 {
            return peers
                .iter()
                .map(|&p| self.best_response_counted(p, method, OracleCounter::Round))
                .collect();
        }

        // Deterministic round-robin interleave: activation position p
        // computes on shard p % shards. Every shard is non-empty because
        // shards <= peers.len().
        let mut shard_peers: Vec<Vec<PeerId>> = vec![Vec::new(); shards];
        for (pos, &p) in peers.iter().enumerate() {
            shard_peers[pos % shards].push(p);
        }
        let mut forks: Vec<GameSession> = (0..shards).map(|_| self.fork_readonly()).collect();
        self.stats.oracle_parallel_rounds += 1;
        self.stats.oracle_shards += shards;
        let results: Vec<Result<Vec<BestResponse>, CoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_peers
                .iter()
                .zip(forks.iter_mut())
                .map(|(mine, shard)| {
                    scope.spawn(move || {
                        mine.iter()
                            .map(|&p| shard.best_response_counted(p, method, OracleCounter::Round))
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("oracle shard thread panicked"))
                .collect()
        });
        // Scatter the shard results back into activation order (shard s
        // computed positions s, s + shards, s + 2·shards, …).
        let mut slots: Vec<Option<BestResponse>> = peers.iter().map(|_| None).collect();
        for (s, (result, shard)) in results.into_iter().zip(&forks).enumerate() {
            // Fold the fork's counters in wholesale: forks are
            // read-only, so only oracle-path counters can be non-zero,
            // and an exhaustive merge can never silently drop a counter
            // a future PR adds.
            self.stats.merge(&shard.stats());
            for (k, br) in result?.into_iter().enumerate() {
                slots[s + k * shards] = Some(br);
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("interleave covers every activation position"))
            .collect())
    }

    /// First strictly improving single-link move for `peer` (drop, add,
    /// swap — in that order), or `None`; the "better response" used by
    /// low-churn dynamics. Served from the persistent oracle cache
    /// like [`GameSession::best_response`]; bit-identical to
    /// [`GameSession::first_improving_move_uncached`].
    ///
    /// # Errors
    ///
    /// Same conditions as the free [`crate::first_improving_move`].
    pub fn first_improving_move(
        &mut self,
        peer: PeerId,
        tol: f64,
    ) -> Result<Option<BestResponse>, CoreError> {
        if self.too_small_for_moves(peer)? {
            return Ok(None);
        }
        if self.backend.is_sparse() {
            self.stats.sparse_exact_fallbacks += 1;
            return self.first_improving_move_uncached(peer, tol);
        }
        if self.lazy_oracle {
            // Satellite path: certified lower bounds reject hopeless
            // candidates without materialising their exact rows; the
            // accepted move (or `None`) is bit-identical to the eager
            // scan below.
            let (mv, scan) = first_improving_move_lazy(
                &self.game,
                &self.profile,
                peer,
                self.backend.dense_mut(),
                &mut self.scratch,
                tol,
            )?;
            self.stats.oracle_builds += 1;
            self.stats.seq_oracle_hits += scan.reuse.hits();
            self.stats.seq_oracle_swept += scan.reuse.rows_swept;
            self.stats.lazy_certified_rejects += scan.certified_rejects;
            self.stats.lazy_exact_evals += scan.exact_evals;
            return Ok(mv);
        }
        let oracle = self.cached_oracle(peer, OracleCounter::Sequential)?;
        Ok(oracle.first_improving_move(peer, self.profile.strategy(peer), tol))
    }

    /// Like [`GameSession::first_improving_move`], but always sweeps a
    /// fresh `G_{-i}` oracle — the cache-free reference and bench
    /// baseline, mirroring [`GameSession::best_response_uncached`].
    ///
    /// # Errors
    ///
    /// Same conditions as the free [`crate::first_improving_move`].
    pub fn first_improving_move_uncached(
        &mut self,
        peer: PeerId,
        tol: f64,
    ) -> Result<Option<BestResponse>, CoreError> {
        if self.too_small_for_moves(peer)? {
            return Ok(None);
        }
        let oracle =
            ResponseOracle::build_with(&self.game, &self.profile, peer, &mut self.scratch)?;
        self.stats.oracle_builds += 1;
        Ok(oracle.first_improving_move(peer, self.profile.strategy(peer), tol))
    }

    /// Builds the landmark sketch (and transpose) of a sparse session if
    /// absent, charging the `2·L` landmark sweeps to the stats.
    fn ensure_sparse_ready(&mut self) {
        self.ensure_csr();
        let csr = self.csr.as_ref().expect("ensured above");
        let swept = self
            .backend
            .sparse_mut()
            .ensure_ready(csr, &mut self.scratch);
        if swept > 0 {
            self.stats.full_sssp += swept;
            self.stats.sparse_sketch_rows += swept;
        }
    }

    /// Certified bounds `(lower, upper)` on the overlay distance
    /// `d_G(u, v)` under the current profile: `lower ≤ d_G(u, v) ≤
    /// upper` always holds. Dense sessions answer exactly
    /// (`lower == upper`); sparse sessions combine the landmark sketch
    /// with the metric lower bound without sweeping from `u`.
    ///
    /// # Errors
    ///
    /// [`CoreError::PeerOutOfBounds`] for out-of-range peers.
    pub fn dist_bounds(&mut self, u: PeerId, v: PeerId) -> Result<(f64, f64), CoreError> {
        let n = self.game.n();
        for p in [u, v] {
            if p.index() >= n {
                return Err(CoreError::PeerOutOfBounds { peer: p.index(), n });
            }
        }
        if self.backend.is_sparse() {
            self.ensure_sparse_ready();
            return Ok(self
                .backend
                .sparse()
                .dist_bounds(&self.game, u.index(), v.index()));
        }
        let d = self.row(u.index())[v.index()];
        Ok((d, d))
    }

    /// The sparse session's native better response: a **deterministic
    /// heuristic** move for `peer` evaluated against its metric window
    /// only — exact distances inside a bounded ball, certified sketch
    /// upper bounds beyond it, stretch-floor pruning for hopeless
    /// candidates — or `None` when no evaluated move improves.
    ///
    /// Cost model: `O(window · ball_cap · log)` per call, independent of
    /// `n` once the sketch is built. Never materialises a matrix. The
    /// returned move carries `exact: false` — large-`n` dynamics trade
    /// per-move optimality for tractability, converging on the same
    /// better-response principle the paper's dynamics use.
    ///
    /// On a **dense** session this simply forwards to
    /// [`GameSession::first_improving_move`] (exact), so driver code can
    /// call it unconditionally. Sparse sessions whose window already
    /// covers every peer (`window + 1 ≥ n`) also route to the exact scan
    /// — a sparse session on a small instance decides **bit-identically**
    /// to a dense one.
    ///
    /// # Errors
    ///
    /// [`CoreError::PeerOutOfBounds`] for out-of-range peers.
    pub fn local_response(
        &mut self,
        peer: PeerId,
        tol: f64,
    ) -> Result<Option<BestResponse>, CoreError> {
        if peer.index() >= self.game.n() {
            return Err(CoreError::PeerOutOfBounds {
                peer: peer.index(),
                n: self.game.n(),
            });
        }
        if self.too_small_for_moves(peer)? {
            return Ok(None);
        }
        if !self.backend.is_sparse() {
            return self.first_improving_move(peer, tol);
        }
        if self.backend.sparse().window() + 1 >= self.game.n() {
            self.stats.sparse_exact_fallbacks += 1;
            return self.first_improving_move_uncached(peer, tol);
        }
        self.ensure_sparse_ready();
        let csr = self.csr.as_ref().expect("sketch build ensured the CSR");
        let mut counts = LocalCounts::default();
        let result = self.backend.sparse_mut().local_response(
            &self.game,
            &self.profile,
            csr,
            peer,
            tol,
            &mut counts,
        );
        self.stats.sparse_ball_sweeps += counts.ball_sweeps;
        self.stats.sparse_sketch_hits += counts.sketch_hits;
        self.stats.sparse_pruned_candidates += counts.pruned;
        Ok(result)
    }

    /// The largest improvement any single peer can gain by deviating
    /// (0.0 at equilibrium, `∞` if someone can restore connectivity).
    /// Oracles come from the persistent cache, so monitoring loops that
    /// call this between moves pay only for what changed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GameSession::best_response`].
    pub fn nash_gap(&mut self, method: BestResponseMethod) -> Result<f64, CoreError> {
        let mut gap = 0.0f64;
        for i in 0..self.game.n() {
            let br = self.best_response(PeerId::new(i), method)?;
            let imp = br.improvement();
            // sp-lint: allow(float-eps, reason = "running max: exact comparison of computed values; ties leave the identical max")
            if imp > gap {
                gap = imp;
            }
        }
        Ok(gap)
    }

    /// Checks whether the current profile is a (pure) Nash equilibrium.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GameSession::best_response`].
    pub fn is_nash(&mut self, test: &NashTest) -> Result<NashReport, CoreError> {
        let peer_costs = self.all_peer_costs();
        let mut best: Option<Deviation> = None;
        for i in 0..self.game.n() {
            let peer = PeerId::new(i);
            let br = self.best_response(peer, test.method)?;
            if br.improves(test.tolerance) {
                let dev = Deviation {
                    peer,
                    links: br.links,
                    old_cost: br.current_cost,
                    new_cost: br.cost,
                };
                let replace = match &best {
                    None => true,
                    Some(b) => dev.improvement() > b.improvement(),
                };
                if replace {
                    best = Some(dev);
                }
            }
        }
        Ok(NashReport {
            best_deviation: best,
            certified_exact: test.method.is_exact(),
            peer_costs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        all_peer_costs, best_response, is_nash, max_stretch, nash_gap, social_cost, stretch_matrix,
    };
    use sp_metric::LineSpace;

    fn game(alpha: f64) -> Game {
        Game::from_space(
            &LineSpace::new(vec![0.0, 1.0, 3.0, 4.0, 7.5]).unwrap(),
            alpha,
        )
        .unwrap()
    }

    fn detour_game() -> Game {
        let m = DistanceMatrix::from_row_major(
            4,
            vec![
                0.0, 1.0, 1.8, 2.4, //
                1.0, 0.0, 1.0, 1.9, //
                1.8, 1.0, 0.0, 1.0, //
                2.4, 1.9, 1.0, 0.0,
            ],
        )
        .unwrap();
        Game::new(m, 0.8).unwrap()
    }

    fn assert_matches_free_functions(session: &mut GameSession) {
        let game = session.game().clone();
        let profile = session.profile().clone();
        let sc = social_cost(&game, &profile).unwrap();
        let got = session.social_cost();
        assert!(
            (sc.total() - got.total()).abs() < 1e-9
                || (sc.total().is_infinite() && got.total().is_infinite()),
            "social cost mismatch: {} vs {}",
            sc.total(),
            got.total()
        );
        let batch = all_peer_costs(&game, &profile).unwrap();
        for (i, expected) in batch.iter().enumerate() {
            let got = session.peer_cost(PeerId::new(i)).unwrap();
            assert!(
                (expected - got).abs() < 1e-9 || (expected.is_infinite() && got.is_infinite()),
                "peer {i}: {expected} vs {got}"
            );
        }
        let s_free = stretch_matrix(&game, &profile).unwrap();
        assert_eq!(session.stretch_matrix(), &s_free);
        let ms = max_stretch(&game, &profile).unwrap();
        let ms_s = session.max_stretch();
        assert!((ms - ms_s).abs() < 1e-12 || (ms.is_infinite() && ms_s.is_infinite()));
    }

    #[test]
    fn fresh_session_matches_free_functions() {
        let g = game(1.3);
        for links in [
            vec![],
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
            vec![
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 3),
            ],
        ] {
            let p = StrategyProfile::from_links(5, &links).unwrap();
            let mut s = GameSession::from_refs(&g, &p).unwrap();
            assert_matches_free_functions(&mut s);
        }
    }

    #[test]
    fn apply_add_and_remove_stay_consistent() {
        let g = detour_game();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 2), (2, 1), (1, 0)])
            .unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        // Warm every cache first so apply() exercises the repair path.
        let _ = s.social_cost();
        let moves = [
            Move::AddLink {
                from: PeerId::new(0),
                to: PeerId::new(3),
            },
            Move::RemoveLink {
                from: PeerId::new(1),
                to: PeerId::new(2),
            },
            Move::AddLink {
                from: PeerId::new(1),
                to: PeerId::new(3),
            },
            Move::SetStrategy {
                peer: PeerId::new(2),
                links: [0usize, 3].into_iter().collect(),
            },
            Move::RemoveLink {
                from: PeerId::new(0),
                to: PeerId::new(3),
            },
        ];
        for mv in moves {
            s.apply(mv).unwrap();
            assert_matches_free_functions(&mut s);
        }
    }

    #[test]
    fn apply_returns_previous_links_and_rejects_bad_moves() {
        let g = game(1.0);
        let p = StrategyProfile::from_links(5, &[(0, 1), (0, 2)]).unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let old = s
            .apply(Move::SetStrategy {
                peer: PeerId::new(0),
                links: LinkSet::new(),
            })
            .unwrap();
        assert_eq!(old.len(), 2);
        assert!(matches!(
            s.apply(Move::AddLink {
                from: PeerId::new(9),
                to: PeerId::new(0)
            }),
            Err(CoreError::PeerOutOfBounds { peer: 9, n: 5 })
        ));
        assert!(matches!(
            s.apply(Move::AddLink {
                from: PeerId::new(1),
                to: PeerId::new(1)
            }),
            Err(CoreError::SelfLink { peer: 1 })
        ));
        assert!(matches!(
            s.apply(Move::SetStrategy {
                peer: PeerId::new(1),
                links: [7usize].into_iter().collect(),
            }),
            Err(CoreError::PeerOutOfBounds { peer: 7, n: 5 })
        ));
    }

    #[test]
    fn session_best_response_and_nash_match_free_functions() {
        let g = detour_game();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 0), (1, 2), (3, 2)]).unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        for i in 0..4 {
            let peer = PeerId::new(i);
            let free = best_response(&g, &p, peer, BestResponseMethod::Exact).unwrap();
            let sess = s.best_response(peer, BestResponseMethod::Exact).unwrap();
            assert!((free.cost - sess.cost).abs() < 1e-9, "peer {i}");
            assert_eq!(free.links, sess.links, "peer {i}");
        }
        let free_report = is_nash(&g, &p, &NashTest::exact()).unwrap();
        let sess_report = s.is_nash(&NashTest::exact()).unwrap();
        assert_eq!(free_report.is_nash(), sess_report.is_nash());
        let free_gap = nash_gap(&g, &p, BestResponseMethod::Exact).unwrap();
        let sess_gap = s.nash_gap(BestResponseMethod::Exact).unwrap();
        assert!(
            (free_gap - sess_gap).abs() < 1e-9
                || (free_gap.is_infinite() && sess_gap.is_infinite())
        );
    }

    #[test]
    fn incremental_repair_avoids_full_sweeps_for_additions() {
        let g = game(2.0);
        let chain = StrategyProfile::from_links(
            5,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 3),
            ],
        )
        .unwrap();
        let mut s = GameSession::from_refs(&g, &chain).unwrap();
        let _ = s.social_cost();
        let warm = s.stats();
        assert_eq!(warm.full_sssp, 5);
        // A pure addition must not trigger any fresh full sweep.
        s.apply(Move::AddLink {
            from: PeerId::new(0),
            to: PeerId::new(4),
        })
        .unwrap();
        let _ = s.social_cost();
        let after = s.stats();
        assert_eq!(after.full_sssp, warm.full_sssp, "additions repair in place");
        assert_eq!(after.rows_invalidated, 0);
        assert!(after.rows_preserved >= 5);
    }

    #[test]
    fn removal_preserves_unaffected_rows() {
        let g = game(2.0);
        // Star out of peer 0 plus chain back-links; removing 0 -> 4 only
        // affects rows that route through that link.
        let p = StrategyProfile::from_links(
            5,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 0),
                (2, 0),
                (3, 0),
                (4, 0),
            ],
        )
        .unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let _ = s.social_cost();
        s.apply(Move::RemoveLink {
            from: PeerId::new(0),
            to: PeerId::new(4),
        })
        .unwrap();
        let stats = s.stats();
        assert!(
            stats.rows_invalidated < 5,
            "some rows must survive a removal: {stats:?}"
        );
        assert_matches_free_functions(&mut s);
    }

    #[test]
    fn apply_batch_matches_sequential_applies() {
        let g = detour_game();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 2), (2, 1), (1, 0)])
            .unwrap();
        let moves = vec![
            Move::AddLink {
                from: PeerId::new(0),
                to: PeerId::new(3),
            },
            Move::RemoveLink {
                from: PeerId::new(1),
                to: PeerId::new(2),
            },
            Move::SetStrategy {
                peer: PeerId::new(2),
                links: [0usize, 3].into_iter().collect(),
            },
            // Cancels the first move: the net diff must not contain 0 -> 3.
            Move::RemoveLink {
                from: PeerId::new(0),
                to: PeerId::new(3),
            },
        ];

        let mut batched = GameSession::from_refs(&g, &p).unwrap();
        let _ = batched.social_cost();
        let mut sequential = GameSession::from_refs(&g, &p).unwrap();
        let _ = sequential.social_cost();

        let previous = batched.apply_batch(&moves).unwrap();
        let expected: Vec<LinkSet> = moves
            .iter()
            .map(|mv| sequential.apply(mv.clone()).unwrap())
            .collect();
        assert_eq!(previous, expected, "per-move prior links must match");
        assert_eq!(batched.profile(), sequential.profile());
        assert_matches_free_functions(&mut batched);

        // One transaction: a single CSR rebuild for the whole batch, and
        // the batch counters ticked.
        let bs = batched.stats();
        let ss = sequential.stats();
        assert_eq!(bs.csr_rebuilds, 2, "warm-up + one batch rebuild");
        assert!(ss.csr_rebuilds > bs.csr_rebuilds);
        assert_eq!(bs.batch_applies, 1);
        assert_eq!(bs.batch_moves, 4);
        assert_eq!(ss.batch_applies, 0);
    }

    #[test]
    fn apply_batch_validates_everything_up_front() {
        let g = game(1.0);
        let p = StrategyProfile::from_links(5, &[(0, 1)]).unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let _ = s.social_cost();
        let before_profile = s.profile().clone();
        let before_stats = s.stats();
        let err = s.apply_batch(&[
            Move::AddLink {
                from: PeerId::new(0),
                to: PeerId::new(2),
            },
            Move::AddLink {
                from: PeerId::new(7),
                to: PeerId::new(0),
            },
        ]);
        assert!(matches!(
            err,
            Err(CoreError::PeerOutOfBounds { peer: 7, n: 5 })
        ));
        assert_eq!(s.profile(), &before_profile, "failed batch must not mutate");
        assert_eq!(s.stats(), before_stats);
        assert!(s.apply_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn lazy_refill_skips_residual_served_rows_bit_identically() {
        // Monitoring pattern: the hot peer mutates, then immediately
        // rebuilds its own oracle. Its edits invalidate overlay rows
        // that its residual rows (which ignore its links) survive, so
        // the lazy refill must skip those rows' sweeps — and the lazy
        // build must stay bit-identical to the fresh-oracle reference.
        let g = detour_game();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let mut lazy = GameSession::from_refs(&g, &p).unwrap();
        let mut fresh = GameSession::from_refs(&g, &p).unwrap();
        let hot = PeerId::new(0);
        let mut skipped_total = 0usize;
        for k in 0..6 {
            let a = lazy.best_response(hot, BestResponseMethod::Exact).unwrap();
            let b = fresh
                .best_response_uncached(hot, BestResponseMethod::Exact)
                .unwrap();
            assert_eq!(a.links, b.links, "step {k}");
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "step {k}");
            let t = PeerId::new(1 + (k % 3));
            let links = if t == hot {
                a.links.clone()
            } else if a.links.contains(t) {
                a.links.without(t)
            } else {
                a.links.with(t)
            };
            lazy.apply(Move::SetStrategy {
                peer: hot,
                links: links.clone(),
            })
            .unwrap();
            fresh.apply(Move::SetStrategy { peer: hot, links }).unwrap();
            skipped_total = lazy.stats().seq_refills_skipped;
        }
        assert!(
            skipped_total > 0,
            "the monitoring loop must exercise the lazy refill: {:?}",
            lazy.stats()
        );
        assert_matches_free_functions(&mut lazy);
    }

    #[test]
    fn memory_bytes_tracks_cache_growth() {
        let g = game(1.0);
        let p = StrategyProfile::from_links(5, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let cold = s.memory_bytes();
        assert!(cold > 0, "even a cold session owns its overlay matrix");
        let _ = s.social_cost();
        let warm = s.memory_bytes();
        assert!(warm > cold, "the CSR snapshot must be accounted");
        let _ = s.stretch_matrix();
        let stretched = s.memory_bytes();
        assert!(stretched > warm, "the stretch matrix must be accounted");
        let _ = s.best_response(PeerId::new(0), BestResponseMethod::Exact);
        assert!(
            s.memory_bytes() >= stretched,
            "retained residual rows never shrink the accounting"
        );
        // Deterministic: same state, same bytes.
        let mut t = GameSession::from_refs(&g, &p).unwrap();
        let _ = t.social_cost();
        assert_eq!(t.memory_bytes(), warm);
    }

    #[test]
    fn snapshot_restore_roundtrips_profile_and_tiers() {
        let g = detour_game();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let _ = s.social_cost();
        let _ = s.best_response(PeerId::new(1), BestResponseMethod::Exact);
        let snap = s.snapshot();
        assert_eq!(
            snap.overlay_rows.len(),
            4,
            "all rows valid after a cost query"
        );
        let mut restored = GameSession::restore(g.clone(), snap.clone()).unwrap();
        assert_eq!(restored.profile(), s.profile());
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.stats().snapshot_restores, 1);
        assert_eq!(
            restored.social_cost().total().to_bits(),
            s.social_cost().total().to_bits()
        );

        // Malformed snapshots are rejected, not installed.
        let mut bad = snap.clone();
        bad.overlay_rows[0].1.pop();
        assert!(matches!(
            GameSession::restore(g.clone(), bad),
            Err(CoreError::InvalidSnapshot { .. })
        ));
        let mut bad = snap.clone();
        bad.residual_rows.push((2, 2, vec![0.0; 4]));
        assert!(matches!(
            GameSession::restore(g.clone(), bad),
            Err(CoreError::InvalidSnapshot { .. })
        ));
        let mut dup = snap;
        if dup.overlay_rows.len() >= 2 {
            dup.overlay_rows[1].0 = dup.overlay_rows[0].0;
            assert!(matches!(
                GameSession::restore(g, dup),
                Err(CoreError::InvalidSnapshot { .. })
            ));
        }
    }

    #[test]
    fn apply_batch_with_cancelling_moves_is_free() {
        let g = game(1.0);
        let p = StrategyProfile::from_links(5, &[(0, 1), (1, 0)]).unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let _ = s.social_cost();
        let warm = s.stats();
        let prev = s
            .apply_batch(&[
                Move::AddLink {
                    from: PeerId::new(2),
                    to: PeerId::new(3),
                },
                Move::RemoveLink {
                    from: PeerId::new(2),
                    to: PeerId::new(3),
                },
            ])
            .unwrap();
        assert_eq!(prev.len(), 2);
        assert!(prev[0].is_empty());
        assert!(prev[1].contains(PeerId::new(3)));
        let after = s.stats();
        assert_eq!(
            after.csr_rebuilds, warm.csr_rebuilds,
            "net no-op skips the rebuild"
        );
        assert_eq!(after.batch_applies, 0, "no-op batches are not counted");
    }

    #[test]
    fn batched_removals_scan_rows_once() {
        let g = game(2.0);
        // Star out of peer 0: removing two spokes in one batch must run a
        // single repair scan (one rebuild), not one per removal.
        let p = StrategyProfile::from_links(
            5,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 0),
                (2, 0),
                (3, 0),
                (4, 0),
            ],
        )
        .unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let _ = s.social_cost();
        let warm = s.stats();
        s.apply_batch(&[
            Move::RemoveLink {
                from: PeerId::new(0),
                to: PeerId::new(3),
            },
            Move::RemoveLink {
                from: PeerId::new(0),
                to: PeerId::new(4),
            },
        ])
        .unwrap();
        let after = s.stats();
        assert_eq!(after.csr_rebuilds - warm.csr_rebuilds, 1);
        assert_eq!(
            (after.rows_invalidated + after.rows_preserved)
                - (warm.rows_invalidated + warm.rows_preserved),
            5,
            "each valid row is visited exactly once by the batch repair"
        );
        assert_matches_free_functions(&mut s);
    }

    #[test]
    fn parallel_refill_matches_sequential() {
        let g = game(1.5);
        let p = StrategyProfile::from_links(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let mut par = GameSession::from_refs(&g, &p).unwrap();
        par.set_parallelism(Some(3));
        let mut seq = GameSession::from_refs(&g, &p).unwrap();
        seq.set_parallelism(Some(1));

        let a = par.social_cost();
        let b = seq.social_cost();
        assert_eq!(a, b);
        assert_eq!(par.overlay_distances(), seq.overlay_distances());
        assert_eq!(par.stats().parallel_passes, 1);
        assert_eq!(par.stats().parallel_rows, 5);
        assert_eq!(
            par.stats().full_sssp,
            5,
            "parallel rows count as full sweeps"
        );
        assert_eq!(seq.stats().parallel_passes, 0);
        assert_matches_free_functions(&mut par);

        // Invalidate some rows and refill again through the threaded path.
        par.apply(Move::RemoveLink {
            from: PeerId::new(1),
            to: PeerId::new(2),
        })
        .unwrap();
        seq.apply(Move::RemoveLink {
            from: PeerId::new(1),
            to: PeerId::new(2),
        })
        .unwrap();
        assert_eq!(par.social_cost(), seq.social_cost());
        assert_matches_free_functions(&mut par);
    }

    #[test]
    fn peer_cost_is_lazy_one_row() {
        let g = game(1.0);
        let p = StrategyProfile::complete(5);
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let _ = s.peer_cost(PeerId::new(2)).unwrap();
        assert_eq!(s.stats().full_sssp, 1, "peer_cost computes a single row");
    }

    #[test]
    fn set_profile_resets_cache() {
        let g = game(1.0);
        let mut s = GameSession::from_refs(&g, &StrategyProfile::complete(5)).unwrap();
        let dense = s.social_cost();
        s.set_profile(StrategyProfile::empty(5)).unwrap();
        let empty = s.social_cost();
        assert!(dense.is_connected());
        assert!(!empty.is_connected());
        assert!(s.set_profile(StrategyProfile::empty(3)).is_err());
    }

    #[test]
    fn set_parallelism_zero_clamps_to_one() {
        let g = game(1.5);
        let p = StrategyProfile::from_links(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        s.set_parallelism(Some(0));
        assert_eq!(
            s.resolved_parallelism(),
            1,
            "Some(0) must fall back to the calling thread"
        );
        // The clamped knob behaves exactly like Some(1): sequential refills.
        let _ = s.social_cost();
        assert_eq!(s.stats().parallel_passes, 0);
        let responses = s
            .best_responses_round(
                &(0..5).map(PeerId::new).collect::<Vec<_>>(),
                BestResponseMethod::Exact,
            )
            .unwrap();
        assert_eq!(responses.len(), 5);
        assert_eq!(s.stats().oracle_parallel_rounds, 0);
    }

    #[test]
    fn fork_readonly_shares_game_and_snapshots_caches() {
        let g = detour_game();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let _ = s.social_cost();
        let warm_sweeps = s.stats().full_sssp;
        let mut fork = s.fork_readonly();
        // The fork starts with zeroed counters and every row already
        // valid: reading costs recomputes nothing.
        assert_eq!(fork.stats(), SessionStats::default());
        assert_eq!(fork.social_cost(), s.social_cost());
        assert_eq!(fork.stats().full_sssp, 0, "snapshot rows must be reused");
        assert_eq!(s.stats().full_sssp, warm_sweeps);
        // Forks are independent sessions: mutating one leaves the other.
        fork.apply(Move::RemoveLink {
            from: PeerId::new(0),
            to: PeerId::new(1),
        })
        .unwrap();
        assert_ne!(fork.profile(), s.profile());
        assert_matches_free_functions(&mut fork);
        assert_matches_free_functions(&mut s);
    }

    #[test]
    fn cached_best_response_matches_fresh_oracle() {
        let g = detour_game();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 0), (1, 2), (3, 2)]).unwrap();
        for method in [BestResponseMethod::Exact, BestResponseMethod::Greedy] {
            let mut s = GameSession::from_refs(&g, &p).unwrap();
            for i in 0..4 {
                let peer = PeerId::new(i);
                let a = s.best_response_uncached(peer, method).unwrap();
                let b = s.best_response(peer, method).unwrap();
                assert_eq!(a.links, b.links, "peer {i}");
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "peer {i}");
                assert_eq!(a.current_cost.to_bits(), b.current_cost.to_bits());
            }
            let stats = s.stats();
            assert!(
                stats.seq_oracle_hits > 0,
                "some candidate rows must come from the cache: {stats:?}"
            );
            assert_eq!(
                stats.seq_oracle_hits + stats.seq_oracle_swept,
                4 * 3,
                "every candidate row of every cached build is accounted for"
            );
        }
    }

    #[test]
    fn residual_rows_survive_unrelated_moves() {
        let g = game(1.2);
        // A hub at peer 0 forces candidate rows through its out-links,
        // so the first cached build pays fresh G_{-0} sweeps.
        let p = StrategyProfile::from_links(
            5,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 0),
                (2, 0),
                (3, 0),
                (4, 0),
            ],
        )
        .unwrap();
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        let hub = PeerId::new(0);
        let first = s.best_response(hub, BestResponseMethod::Exact).unwrap();
        let swept_once = s.stats().seq_oracle_swept;
        assert!(swept_once > 0, "hub oracle must sweep at least one row");
        // The hub moving does not change G_{-0}: a second activation must
        // serve every previously swept row from the residual tier.
        s.apply(Move::AddLink {
            from: hub,
            to: PeerId::new(2),
        })
        .unwrap();
        s.apply(Move::RemoveLink {
            from: hub,
            to: PeerId::new(2),
        })
        .unwrap();
        let second = s.best_response(hub, BestResponseMethod::Exact).unwrap();
        assert_eq!(first.links, second.links);
        assert_eq!(
            s.stats().seq_oracle_swept,
            swept_once,
            "re-activating the mover itself must not re-sweep residual rows: {:?}",
            s.stats()
        );
        // A *removal by another peer* that can carry shortest paths kills
        // the affected residual rows.
        s.apply(Move::RemoveLink {
            from: PeerId::new(3),
            to: PeerId::new(0),
        })
        .unwrap();
        assert!(
            s.stats().seq_oracle_invalidated > 0,
            "tight removals must drop residual rows: {:?}",
            s.stats()
        );
        // And correctness always wins: the cached response still matches
        // the fresh oracle bit for bit.
        let a = s
            .best_response_uncached(hub, BestResponseMethod::Exact)
            .unwrap();
        let b = s.best_response(hub, BestResponseMethod::Exact).unwrap();
        assert_eq!(a.links, b.links);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }

    #[test]
    fn residual_rows_outlive_a_fully_invalidated_overlay() {
        // Bidirectional chain 0-1-2-3-4 on the line metric. A cached
        // build for the middle peer 2 sweeps residual G_{-2} rows for
        // every candidate that routes through it (all four: each side
        // reaches the other only via 2).
        let g = game(1.0);
        let chain = StrategyProfile::from_links(
            5,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 3),
            ],
        )
        .unwrap();
        let mut s = GameSession::from_refs(&g, &chain).unwrap();
        let mid = PeerId::new(2);
        let _ = s.best_response(mid, BestResponseMethod::Exact).unwrap();
        assert!(s.stats().seq_oracle_swept > 0, "chain middle must sweep");

        // Cutting 0 <-> 1 is tight for every overlay row (each side of
        // the cut reaches the other through it, and the endpoint rows use
        // it directly), so the whole overlay tier invalidates — while the
        // residual rows for sources that never crossed the cut in G_{-2}
        // survive the same repair.
        let before = s.stats();
        s.apply_batch(&[
            Move::RemoveLink {
                from: PeerId::new(1),
                to: PeerId::new(0),
            },
            Move::RemoveLink {
                from: PeerId::new(0),
                to: PeerId::new(1),
            },
        ])
        .unwrap();
        assert_eq!(
            s.stats().rows_invalidated - before.rows_invalidated,
            5,
            "the cut must invalidate every overlay row"
        );

        // The NEXT apply used to take the lazy bail-out (no valid
        // overlay rows) and wipe the surviving residual tier with it.
        s.apply(Move::AddLink {
            from: PeerId::new(0),
            to: PeerId::new(2),
        })
        .unwrap();

        // Re-activating peer 2: candidates 3 and 4 still route through
        // it, their residual rows survived both repairs (no removed edge
        // was tight on them in G_{-2}), and must be served without a
        // fresh sweep.
        let swept_before = s.stats().seq_oracle_swept;
        let hits_before = s.stats().seq_oracle_hits;
        let cached = s.best_response(mid, BestResponseMethod::Exact).unwrap();
        assert!(
            s.stats().seq_oracle_hits - hits_before >= 2,
            "residual rows for sources 3 and 4 must survive and serve: {:?}",
            s.stats()
        );
        assert!(
            s.stats().seq_oracle_swept - swept_before <= 2,
            "only the rows the cut genuinely touched may re-sweep: {:?}",
            s.stats()
        );
        let fresh = s
            .best_response_uncached(mid, BestResponseMethod::Exact)
            .unwrap();
        assert_eq!(fresh.links, cached.links);
        assert_eq!(fresh.cost.to_bits(), cached.cost.to_bits());
    }

    #[test]
    fn sharded_round_matches_sequential_and_counts_shards() {
        let g = game(1.2);
        let p = StrategyProfile::from_links(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let peers: Vec<PeerId> = (0..5).map(PeerId::new).collect();
        let mut seq = GameSession::from_refs(&g, &p).unwrap();
        let baseline: Vec<BestResponse> = peers
            .iter()
            .map(|&peer| seq.best_response(peer, BestResponseMethod::Exact).unwrap())
            .collect();
        for shards in [2usize, 3, 7, 12] {
            let mut s = GameSession::from_refs(&g, &p).unwrap();
            s.set_parallelism(Some(shards));
            let got = s
                .best_responses_round(&peers, BestResponseMethod::Exact)
                .unwrap();
            assert_eq!(got.len(), baseline.len());
            for (a, b) in baseline.iter().zip(&got) {
                assert_eq!(a.peer, b.peer);
                assert_eq!(a.links, b.links, "shards = {shards}");
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "shards = {shards}");
            }
            let stats = s.stats();
            assert_eq!(stats.oracle_parallel_rounds, 1);
            assert_eq!(stats.oracle_shards, shards.min(peers.len()));
            assert_eq!(stats.oracle_builds, peers.len());
        }
        // Out-of-bounds peers are rejected up front.
        let mut s = GameSession::from_refs(&g, &p).unwrap();
        s.set_parallelism(Some(2));
        assert!(matches!(
            s.best_responses_round(&[PeerId::new(9)], BestResponseMethod::Exact),
            Err(CoreError::PeerOutOfBounds { peer: 9, n: 5 })
        ));
        assert!(s
            .best_responses_round(&[], BestResponseMethod::Exact)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn single_peer_and_empty_profiles() {
        let g = Game::from_space(&LineSpace::new(vec![0.0]).unwrap(), 1.0).unwrap();
        let mut s = GameSession::from_refs(&g, &StrategyProfile::empty(1)).unwrap();
        assert_eq!(s.peer_cost(PeerId::new(0)).unwrap(), 0.0);
        assert_eq!(s.max_stretch(), 1.0);
        let br = s
            .best_response(PeerId::new(0), BestResponseMethod::Exact)
            .unwrap();
        assert!(br.links.is_empty());
    }
}
