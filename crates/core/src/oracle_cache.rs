//! The persistent shortest-path cache behind [`GameSession`]'s
//! evaluation and best-response oracles.
//!
//! [`OracleCache`] owns **two** tiers of cached rows, both repaired
//! incrementally when the profile mutates — this is the single
//! invalidation code path for every oracle the session hands out
//! (sequential activations *and* the sharded simultaneous round engine):
//!
//! 1. **Overlay rows** — the full-overlay distance matrix `d_G(u, ·)`
//!    with per-row validity, exactly the cache `GameSession` has carried
//!    since PR 1. A best-response oracle for peer `i` reuses row `v`
//!    verbatim whenever none of `i`'s out-links is tight on it.
//! 2. **Residual rows** — `D_{G_{-i}}(v, ·)` rows that a previous oracle
//!    build for peer `i` had to sweep because row `v` *does* route
//!    through `i`'s out-links. They are keyed by `(i, v)` and survive
//!    [`GameSession::apply`] / `apply_batch`, so consecutive activations
//!    of the same peer in sequential dynamics stop re-sweeping them.
//!
//! # Invalidation invariants
//!
//! After every committed edge diff `(added, removed)` the cache
//! restores this contract before any row is served again:
//!
//! * an overlay row `u` survives untouched iff **no** removed link could
//!   be tight on one of `u`'s shortest paths (`d_u(i) + w > d_u(j)`
//!   beyond [`EDGE_ON_PATH_EPS`] slack — ties conservatively invalidate);
//!   added links are folded in by seeded decrease-only relaxation
//!   ([`sp_graph::CsrGraph::relax_decrease_into`]);
//! * a residual row `(i, v)` ignores edge changes **owned by `i`**
//!   (`G_{-i}` never contained `i`'s out-links); removals by other peers
//!   apply the same tightness test against the residual row's own
//!   values, and additions re-relax through
//!   [`sp_graph::CsrGraph::relax_decrease_skipping`] so the repair never
//!   routes through `i`;
//! * every surviving row is **bit-identical** to a fresh sweep of the
//!   corresponding graph (enforced by `crates/core/tests/proptest_session.rs`
//!   and `crates/graph/tests/proptest_incremental.rs`): both a fresh
//!   Dijkstra and decrease-only relaxation compute the minimum over
//!   source-to-target path sums, so equal inputs give equal bits.
//!
//! Residual rows are capped by [`RESIDUAL_BUDGET_BYTES`]; once the cap
//! is reached new sweeps are simply not retained (deterministic — no
//! eviction order to get wrong). Forked shards
//! ([`GameSession::fork_readonly`]) carry a zero cap: they are
//! short-lived snapshots whose stores would never be read again.
//!
//! [`GameSession`]: crate::GameSession
//! [`GameSession::apply`]: crate::GameSession::apply
//! [`GameSession::fork_readonly`]: crate::GameSession::fork_readonly

use std::collections::HashMap;

use sp_graph::{edge_on_path, CsrGraph, DijkstraScratch, DistanceMatrix};

use crate::session::EDGE_ON_PATH_EPS;

/// Default memory budget for retained residual rows (64 MiB of `f64`s)
/// — generous, sized for a process running **one** hot session. The
/// entry cap is `budget / (8·n)`, clamped to `n·(n-1)` — the number of
/// distinct `(excluded, source)` keys, so small instances retain every
/// residual row while large ones stay inside the budget. Multi-tenant
/// hosts (the `sp-serve` registry) shrink it per session through
/// [`GameSession::set_residual_budget`](crate::GameSession::set_residual_budget).
pub(crate) const RESIDUAL_BUDGET_BYTES: usize = 64 << 20;

/// What one [`OracleCache::repair_after_edges`] pass did, for the
/// session's work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RepairCounts {
    /// Overlay rows dropped (a removed link may have been tight).
    pub rows_invalidated: usize,
    /// Overlay rows kept (untouched or repaired in place).
    pub rows_preserved: usize,
    /// Seeded decrease-only relaxations run on overlay rows.
    pub incremental_relaxations: usize,
    /// Residual rows dropped by the same tightness test.
    pub residual_invalidated: usize,
}

/// Two-tier shortest-path row cache: the overlay distance matrix with
/// per-row validity, plus retained residual `G_{-i}` rows. See the
/// module docs for the invalidation invariants.
#[derive(Debug, Clone)]
pub(crate) struct OracleCache {
    /// Overlay distances; row `u` is meaningful iff `row_valid[u]`.
    dist: DistanceMatrix,
    row_valid: Vec<bool>,
    /// Residual rows `D_{G_{-i}}(v, ·)` keyed by `(i, v)`.
    residual: HashMap<(usize, usize), Vec<f64>>,
    /// Maximum number of retained residual rows (0 disables retention).
    residual_cap: usize,
}

fn residual_cap_for(n: usize) -> usize {
    residual_cap_for_budget(n, RESIDUAL_BUDGET_BYTES)
}

fn residual_cap_for_budget(n: usize, budget: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let by_budget = budget / (8 * n);
    by_budget.min(n.saturating_mul(n.saturating_sub(1)))
}

impl OracleCache {
    /// An all-invalid cache for `n` peers.
    pub(crate) fn new(n: usize) -> Self {
        OracleCache {
            dist: DistanceMatrix::new_filled(n, f64::INFINITY),
            row_valid: vec![false; n],
            residual: HashMap::new(),
            residual_cap: residual_cap_for(n),
        }
    }

    /// Snapshot for a read-only fork: overlay rows are copied as they
    /// stand, residual retention is disabled (cap 0, empty map) — a
    /// shard lives for one round and would never read its own stores.
    pub(crate) fn fork(&self) -> Self {
        OracleCache {
            dist: self.dist.clone(),
            row_valid: self.row_valid.clone(),
            residual: HashMap::new(),
            residual_cap: 0,
        }
    }

    /// Re-derives the residual-row cap from a caller-chosen byte budget
    /// (a fork's zero cap stays zero). Rows already retained above a
    /// shrunken cap are kept — they stay exact under repair and evicting
    /// them would only re-pay sweeps — but no new rows are stored until
    /// repairs drop the count below the cap. Never changes a value any
    /// tier serves, so cached ≡ fresh bit-identity is unaffected.
    pub(crate) fn set_budget(&mut self, bytes: usize) {
        if self.residual_cap > 0 {
            self.residual_cap = residual_cap_for_budget(self.row_valid.len(), bytes);
        }
    }

    /// Drops every cached row, both tiers.
    pub(crate) fn invalidate_all(&mut self) {
        self.row_valid.fill(false);
        self.residual.clear();
    }

    /// `true` when at least one overlay row is valid (i.e. there is
    /// cached state worth repairing).
    pub(crate) fn any_valid_row(&self) -> bool {
        self.row_valid.iter().any(|&v| v)
    }

    /// Number of overlay rows that would need a sweep right now.
    pub(crate) fn invalid_row_count(&self) -> usize {
        self.row_valid.iter().filter(|&&v| !v).count()
    }

    /// `true` when residual rows are retained — state worth repairing
    /// even when every overlay row is already invalid.
    pub(crate) fn has_residual_rows(&self) -> bool {
        !self.residual.is_empty()
    }

    /// Overlay row `u` (caller guarantees validity).
    pub(crate) fn row(&self, u: usize) -> &[f64] {
        debug_assert!(self.row_valid[u], "reading an invalid overlay row");
        self.dist.row(u)
    }

    /// Whether overlay row `u` currently holds valid distances.
    pub(crate) fn row_is_valid(&self, u: usize) -> bool {
        self.row_valid[u]
    }

    /// Every valid overlay row as `(source, distances)`, in source order —
    /// the overlay tier of a session snapshot.
    pub(crate) fn valid_rows(&self) -> impl Iterator<Item = (usize, &[f64])> + '_ {
        self.row_valid
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v)
            .map(|(u, _)| (u, self.dist.row(u)))
    }

    /// Every retained residual row as `(excluded, source, distances)`,
    /// sorted by key so snapshots are deterministic.
    pub(crate) fn residual_rows_sorted(&self) -> Vec<(usize, usize, &[f64])> {
        // sp-lint: allow(nondeterministic-iteration, reason = "order-insensitive: the collected rows are sorted by key immediately below")
        let mut rows: Vec<(usize, usize, &[f64])> = self
            .residual
            .iter()
            .map(|(&(i, v), row)| (i, v, row.as_slice()))
            .collect();
        rows.sort_unstable_by_key(|&(i, v, _)| (i, v));
        rows
    }

    /// Installs overlay row `u` verbatim and marks it valid (snapshot
    /// restore; the caller has validated the length).
    pub(crate) fn restore_row(&mut self, u: usize, row: &[f64]) {
        self.dist.row_mut(u).copy_from_slice(row);
        self.row_valid[u] = true;
    }

    /// Installs a residual row verbatim (snapshot restore). Unlike
    /// [`OracleCache::store_residual`] this bypasses the cap check: the
    /// source session respected the cap, so a faithful restore fits.
    pub(crate) fn restore_residual(&mut self, excluded: usize, source: usize, row: Vec<f64>) {
        self.residual.insert((excluded, source), row);
    }

    /// Semantic size of the cached state in bytes: the overlay matrix and
    /// validity bits plus every retained residual row (with its key).
    /// Counts what the data is, not what the allocator holds, so the
    /// number is identical across machines and runs.
    pub(crate) fn memory_bytes(&self) -> usize {
        let n = self.row_valid.len();
        let overlay = n * n * std::mem::size_of::<f64>() + n;
        let residual_row = n * std::mem::size_of::<f64>() + 2 * std::mem::size_of::<usize>();
        overlay + self.residual.len() * residual_row
    }

    /// The full overlay matrix (caller guarantees all rows valid).
    pub(crate) fn matrix(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Sweeps overlay row `u` if invalid; returns `true` when a sweep
    /// actually ran (the caller counts it).
    pub(crate) fn ensure_row(
        &mut self,
        csr: &CsrGraph,
        u: usize,
        scratch: &mut DijkstraScratch,
    ) -> bool {
        if self.row_valid[u] {
            return false;
        }
        csr.dijkstra_into_with(u, self.dist.row_mut(u), scratch);
        self.row_valid[u] = true;
        true
    }

    /// The `(source, buffer)` jobs for every invalid overlay row — the
    /// input to [`sp_graph::CsrGraph::dijkstra_rows_with`]. The caller
    /// must follow a completed run with [`OracleCache::mark_all_valid`].
    pub(crate) fn invalid_jobs(&mut self) -> Vec<(usize, &mut [f64])> {
        let row_valid = &self.row_valid;
        self.dist
            .rows_mut()
            .enumerate()
            .filter(|&(u, _)| !row_valid[u])
            .collect()
    }

    /// Marks every overlay row valid (after a bulk refill).
    pub(crate) fn mark_all_valid(&mut self) {
        self.row_valid.fill(true);
    }

    /// The `(source, buffer)` jobs for the given overlay rows — the
    /// selective analogue of [`OracleCache::invalid_jobs`], used by the
    /// lazy oracle refill to leave residual-served rows untouched.
    /// `rows` must be sorted ascending; the caller must follow a
    /// completed run with [`OracleCache::mark_rows_valid`].
    pub(crate) fn jobs_for(&mut self, rows: &[usize]) -> Vec<(usize, &mut [f64])> {
        self.dist
            .rows_mut()
            .enumerate()
            .filter(|(u, _)| rows.binary_search(u).is_ok())
            .collect()
    }

    /// Marks the given overlay rows valid (after a selective refill).
    pub(crate) fn mark_rows_valid(&mut self, rows: &[usize]) {
        for &u in rows {
            self.row_valid[u] = true;
        }
    }

    /// Residual row `D_{G_{-excluded}}(source, ·)`, if retained.
    pub(crate) fn residual_row(&self, excluded: usize, source: usize) -> Option<&[f64]> {
        self.residual.get(&(excluded, source)).map(Vec::as_slice)
    }

    /// Retains a freshly swept residual row, space permitting.
    pub(crate) fn store_residual(&mut self, excluded: usize, source: usize, row: &[f64]) {
        if self.residual.len() < self.residual_cap {
            self.residual.insert((excluded, source), row.to_vec());
        }
    }

    /// Number of retained residual rows (test hook).
    #[cfg(test)]
    pub(crate) fn residual_len(&self) -> usize {
        self.residual.len()
    }

    /// The single repair pass both tiers share, run against the **new**
    /// overlay CSR after the profile diff `(added, removed)` — each entry
    /// a `(from, to, weight)` edge — has been committed. See the module
    /// docs for the exact invariants restored.
    pub(crate) fn repair_after_edges(
        &mut self,
        csr: &CsrGraph,
        added: &[(usize, usize, f64)],
        removed: &[(usize, usize, f64)],
        scratch: &mut DijkstraScratch,
    ) -> RepairCounts {
        let mut counts = RepairCounts::default();
        let n = self.row_valid.len();
        let mut seeds: Vec<(usize, f64)> = Vec::with_capacity(added.len());

        for u in 0..n {
            if !self.row_valid[u] {
                continue;
            }
            let row = self.dist.row(u);

            // A removed link (i, j) can only affect u's distances when u
            // reaches i and the link was tight on some shortest path —
            // the one tightness predicate every backend shares.
            let broken = removed
                .iter()
                .any(|&(i, j, w)| edge_on_path(row[i], w, row[j], EDGE_ON_PATH_EPS));
            if broken {
                self.row_valid[u] = false;
                counts.rows_invalidated += 1;
                continue;
            }

            // Added links only ever shorten distances: repair in place.
            seeds.clear();
            seeds.extend(added.iter().filter_map(|&(i, j, w)| {
                let d_ui = row[i];
                // sp-lint: allow(float-eps, reason = "strict-decrease seeding: exact improvement is the Dijkstra fixpoint criterion; an eps band would re-seed settled rows forever")
                (d_ui.is_finite() && d_ui + w < row[j]).then_some((j, d_ui + w))
            }));
            if !seeds.is_empty() {
                csr.relax_decrease_into(self.dist.row_mut(u), &seeds, scratch);
                counts.incremental_relaxations += 1;
            }
            counts.rows_preserved += 1;
        }

        // Residual rows: identical tests against the row's own values,
        // except that edges owned by the excluded peer are invisible
        // (G_{-i} never contained them) and additions re-relax without
        // routing through the excluded peer.
        let mut residual_invalidated = 0usize;
        // sp-lint: allow(nondeterministic-iteration, reason = "order-insensitive: each entry's keep/drop decision depends only on that entry; the counter is a commutative sum")
        self.residual.retain(|&(excluded, _source), row| {
            let broken = removed.iter().any(|&(i, j, w)| {
                i != excluded && edge_on_path(row[i], w, row[j], EDGE_ON_PATH_EPS)
            });
            if broken {
                residual_invalidated += 1;
                return false;
            }
            seeds.clear();
            seeds.extend(added.iter().filter_map(|&(i, j, w)| {
                if i == excluded {
                    return None;
                }
                let d_ui = row[i];
                // sp-lint: allow(float-eps, reason = "strict-decrease seeding: exact improvement is the Dijkstra fixpoint criterion; an eps band would re-seed settled rows forever")
                (d_ui.is_finite() && d_ui + w < row[j]).then_some((j, d_ui + w))
            }));
            if !seeds.is_empty() {
                csr.relax_decrease_skipping(row, &seeds, excluded, scratch);
            }
            true
        });
        counts.residual_invalidated = residual_invalidated;
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_cap_scales_with_budget_and_bounds() {
        assert_eq!(residual_cap_for(0), 0);
        assert_eq!(residual_cap_for(1), 0, "one peer has no (i, v) keys");
        // Small n: bounded by the n(n-1) key count, not the budget.
        assert_eq!(residual_cap_for(8), 8 * 7);
        // Large n: bounded by the byte budget.
        let n = 1 << 16;
        assert_eq!(residual_cap_for(n), RESIDUAL_BUDGET_BYTES / (8 * n));
    }

    #[test]
    fn store_respects_cap_and_fork_disables_retention() {
        let mut cache = OracleCache::new(3);
        cache.residual_cap = 1;
        cache.store_residual(0, 1, &[0.0, 1.0, 2.0]);
        cache.store_residual(0, 2, &[9.0, 9.0, 9.0]);
        assert_eq!(cache.residual_len(), 1, "cap must refuse the second row");
        assert!(cache.residual_row(0, 1).is_some());
        assert!(cache.residual_row(0, 2).is_none());
        let fork = cache.fork();
        assert_eq!(fork.residual_len(), 0);
        assert_eq!(fork.residual_cap, 0);
    }
}
