//! Traffic-weighted cost variant — the extension the paper's conclusion
//! calls for ("incorporate aspects such as overlay routing and
//! congestion into our model").
//!
//! Instead of every destination counting equally, peer `i` weights the
//! stretch to `j` by a demand `w_ij ≥ 0` (lookups per unit time):
//!
//! ```text
//! c_i(s) = α·|s_i| + Σ_{j≠i} w_ij · stretch_G(i, j)
//! ```
//!
//! The uniform demand `w ≡ 1` recovers the paper's game exactly
//! (property-tested). Zero-demand destinations may legally be left
//! unreachable — the peer simply does not care about them — which changes
//! equilibrium structure in interesting ways (hot peers attract links,
//! cold peers are served indirectly or not at all).

use sp_graph::{dijkstra, CsrGraph, DistanceMatrix};

use crate::{
    topology, topology_without_peer, BestResponse, BestResponseMethod, CoreError, Game, LinkSet,
    PeerId, SocialCost, StrategyProfile,
};
use sp_facility::{
    solve_branch_and_bound, solve_enumeration, solve_greedy, solve_local_search, FacilityError,
    FacilityProblem,
};

/// A non-negative traffic demand matrix; `w[(i, j)]` is how much peer `i`
/// cares about reaching `j`. The diagonal is ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficDemands {
    weights: DistanceMatrix,
}

impl TrafficDemands {
    /// Validates and wraps a demand matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Metric`] if any entry is negative, NaN or
    /// infinite.
    pub fn new(weights: DistanceMatrix) -> Result<Self, CoreError> {
        let n = weights.len();
        for i in 0..n {
            for j in 0..n {
                let w = weights[(i, j)];
                if !w.is_finite() || w < 0.0 {
                    return Err(CoreError::Metric(sp_metric::MetricError::NonFiniteValue {
                        context: "traffic demand",
                    }));
                }
            }
        }
        Ok(TrafficDemands { weights })
    }

    /// The uniform demand (`w ≡ 1`), reproducing the unweighted game.
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        TrafficDemands {
            // sp-lint: allow(dense-alloc, reason = "demand weights are inherently pairwise; weighted games are dense-backend only")
            weights: DistanceMatrix::new_filled(n, 1.0),
        }
    }

    /// A "hotspot" demand: everyone wants `hot_weight` traffic to `hot`,
    /// and 1.0 to everyone else.
    ///
    /// # Panics
    ///
    /// Panics if `hot >= n` or `hot_weight` is not finite non-negative.
    #[must_use]
    pub fn hotspot(n: usize, hot: usize, hot_weight: f64) -> Self {
        assert!(hot < n, "hot peer {hot} out of bounds");
        assert!(
            hot_weight.is_finite() && hot_weight >= 0.0,
            "hot weight must be finite non-negative"
        );
        // sp-lint: allow(dense-alloc, reason = "demand weights are inherently pairwise; weighted games are dense-backend only")
        let mut m = DistanceMatrix::new_filled(n, 1.0);
        for i in 0..n {
            if i != hot {
                m[(i, hot)] = hot_weight;
            }
        }
        TrafficDemands { weights: m }
    }

    /// Number of peers the matrix covers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// The demand from `i` to `j` (0.0 on the diagonal by convention).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[must_use]
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.weights[(i, j)]
        }
    }
}

/// The demand-weighted selfish-peers game.
///
/// # Example
///
/// ```
/// use sp_core::demand::{DemandGame, TrafficDemands};
/// use sp_core::{Game, StrategyProfile, PeerId, BestResponseMethod};
/// use sp_metric::LineSpace;
///
/// let base = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 5.0]).unwrap(), 1.0).unwrap();
/// // Peer 0 only cares about peer 1.
/// let mut w = sp_graph::DistanceMatrix::new_filled(3, 1.0);
/// w[(0, 2)] = 0.0;
/// let game = DemandGame::new(base, TrafficDemands::new(w).unwrap()).unwrap();
/// let p = StrategyProfile::empty(3);
/// let br = game.best_response(&p, PeerId::new(0), BestResponseMethod::Exact).unwrap();
/// // 0 links only to 1; leaving 2 unreachable is free under zero demand.
/// assert_eq!(br.links.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DemandGame {
    base: Game,
    demands: TrafficDemands,
}

impl DemandGame {
    /// Combines a base game with a demand matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProfileSizeMismatch`] if the sizes disagree.
    pub fn new(base: Game, demands: TrafficDemands) -> Result<Self, CoreError> {
        if base.n() != demands.n() {
            return Err(CoreError::ProfileSizeMismatch {
                expected: base.n(),
                actual: demands.n(),
            });
        }
        Ok(DemandGame { base, demands })
    }

    /// The underlying metric game.
    #[must_use]
    pub fn base(&self) -> &Game {
        &self.base
    }

    /// The demand matrix.
    #[must_use]
    pub fn demands(&self) -> &TrafficDemands {
        &self.demands
    }

    /// Number of peers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// Demand-weighted individual cost of `peer`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::peer_cost`].
    pub fn peer_cost(&self, profile: &StrategyProfile, peer: PeerId) -> Result<f64, CoreError> {
        if peer.index() >= self.n() {
            return Err(CoreError::PeerOutOfBounds {
                peer: peer.index(),
                n: self.n(),
            });
        }
        let g = topology(&self.base, profile)?;
        let dist = dijkstra(&g, peer.index());
        Ok(self.cost_from_distances(profile, peer, &dist))
    }

    fn cost_from_distances(&self, profile: &StrategyProfile, peer: PeerId, overlay: &[f64]) -> f64 {
        let i = peer.index();
        let mut sum = 0.0;
        for j in 0..self.n() {
            if j == i {
                continue;
            }
            let w = self.demands.weight(i, j);
            if w == 0.0 {
                continue; // unreachable-but-unwanted is free
            }
            sum += w * overlay[j] / self.base.distance(i, j);
            if sum.is_infinite() {
                return f64::INFINITY;
            }
        }
        self.base.alpha() * profile.strategy(peer).len() as f64 + sum
    }

    /// Demand-weighted social cost.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::social_cost`].
    pub fn social_cost(&self, profile: &StrategyProfile) -> Result<SocialCost, CoreError> {
        let g = topology(&self.base, profile)?;
        let csr = CsrGraph::from_digraph(&g);
        let n = self.n();
        let mut buf = vec![f64::INFINITY; n];
        let mut stretch_cost = 0.0f64;
        for i in 0..n {
            csr.dijkstra_into(i, &mut buf);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let w = self.demands.weight(i, j);
                if w > 0.0 {
                    stretch_cost += w * buf[j] / self.base.distance(i, j);
                }
            }
            if stretch_cost.is_infinite() {
                break;
            }
        }
        Ok(SocialCost {
            link_cost: self.base.alpha() * profile.link_count() as f64,
            stretch_cost,
        })
    }

    /// Exact or heuristic best response under weighted demands.
    ///
    /// Identical reduction to facility location as the unweighted game,
    /// with client `j`'s assignment costs scaled by `w_ij` and
    /// zero-demand clients dropped from the instance (they impose no
    /// constraint; links to them remain available as transit facilities).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::best_response`].
    pub fn best_response(
        &self,
        profile: &StrategyProfile,
        peer: PeerId,
        method: BestResponseMethod,
    ) -> Result<BestResponse, CoreError> {
        let current_cost = self.peer_cost(profile, peer)?;
        let n = self.n();
        if n <= 1 {
            return Ok(BestResponse {
                peer,
                links: LinkSet::new(),
                cost: 0.0,
                current_cost,
                exact: true,
            });
        }
        let i = peer.index();
        let g_minus = topology_without_peer(&self.base, profile, peer)?;
        let csr = CsrGraph::from_digraph(&g_minus);
        let candidates: Vec<usize> = (0..n).filter(|&v| v != i).collect();
        let clients: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&j| self.demands.weight(i, j) > 0.0)
            .collect();
        let mut assignment = Vec::with_capacity(candidates.len());
        let mut buf = vec![f64::INFINITY; n];
        for &v in &candidates {
            csr.dijkstra_into(v, &mut buf);
            let d_iv = self.base.distance(i, v);
            let row: Vec<f64> = clients
                .iter()
                .map(|&j| self.demands.weight(i, j) * (d_iv + buf[j]) / self.base.distance(i, j))
                .collect();
            assignment.push(row);
        }
        let problem = FacilityProblem::with_uniform_open_cost(self.base.alpha(), assignment)
            .expect("reduction produces valid costs");
        let sol = match method {
            BestResponseMethod::Exact => solve_branch_and_bound(&problem),
            BestResponseMethod::ExactEnumeration => {
                solve_enumeration(&problem).map_err(|e| match e {
                    FacilityError::TooManyFacilities { facilities, limit } => {
                        CoreError::InstanceTooLarge {
                            n: facilities + 1,
                            limit: limit + 1,
                        }
                    }
                    other => panic!("unexpected facility error: {other}"),
                })?
            }
            BestResponseMethod::Greedy => solve_greedy(&problem),
            BestResponseMethod::LocalSearch => solve_local_search(&problem, None),
        };
        let links: LinkSet = sol.open.iter().map(|&f| candidates[f]).collect();
        let cost = sol.cost;
        // sp-lint: allow(float-eps, reason = "conservative accept: a heuristic tie or epsilon-worse solution keeps the current strategy, which is always valid")
        if cost > current_cost {
            return Ok(BestResponse {
                peer,
                links: profile.strategy(peer).clone(),
                cost: current_cost,
                current_cost,
                exact: method.is_exact(),
            });
        }
        Ok(BestResponse {
            peer,
            links,
            cost,
            current_cost,
            exact: method.is_exact(),
        })
    }

    /// Round-robin exact best-response dynamics for the weighted game;
    /// returns the final profile and whether it converged within
    /// `max_rounds`.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from the best-response computation.
    pub fn best_response_dynamics(
        &self,
        start: StrategyProfile,
        max_rounds: usize,
    ) -> Result<(StrategyProfile, bool), CoreError> {
        if start.n() != self.n() {
            return Err(CoreError::ProfileSizeMismatch {
                expected: self.n(),
                actual: start.n(),
            });
        }
        let mut profile = start;
        for _ in 0..max_rounds {
            let mut changed = false;
            for i in 0..self.n() {
                let p = PeerId::new(i);
                let br = self.best_response(&profile, p, BestResponseMethod::Exact)?;
                if br.improves(1e-9) && &br.links != profile.strategy(p) {
                    profile.set_strategy(p, br.links)?;
                    changed = true;
                }
            }
            if !changed {
                return Ok((profile, true));
            }
        }
        Ok((profile, false))
    }

    /// Returns the first peer with a profitable deviation, or `None` if
    /// `profile` is a Nash equilibrium of the weighted game.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from the best-response computation.
    pub fn find_deviation(
        &self,
        profile: &StrategyProfile,
    ) -> Result<Option<(PeerId, LinkSet, f64, f64)>, CoreError> {
        for i in 0..self.n() {
            let p = PeerId::new(i);
            let br = self.best_response(profile, p, BestResponseMethod::Exact)?;
            if br.improves(1e-9) {
                return Ok(Some((p, br.links, br.current_cost, br.cost)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{best_response, peer_cost, social_cost};
    use sp_metric::LineSpace;

    fn base_game() -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 3.0, 4.5]).unwrap(), 1.5).unwrap()
    }

    #[test]
    fn uniform_demands_recover_the_paper_game() {
        let base = base_game();
        let dg = DemandGame::new(base.clone(), TrafficDemands::uniform(4)).unwrap();
        let profiles = [
            StrategyProfile::complete(4),
            StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap(),
            StrategyProfile::empty(4),
        ];
        for p in profiles {
            for i in 0..4 {
                let a = dg.peer_cost(&p, PeerId::new(i)).unwrap();
                let b = peer_cost(&base, &p, PeerId::new(i)).unwrap();
                assert!((a - b).abs() < 1e-12 || (a.is_infinite() && b.is_infinite()));
            }
            let sa = dg.social_cost(&p).unwrap();
            let sb = social_cost(&base, &p).unwrap();
            assert!(
                (sa.total() - sb.total()).abs() < 1e-9
                    || (sa.total().is_infinite() && sb.total().is_infinite())
            );
            // Best responses agree too.
            let bra = dg
                .best_response(&p, PeerId::new(0), BestResponseMethod::Exact)
                .unwrap();
            let brb = best_response(&base, &p, PeerId::new(0), BestResponseMethod::Exact).unwrap();
            assert!(
                (bra.cost - brb.cost).abs() < 1e-9
                    || (bra.cost.is_infinite() && brb.cost.is_infinite())
            );
        }
    }

    #[test]
    fn zero_demand_destinations_may_stay_unreachable() {
        let base = base_game();
        let mut w = DistanceMatrix::new_filled(4, 0.0);
        w[(0, 1)] = 1.0; // peer 0 only cares about peer 1
        let dg = DemandGame::new(base, TrafficDemands::new(w).unwrap()).unwrap();
        let p = StrategyProfile::empty(4);
        let br = dg
            .best_response(&p, PeerId::new(0), BestResponseMethod::Exact)
            .unwrap();
        assert_eq!(br.links.len(), 1);
        assert!(br.links.contains(PeerId::new(1)));
        assert!(br.cost.is_finite());
        // Peer 1 has zero demand everywhere: its best response is no links.
        let br1 = dg
            .best_response(&p, PeerId::new(1), BestResponseMethod::Exact)
            .unwrap();
        assert!(br1.links.is_empty());
        assert_eq!(br1.cost, 0.0);
    }

    #[test]
    fn hotspot_demand_attracts_direct_links() {
        // An arc of peers where routing 0 -> 1 -> 2 -> 3 carries stretch
        // ≈ 1.4 to peer 3. Under uniform demand that detour is cheaper
        // than a dedicated link (α = 1.5); once peer 3 is hot the same
        // detour is intolerable and peer 0 links it directly.
        use sp_metric::{Euclidean2D, Point2};
        let space = Euclidean2D::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 1.2),
            Point2::new(2.1, 1.2),
            Point2::new(3.0, 0.0),
        ])
        .unwrap();
        let base = Game::from_space(&space, 1.5).unwrap();
        let chain =
            StrategyProfile::from_links(4, &[(1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]).unwrap();

        let uniform = DemandGame::new(base.clone(), TrafficDemands::uniform(4)).unwrap();
        let br_uniform = uniform
            .best_response(&chain, PeerId::new(0), BestResponseMethod::Exact)
            .unwrap();
        assert!(
            !br_uniform.links.contains(PeerId::new(3)),
            "uniform demand should route via the chain, got {}",
            br_uniform.links
        );

        let hot = DemandGame::new(base, TrafficDemands::hotspot(4, 3, 50.0)).unwrap();
        let br_hot = hot
            .best_response(&chain, PeerId::new(0), BestResponseMethod::Exact)
            .unwrap();
        assert!(
            br_hot.links.contains(PeerId::new(3)),
            "hot destination should be linked directly, got {}",
            br_hot.links
        );
    }

    #[test]
    fn demand_weighted_social_cost_sums_peer_costs() {
        let base = base_game();
        let dg = DemandGame::new(base, TrafficDemands::hotspot(4, 0, 3.0)).unwrap();
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
            .unwrap();
        let total = dg.social_cost(&p).unwrap().total();
        let sum: f64 = (0..4)
            .map(|i| dg.peer_cost(&p, PeerId::new(i)).unwrap())
            .sum();
        assert!((total - sum).abs() < 1e-9);
    }

    #[test]
    fn find_deviation_and_equilibrium() {
        let base = base_game();
        let dg = DemandGame::new(base, TrafficDemands::uniform(4)).unwrap();
        // The chain is a Nash equilibrium on a line under uniform demand.
        let chain =
            StrategyProfile::from_links(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
                .unwrap();
        assert!(dg.find_deviation(&chain).unwrap().is_none());
        // The empty profile is not.
        let dev = dg.find_deviation(&StrategyProfile::empty(4)).unwrap();
        assert!(dev.is_some());
    }

    #[test]
    fn validation_errors() {
        let base = base_game();
        assert!(DemandGame::new(base.clone(), TrafficDemands::uniform(3)).is_err());
        let mut w = DistanceMatrix::new_filled(4, 1.0);
        w[(0, 1)] = -1.0;
        assert!(TrafficDemands::new(w).is_err());
        let mut w2 = DistanceMatrix::new_filled(4, 1.0);
        w2[(0, 1)] = f64::INFINITY;
        assert!(TrafficDemands::new(w2).is_err());
    }

    #[test]
    fn weighted_dynamics_converges_and_is_weighted_nash() {
        let base = base_game();
        let dg = DemandGame::new(base, TrafficDemands::hotspot(4, 0, 5.0)).unwrap();
        let (profile, converged) = dg
            .best_response_dynamics(StrategyProfile::empty(4), 100)
            .unwrap();
        assert!(converged);
        assert!(dg.find_deviation(&profile).unwrap().is_none());
        assert!(dg.social_cost(&profile).unwrap().total().is_finite());
    }

    #[test]
    fn hotspot_constructor_shape() {
        let d = TrafficDemands::hotspot(3, 2, 9.0);
        assert_eq!(d.weight(0, 2), 9.0);
        assert_eq!(d.weight(1, 2), 9.0);
        assert_eq!(d.weight(0, 1), 1.0);
        assert_eq!(d.weight(2, 2), 0.0);
        assert_eq!(d.weight(2, 0), 1.0);
    }
}
