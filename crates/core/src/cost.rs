use sp_graph::{CsrGraph, DijkstraScratch};

use crate::{topology, CoreError, Game, GameSession, PeerId, StrategyProfile};

/// The social cost `C(G) = α|E| + Σ_{i≠j} stretch(i, j)` decomposed into
/// its two terms (`C_E` and `C_S` in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialCost {
    /// `C_E = α · |E|` — total link maintenance cost.
    pub link_cost: f64,
    /// `C_S = Σ_{i≠j} stretch(i, j)` — total stretch cost (may be `∞`).
    pub stretch_cost: f64,
}

impl SocialCost {
    /// `C = C_E + C_S`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.link_cost + self.stretch_cost
    }

    /// Returns `true` when every peer can reach every other peer.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.stretch_cost.is_finite()
    }
}

/// Individual cost of `peer`: `c_i(s) = α·|s_i| + Σ_{j≠i} stretch(i, j)`.
///
/// `∞` when some peer is unreachable from `peer`.
///
/// Unlike the other free wrappers this does **not** build a throwaway
/// [`GameSession`]: a single peer's cost needs exactly one overlay
/// shortest-path row, so the wrapper builds the `O(m)` overlay CSR and
/// runs one Dijkstra sweep — no `O(n²)` game clone or distance-matrix
/// allocation. Hot loops should still hold a session, whose row caches
/// survive across queries and moves.
///
/// # Errors
///
/// * [`CoreError::ProfileSizeMismatch`] on profile/game size disagreement;
/// * [`CoreError::PeerOutOfBounds`] if `peer` is out of bounds.
///
/// # Example
///
/// ```
/// use sp_core::{peer_cost, Game, PeerId, StrategyProfile};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0]).unwrap(), 3.0).unwrap();
/// let p = StrategyProfile::complete(2);
/// // One link (α = 3) plus stretch 1 to the single other peer.
/// assert_eq!(peer_cost(&game, &p, PeerId::new(0)).unwrap(), 4.0);
/// ```
pub fn peer_cost(game: &Game, profile: &StrategyProfile, peer: PeerId) -> Result<f64, CoreError> {
    // `topology` performs the profile/game size check (first, matching
    // the session-backed wrapper's error precedence).
    let overlay = topology(game, profile)?;
    if peer.index() >= game.n() {
        return Err(CoreError::PeerOutOfBounds {
            peer: peer.index(),
            n: game.n(),
        });
    }
    let csr = CsrGraph::from_digraph(&overlay);
    let mut scratch = DijkstraScratch::new();
    let row = csr.dijkstra_row_with(peer.index(), &mut scratch);
    Ok(peer_cost_from_distances(game, profile, peer, row))
}

/// Individual cost given precomputed overlay distances from `peer`
/// (row `peer` of the overlay APSP). Used by hot loops that amortise the
/// Dijkstra sweeps.
pub(crate) fn peer_cost_from_distances(
    game: &Game,
    profile: &StrategyProfile,
    peer: PeerId,
    overlay_from_peer: &[f64],
) -> f64 {
    let i = peer.index();
    let mut stretch_sum = 0.0f64;
    for j in 0..game.n() {
        if j == i {
            continue;
        }
        stretch_sum += overlay_from_peer[j] / game.distance(i, j);
        if stretch_sum.is_infinite() {
            return f64::INFINITY;
        }
    }
    game.alpha() * profile.strategy(peer).len() as f64 + stretch_sum
}

/// Individual costs of all peers (one Dijkstra per peer over a shared CSR
/// snapshot).
///
/// Thin wrapper over [`GameSession::all_peer_costs`].
///
/// # Errors
///
/// Returns [`CoreError::ProfileSizeMismatch`] on size disagreement.
pub fn all_peer_costs(game: &Game, profile: &StrategyProfile) -> Result<Vec<f64>, CoreError> {
    Ok(GameSession::from_refs(game, profile)?.all_peer_costs())
}

/// Social cost of a profile, decomposed into link and stretch parts.
///
/// The identity `C(G) = Σ_i c_i(s)` (sum of individual costs) holds
/// exactly and is enforced by property tests.
///
/// # Errors
///
/// Returns [`CoreError::ProfileSizeMismatch`] on size disagreement.
///
/// # Example
///
/// ```
/// use sp_core::{social_cost, Game, StrategyProfile};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0]).unwrap(), 1.0).unwrap();
/// let c = social_cost(&game, &StrategyProfile::complete(3)).unwrap();
/// assert_eq!(c.link_cost, 6.0);
/// assert_eq!(c.stretch_cost, 6.0);
/// assert_eq!(c.total(), 12.0);
/// assert!(c.is_connected());
/// ```
pub fn social_cost(game: &Game, profile: &StrategyProfile) -> Result<SocialCost, CoreError> {
    Ok(GameSession::from_refs(game, profile)?.social_cost())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    fn game(alpha: f64) -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 3.0, 4.0]).unwrap(), alpha).unwrap()
    }

    #[test]
    fn complete_profile_costs() {
        let g = game(2.0);
        let p = StrategyProfile::complete(4);
        let sc = social_cost(&g, &p).unwrap();
        assert_eq!(sc.link_cost, 2.0 * 12.0);
        assert_eq!(sc.stretch_cost, 12.0);
        assert_eq!(sc.total(), 36.0);
        assert!(sc.is_connected());
    }

    #[test]
    fn social_cost_is_sum_of_peer_costs() {
        let g = game(1.5);
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 2), (2, 1), (1, 0)])
            .unwrap();
        let sc = social_cost(&g, &p).unwrap();
        let sum: f64 = all_peer_costs(&g, &p).unwrap().iter().sum();
        assert!((sc.total() - sum).abs() < 1e-9);
    }

    #[test]
    fn disconnected_profiles_have_infinite_cost() {
        let g = game(1.0);
        let p = StrategyProfile::empty(4);
        let sc = social_cost(&g, &p).unwrap();
        assert!(sc.stretch_cost.is_infinite());
        assert!(!sc.is_connected());
        assert_eq!(sc.link_cost, 0.0);
        let pc = peer_cost(&g, &p, PeerId::new(0)).unwrap();
        assert!(pc.is_infinite());
    }

    #[test]
    fn peer_cost_counts_own_links_only() {
        let g = game(10.0);
        // Peer 0 has 1 link; peer 1 has 3.
        let p = StrategyProfile::from_links(
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (2, 3),
                (3, 2),
            ],
        )
        .unwrap();
        let c0 = peer_cost(&g, &p, PeerId::new(0)).unwrap();
        let c1 = peer_cost(&g, &p, PeerId::new(1)).unwrap();
        // Peer 0: α·1 + stretches; peer 1: α·3 + stretches (all 1 on a line
        // through neighbours? 1 -> 0 direct, 1 -> 2 direct, 1 -> 3 direct).
        assert!((c1 - (30.0 + 3.0)).abs() < 1e-12);
        // Peer 0 routes via 1: stretch to 2 = (1 + 2)/3 = 1, to 3 = (1+3)/4 = 1.
        assert!((c0 - (10.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn all_peer_costs_matches_individual_calls() {
        let g = game(0.7);
        let p = StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let batch = all_peer_costs(&g, &p).unwrap();
        for i in 0..4 {
            let single = peer_cost(&g, &p, PeerId::new(i)).unwrap();
            assert!(
                (batch[i] - single).abs() < 1e-12
                    || (batch[i].is_infinite() && single.is_infinite())
            );
        }
    }

    #[test]
    fn out_of_bounds_peer_is_error() {
        let g = game(1.0);
        let p = StrategyProfile::empty(4);
        assert!(matches!(
            peer_cost(&g, &p, PeerId::new(7)),
            Err(CoreError::PeerOutOfBounds { peer: 7, n: 4 })
        ));
    }
}
