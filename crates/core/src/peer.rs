use std::fmt;

/// Identifier of a peer: an index in `0..n`.
///
/// A thin newtype so that peer indices, facility indices and graph nodes
/// cannot be confused in signatures. Convert with [`PeerId::index`] /
/// [`PeerId::new`] or `From`.
///
/// # Example
///
/// ```
/// use sp_core::PeerId;
///
/// let p = PeerId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(usize::from(p), 3);
/// assert_eq!(PeerId::from(3usize), p);
/// assert_eq!(p.to_string(), "π3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PeerId(usize);

impl PeerId {
    /// Wraps an index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        PeerId(index)
    }

    /// The underlying index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for PeerId {
    fn from(i: usize) -> Self {
        PeerId(i)
    }
}

impl From<PeerId> for usize {
    fn from(p: PeerId) -> usize {
        p.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π{}", self.0)
    }
}

/// A peer's strategy: the set of peers it maintains directed links to.
///
/// Stored sorted and deduplicated, so equality, hashing and iteration order
/// are canonical — profiles can be used directly as keys in cycle
/// detection.
///
/// # Example
///
/// ```
/// use sp_core::{LinkSet, PeerId};
///
/// let mut s: LinkSet = [2usize, 0, 2].into_iter().collect();
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(PeerId::new(0)));
/// s.insert(PeerId::new(1));
/// let targets: Vec<usize> = s.iter().map(PeerId::index).collect();
/// assert_eq!(targets, vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinkSet {
    links: Vec<PeerId>,
}

impl LinkSet {
    /// The empty strategy (no links).
    #[must_use]
    pub const fn new() -> Self {
        LinkSet { links: Vec::new() }
    }

    /// A strategy linking to every peer in `0..n` except `owner` — the
    /// maximal strategy with minimal stretches.
    #[must_use]
    pub fn all_except(n: usize, owner: PeerId) -> Self {
        LinkSet {
            links: (0..n)
                .filter(|&j| j != owner.index())
                .map(PeerId::new)
                .collect(),
        }
    }

    /// Number of links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the strategy has no links.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Returns `true` if `peer` is linked.
    #[must_use]
    pub fn contains(&self, peer: PeerId) -> bool {
        self.links.binary_search(&peer).is_ok()
    }

    /// Adds a link; returns `true` if it was not present.
    pub fn insert(&mut self, peer: PeerId) -> bool {
        match self.links.binary_search(&peer) {
            Ok(_) => false,
            Err(pos) => {
                self.links.insert(pos, peer);
                true
            }
        }
    }

    /// Removes a link; returns `true` if it was present.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        match self.links.binary_search(&peer) {
            Ok(pos) => {
                self.links.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates over linked peers in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.links.iter().copied()
    }

    /// The links as a sorted slice.
    #[must_use]
    pub fn as_slice(&self) -> &[PeerId] {
        &self.links
    }

    /// Returns a copy with `peer` added.
    #[must_use]
    pub fn with(&self, peer: PeerId) -> Self {
        let mut c = self.clone();
        c.insert(peer);
        c
    }

    /// Returns a copy with `peer` removed.
    #[must_use]
    pub fn without(&self, peer: PeerId) -> Self {
        let mut c = self.clone();
        c.remove(peer);
        c
    }
}

impl FromIterator<PeerId> for LinkSet {
    fn from_iter<I: IntoIterator<Item = PeerId>>(iter: I) -> Self {
        let mut links: Vec<PeerId> = iter.into_iter().collect();
        links.sort_unstable();
        links.dedup();
        LinkSet { links }
    }
}

impl FromIterator<usize> for LinkSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        iter.into_iter().map(PeerId::new).collect()
    }
}

impl Extend<PeerId> for LinkSet {
    fn extend<I: IntoIterator<Item = PeerId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl fmt::Display for LinkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.links.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ordering_and_dedup() {
        let a: LinkSet = [3usize, 1, 3, 2].into_iter().collect();
        let b: LinkSet = [1usize, 2, 3].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = LinkSet::new();
        assert!(s.is_empty());
        assert!(s.insert(PeerId::new(5)));
        assert!(!s.insert(PeerId::new(5)));
        assert!(s.contains(PeerId::new(5)));
        assert!(s.remove(PeerId::new(5)));
        assert!(!s.remove(PeerId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn with_without_are_non_destructive() {
        let s: LinkSet = [1usize].into_iter().collect();
        let w = s.with(PeerId::new(2));
        assert_eq!(s.len(), 1);
        assert_eq!(w.len(), 2);
        let wo = w.without(PeerId::new(1));
        assert_eq!(wo.as_slice(), &[PeerId::new(2)]);
    }

    #[test]
    fn all_except_skips_owner() {
        let s = LinkSet::all_except(4, PeerId::new(2));
        let idx: Vec<usize> = s.iter().map(PeerId::index).collect();
        assert_eq!(idx, vec![0, 1, 3]);
    }

    #[test]
    fn hashes_of_equal_sets_agree() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a: LinkSet = [2usize, 0].into_iter().collect();
        let b: LinkSet = [0usize, 2, 2].into_iter().collect();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn display_formats() {
        let s: LinkSet = [0usize, 2].into_iter().collect();
        assert_eq!(s.to_string(), "{π0, π2}");
        assert_eq!(LinkSet::new().to_string(), "{}");
        assert_eq!(PeerId::new(7).to_string(), "π7");
    }

    #[test]
    fn extend_merges() {
        let mut s: LinkSet = [0usize].into_iter().collect();
        s.extend([PeerId::new(2), PeerId::new(1), PeerId::new(0)]);
        assert_eq!(s.len(), 3);
    }
}
