use sp_graph::DistanceMatrix;
use sp_metric::{MetricError, MetricSpace};

use crate::CoreError;

/// How a [`Game`] stores its metric.
///
/// Dense games carry the explicit `n × n` latency matrix (the PR 1–6
/// representation, unchanged). Line games store only the `n` coordinates
/// and answer [`Game::distance`] as `|x_i − x_j|` — `O(n)` memory, the
/// representation the sparse evaluation backend needs to scale past the
/// point where a matrix fits.
#[derive(Debug, Clone, PartialEq)]
enum MetricStore {
    /// Explicit pairwise latencies.
    Dense(DistanceMatrix),
    /// Implicit 1-D Euclidean metric over point coordinates.
    Line(Vec<f64>),
}

/// A selfish-peers game instance: `n` peers with pairwise latencies and the
/// link-maintenance parameter `α`.
///
/// `α` expresses the relative importance of degree cost versus stretch
/// cost (paper, Section 2): large `α` models archival systems where links
/// are expensive relative to lookup latency; small `α` models
/// lookup-intensive systems.
///
/// The distance matrix must be a valid finite metric restricted to what can
/// be checked in `O(n²)`: symmetric, zero diagonal, positive finite
/// off-diagonal. (The triangle inequality is `O(n³)` to check; call
/// [`sp_metric::validate_metric`] on the source space when in doubt —
/// constructors here trust it.)
///
/// Games built through [`Game::new`] / [`Game::from_space`] store the
/// matrix **densely** (`O(n²)`), which is exact and fine up to a few
/// thousand peers. [`Game::from_line_positions`] stores an implicit 1-D
/// metric in `O(n)` instead — the representation required by
/// `GameSession::new_sparse` for large-`n` runs.
///
/// # Example
///
/// ```
/// use sp_core::Game;
/// use sp_metric::LineSpace;
///
/// let space = LineSpace::new(vec![0.0, 1.0, 4.0]).unwrap();
/// let game = Game::from_space(&space, 2.5).unwrap();
/// assert_eq!(game.n(), 3);
/// assert_eq!(game.alpha(), 2.5);
/// assert_eq!(game.distance(0, 2), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Game {
    metric: MetricStore,
    alpha: f64,
}

fn validate_alpha(alpha: f64) -> Result<(), CoreError> {
    if !alpha.is_finite() || alpha <= 0.0 {
        return Err(CoreError::InvalidAlpha { alpha });
    }
    Ok(())
}

impl Game {
    /// Creates a game from an explicit distance matrix.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidAlpha`] unless `α` is finite and `> 0`;
    /// * [`CoreError::Metric`] if the matrix is asymmetric (tolerance
    ///   `1e-9` relative to the entry magnitude), has a non-zero diagonal,
    ///   or non-positive/non-finite off-diagonal entries.
    pub fn new(dist: DistanceMatrix, alpha: f64) -> Result<Self, CoreError> {
        validate_alpha(alpha)?;
        let n = dist.len();
        for i in 0..n {
            // sp-lint: allow(float-eps, reason = "metric validation: a diagonal must be exactly 0.0, not merely close")
            if dist[(i, i)] != 0.0 {
                return Err(CoreError::Metric(MetricError::NonZeroDiagonal { i }));
            }
            for j in (i + 1)..n {
                let dij = dist[(i, j)];
                let dji = dist[(j, i)];
                if !dij.is_finite() || !dji.is_finite() {
                    return Err(CoreError::Metric(MetricError::NonFiniteValue {
                        context: "pairwise distance",
                    }));
                }
                if dij <= 0.0 {
                    if dij == 0.0 {
                        return Err(CoreError::Metric(MetricError::CoincidentPoints { i, j }));
                    }
                    return Err(CoreError::Metric(MetricError::NegativeDistance { i, j }));
                }
                let tol = 1e-9 * (1.0 + dij.abs());
                if (dij - dji).abs() > tol {
                    return Err(CoreError::Metric(MetricError::Asymmetric { i, j }));
                }
            }
        }
        Ok(Game {
            metric: MetricStore::Dense(dist),
            alpha,
        })
    }

    /// Creates a game by materialising the distance matrix of a metric
    /// space.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Game::new`].
    pub fn from_space<M: MetricSpace + ?Sized>(space: &M, alpha: f64) -> Result<Self, CoreError> {
        Game::new(space.to_matrix(), alpha)
    }

    /// Creates a game over an **implicit** 1-D metric: peer `i` sits at
    /// `positions[i]` and `d(i, j) = |positions[i] − positions[j]|`.
    ///
    /// Unlike [`Game::from_space`] with an [`sp_metric::LineSpace`], no
    /// `n × n` matrix is ever materialised — the game holds the `n`
    /// coordinates and nothing else, so a 10⁵-peer instance costs
    /// kilobytes instead of tens of gigabytes. This is the metric
    /// representation `GameSession::new_sparse` requires.
    ///
    /// Validation is `O(n log n)`: every coordinate must be finite and
    /// all coordinates pairwise distinct (coincident peers would create
    /// zero distances, which the game model forbids).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidAlpha`] unless `α` is finite and `> 0`;
    /// * [`CoreError::Metric`] on non-finite or coincident coordinates.
    pub fn from_line_positions(positions: Vec<f64>, alpha: f64) -> Result<Self, CoreError> {
        validate_alpha(alpha)?;
        if positions.iter().any(|x| !x.is_finite()) {
            return Err(CoreError::Metric(MetricError::NonFiniteValue {
                context: "line position",
            }));
        }
        let mut order: Vec<usize> = (0..positions.len()).collect();
        order.sort_unstable_by(|&a, &b| positions[a].total_cmp(&positions[b]).then(a.cmp(&b)));
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            // Coincidence means exactly equal coordinates, not merely
            // close — an eps band would reject legal tight metrics.
            if positions[a] == positions[b] {
                let (i, j) = (a.min(b), a.max(b));
                return Err(CoreError::Metric(MetricError::CoincidentPoints { i, j }));
            }
        }
        Ok(Game {
            metric: MetricStore::Line(positions),
            alpha,
        })
    }

    /// Number of peers.
    #[must_use]
    pub fn n(&self) -> usize {
        match &self.metric {
            MetricStore::Dense(dist) => dist.len(),
            MetricStore::Line(positions) => positions.len(),
        }
    }

    /// The trade-off parameter `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Underlying latency between peers `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[must_use]
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        match &self.metric {
            MetricStore::Dense(dist) => dist[(i, j)],
            MetricStore::Line(positions) => (positions[i] - positions[j]).abs(),
        }
    }

    /// The full latency matrix.
    ///
    /// # Panics
    ///
    /// Panics when the game stores an implicit metric
    /// ([`Game::from_line_positions`]) — those games exist precisely so
    /// an `n × n` matrix never has to exist. Query
    /// [`Game::dense_matrix`] when unsure, or [`Game::distance`] for
    /// individual entries.
    #[must_use]
    pub fn matrix(&self) -> &DistanceMatrix {
        self.dense_matrix()
            .expect("matrix() requires a dense game; implicit-metric games answer distance() only")
    }

    /// The latency matrix when this game stores one densely, `None` for
    /// implicit metrics.
    #[must_use]
    pub fn dense_matrix(&self) -> Option<&DistanceMatrix> {
        match &self.metric {
            MetricStore::Dense(dist) => Some(dist),
            MetricStore::Line(_) => None,
        }
    }

    /// The peer coordinates when this game stores an implicit 1-D
    /// metric, `None` for dense games.
    #[must_use]
    pub fn line_positions(&self) -> Option<&[f64]> {
        match &self.metric {
            MetricStore::Dense(_) => None,
            MetricStore::Line(positions) => Some(positions),
        }
    }

    /// Semantic size of the stored metric in bytes: `8n²` dense, `8n`
    /// implicit. Deterministic (counts what the data is, not what the
    /// allocator holds), so the `sp-serve` registry can budget sessions
    /// identically across machines.
    #[must_use]
    pub fn metric_bytes(&self) -> usize {
        match &self.metric {
            MetricStore::Dense(dist) => dist.len() * dist.len() * std::mem::size_of::<f64>(),
            MetricStore::Line(positions) => positions.len() * std::mem::size_of::<f64>(),
        }
    }

    /// A copy of this game with a different `α` (same metric).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidAlpha`] unless `α` is finite positive.
    pub fn with_alpha(&self, alpha: f64) -> Result<Self, CoreError> {
        validate_alpha(alpha)?;
        Ok(Game {
            metric: self.metric.clone(),
            alpha,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    fn line_game() -> Game {
        let s = LineSpace::new(vec![0.0, 1.0, 3.0, 7.0]).unwrap();
        Game::from_space(&s, 1.5).unwrap()
    }

    #[test]
    fn construction_from_space() {
        let g = line_game();
        assert_eq!(g.n(), 4);
        assert_eq!(g.alpha(), 1.5);
        assert_eq!(g.distance(1, 3), 6.0);
        assert_eq!(g.matrix()[(0, 3)], 7.0);
    }

    #[test]
    fn rejects_bad_alpha() {
        let s = LineSpace::new(vec![0.0, 1.0]).unwrap();
        for alpha in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Game::from_space(&s, alpha),
                Err(CoreError::InvalidAlpha { .. })
            ));
            assert!(matches!(
                Game::from_line_positions(vec![0.0, 1.0], alpha),
                Err(CoreError::InvalidAlpha { .. })
            ));
        }
    }

    #[test]
    fn rejects_asymmetric_matrix() {
        let mut m = DistanceMatrix::new_filled(2, 0.0);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 2.0;
        assert!(matches!(Game::new(m, 1.0), Err(CoreError::Metric(_))));
    }

    #[test]
    fn rejects_zero_distance_pairs() {
        let m = DistanceMatrix::new_filled(2, 0.0);
        assert!(matches!(
            Game::new(m, 1.0),
            Err(CoreError::Metric(MetricError::CoincidentPoints {
                i: 0,
                j: 1
            }))
        ));
    }

    #[test]
    fn rejects_nonzero_diagonal() {
        let mut m = DistanceMatrix::new_filled(2, 1.0);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        assert!(matches!(
            Game::new(m, 1.0),
            Err(CoreError::Metric(MetricError::NonZeroDiagonal { i: 0 }))
        ));
    }

    #[test]
    fn with_alpha_preserves_metric() {
        let g = line_game();
        let g2 = g.with_alpha(9.0).unwrap();
        assert_eq!(g2.alpha(), 9.0);
        assert_eq!(g2.distance(0, 1), g.distance(0, 1));
        assert!(g.with_alpha(-3.0).is_err());
    }

    #[test]
    fn empty_game_is_fine() {
        let g = Game::new(DistanceMatrix::new_filled(0, 0.0), 1.0).unwrap();
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn implicit_line_metric_matches_dense_line_space() {
        let coords = vec![4.0, 0.0, 1.5, 9.25];
        let dense = Game::from_space(&LineSpace::new(coords.clone()).unwrap(), 2.0).unwrap();
        let implicit = Game::from_line_positions(coords.clone(), 2.0).unwrap();
        assert_eq!(implicit.n(), 4);
        assert!(implicit.dense_matrix().is_none());
        assert_eq!(implicit.line_positions().unwrap(), coords.as_slice());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    implicit.distance(i, j).to_bits(),
                    dense.distance(i, j).to_bits(),
                    "({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn implicit_metric_validation() {
        assert!(matches!(
            Game::from_line_positions(vec![0.0, f64::NAN], 1.0),
            Err(CoreError::Metric(MetricError::NonFiniteValue { .. }))
        ));
        assert!(matches!(
            Game::from_line_positions(vec![0.0, 3.0, 0.0], 1.0),
            Err(CoreError::Metric(MetricError::CoincidentPoints {
                i: 0,
                j: 2
            }))
        ));
        assert!(Game::from_line_positions(vec![], 1.0).is_ok());
    }

    #[test]
    fn metric_bytes_reflects_representation() {
        let dense = line_game();
        assert_eq!(dense.metric_bytes(), 4 * 4 * 8);
        let implicit = Game::from_line_positions(vec![0.0, 1.0, 3.0, 7.0], 1.5).unwrap();
        assert_eq!(implicit.metric_bytes(), 4 * 8);
        let g2 = implicit.with_alpha(2.0).unwrap();
        assert_eq!(g2.metric_bytes(), 4 * 8);
    }

    #[test]
    #[should_panic(expected = "matrix() requires a dense game")]
    fn matrix_panics_on_implicit_metric() {
        let g = Game::from_line_positions(vec![0.0, 1.0], 1.0).unwrap();
        let _ = g.matrix();
    }
}
