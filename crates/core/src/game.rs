use sp_graph::DistanceMatrix;
use sp_metric::{MetricError, MetricSpace};

use crate::CoreError;

/// A selfish-peers game instance: `n` peers with pairwise latencies and the
/// link-maintenance parameter `α`.
///
/// `α` expresses the relative importance of degree cost versus stretch
/// cost (paper, Section 2): large `α` models archival systems where links
/// are expensive relative to lookup latency; small `α` models
/// lookup-intensive systems.
///
/// The distance matrix must be a valid finite metric restricted to what can
/// be checked in `O(n²)`: symmetric, zero diagonal, positive finite
/// off-diagonal. (The triangle inequality is `O(n³)` to check; call
/// [`sp_metric::validate_metric`] on the source space when in doubt —
/// constructors here trust it.)
///
/// # Example
///
/// ```
/// use sp_core::Game;
/// use sp_metric::LineSpace;
///
/// let space = LineSpace::new(vec![0.0, 1.0, 4.0]).unwrap();
/// let game = Game::from_space(&space, 2.5).unwrap();
/// assert_eq!(game.n(), 3);
/// assert_eq!(game.alpha(), 2.5);
/// assert_eq!(game.distance(0, 2), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Game {
    dist: DistanceMatrix,
    alpha: f64,
}

impl Game {
    /// Creates a game from an explicit distance matrix.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidAlpha`] unless `α` is finite and `> 0`;
    /// * [`CoreError::Metric`] if the matrix is asymmetric (tolerance
    ///   `1e-9` relative to the entry magnitude), has a non-zero diagonal,
    ///   or non-positive/non-finite off-diagonal entries.
    pub fn new(dist: DistanceMatrix, alpha: f64) -> Result<Self, CoreError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(CoreError::InvalidAlpha { alpha });
        }
        let n = dist.len();
        for i in 0..n {
            // sp-lint: allow(float-eps, reason = "metric validation: a diagonal must be exactly 0.0, not merely close")
            if dist[(i, i)] != 0.0 {
                return Err(CoreError::Metric(MetricError::NonZeroDiagonal { i }));
            }
            for j in (i + 1)..n {
                let dij = dist[(i, j)];
                let dji = dist[(j, i)];
                if !dij.is_finite() || !dji.is_finite() {
                    return Err(CoreError::Metric(MetricError::NonFiniteValue {
                        context: "pairwise distance",
                    }));
                }
                if dij <= 0.0 {
                    if dij == 0.0 {
                        return Err(CoreError::Metric(MetricError::CoincidentPoints { i, j }));
                    }
                    return Err(CoreError::Metric(MetricError::NegativeDistance { i, j }));
                }
                let tol = 1e-9 * (1.0 + dij.abs());
                if (dij - dji).abs() > tol {
                    return Err(CoreError::Metric(MetricError::Asymmetric { i, j }));
                }
            }
        }
        Ok(Game { dist, alpha })
    }

    /// Creates a game by materialising the distance matrix of a metric
    /// space.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Game::new`].
    pub fn from_space<M: MetricSpace + ?Sized>(space: &M, alpha: f64) -> Result<Self, CoreError> {
        Game::new(space.to_matrix(), alpha)
    }

    /// Number of peers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.dist.len()
    }

    /// The trade-off parameter `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Underlying latency between peers `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[must_use]
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.dist[(i, j)]
    }

    /// The full latency matrix.
    #[must_use]
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// A copy of this game with a different `α` (same metric).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidAlpha`] unless `α` is finite positive.
    pub fn with_alpha(&self, alpha: f64) -> Result<Self, CoreError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(CoreError::InvalidAlpha { alpha });
        }
        Ok(Game {
            dist: self.dist.clone(),
            alpha,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    fn line_game() -> Game {
        let s = LineSpace::new(vec![0.0, 1.0, 3.0, 7.0]).unwrap();
        Game::from_space(&s, 1.5).unwrap()
    }

    #[test]
    fn construction_from_space() {
        let g = line_game();
        assert_eq!(g.n(), 4);
        assert_eq!(g.alpha(), 1.5);
        assert_eq!(g.distance(1, 3), 6.0);
        assert_eq!(g.matrix()[(0, 3)], 7.0);
    }

    #[test]
    fn rejects_bad_alpha() {
        let s = LineSpace::new(vec![0.0, 1.0]).unwrap();
        for alpha in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Game::from_space(&s, alpha),
                Err(CoreError::InvalidAlpha { .. })
            ));
        }
    }

    #[test]
    fn rejects_asymmetric_matrix() {
        let mut m = DistanceMatrix::new_filled(2, 0.0);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 2.0;
        assert!(matches!(Game::new(m, 1.0), Err(CoreError::Metric(_))));
    }

    #[test]
    fn rejects_zero_distance_pairs() {
        let m = DistanceMatrix::new_filled(2, 0.0);
        assert!(matches!(
            Game::new(m, 1.0),
            Err(CoreError::Metric(MetricError::CoincidentPoints {
                i: 0,
                j: 1
            }))
        ));
    }

    #[test]
    fn rejects_nonzero_diagonal() {
        let mut m = DistanceMatrix::new_filled(2, 1.0);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        assert!(matches!(
            Game::new(m, 1.0),
            Err(CoreError::Metric(MetricError::NonZeroDiagonal { i: 0 }))
        ));
    }

    #[test]
    fn with_alpha_preserves_metric() {
        let g = line_game();
        let g2 = g.with_alpha(9.0).unwrap();
        assert_eq!(g2.alpha(), 9.0);
        assert_eq!(g2.distance(0, 1), g.distance(0, 1));
        assert!(g.with_alpha(-3.0).is_err());
    }

    #[test]
    fn empty_game_is_fine() {
        let g = Game::new(DistanceMatrix::new_filled(0, 0.0), 1.0).unwrap();
        assert_eq!(g.n(), 0);
    }
}
