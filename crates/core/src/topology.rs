use sp_graph::{DiGraph, DistanceMatrix};

use crate::{CoreError, Game, GameSession, PeerId, StrategyProfile};

fn check_profile(game: &Game, profile: &StrategyProfile) -> Result<(), CoreError> {
    if profile.n() != game.n() {
        return Err(CoreError::ProfileSizeMismatch {
            expected: game.n(),
            actual: profile.n(),
        });
    }
    Ok(())
}

/// The overlay digraph `G[s]` induced by a profile: edge `(i, j)` with
/// weight `d(i, j)` for every `j ∈ s_i`.
///
/// # Errors
///
/// Returns [`CoreError::ProfileSizeMismatch`] if the profile and game
/// disagree on the number of peers.
///
/// # Example
///
/// ```
/// use sp_core::{Game, StrategyProfile, topology};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 2.0]).unwrap(), 1.0).unwrap();
/// let p = StrategyProfile::from_links(2, &[(0, 1)]).unwrap();
/// let g = topology(&game, &p).unwrap();
/// assert_eq!(g.edge_weight(0, 1), Some(2.0));
/// assert!(!g.has_edge(1, 0));
/// ```
pub fn topology(game: &Game, profile: &StrategyProfile) -> Result<DiGraph, CoreError> {
    check_profile(game, profile)?;
    let mut g = DiGraph::new(game.n());
    for (i, s) in profile.iter() {
        for j in s.iter() {
            g.add_edge(i.index(), j.index(), game.distance(i.index(), j.index()));
        }
    }
    Ok(g)
}

/// The overlay **without** the out-links of `peer` — the graph `G_{-i}`
/// underlying the best-response reduction (shortest paths from any `v ≠ i`
/// never need `i`'s out-links, because shortest paths do not revisit `i`).
///
/// # Errors
///
/// * [`CoreError::ProfileSizeMismatch`] on size disagreement;
/// * [`CoreError::PeerOutOfBounds`] if `peer` is out of bounds.
pub fn topology_without_peer(
    game: &Game,
    profile: &StrategyProfile,
    peer: PeerId,
) -> Result<DiGraph, CoreError> {
    check_profile(game, profile)?;
    if peer.index() >= game.n() {
        return Err(CoreError::PeerOutOfBounds {
            peer: peer.index(),
            n: game.n(),
        });
    }
    let mut g = DiGraph::new(game.n());
    for (i, s) in profile.iter() {
        if i == peer {
            continue;
        }
        for j in s.iter() {
            g.add_edge(i.index(), j.index(), game.distance(i.index(), j.index()));
        }
    }
    Ok(g)
}

/// All-pairs overlay distances `d_G(i, j)` (may contain `∞` when the
/// overlay is not strongly connected).
///
/// Thin wrapper over [`GameSession::overlay_distances`]; hot loops should
/// hold a session, whose cache survives [`GameSession::apply`] moves.
///
/// # Errors
///
/// Returns [`CoreError::ProfileSizeMismatch`] if the profile and game
/// disagree on the number of peers.
pub fn overlay_distances(
    game: &Game,
    profile: &StrategyProfile,
) -> Result<DistanceMatrix, CoreError> {
    let mut session = GameSession::from_refs(game, profile)?;
    Ok(session.overlay_distances().clone())
}

/// The stretch matrix: `stretch(i, j) = d_G(i, j) / d(i, j)` off-diagonal,
/// `1.0` on the diagonal (a peer trivially reaches itself).
///
/// Entries are `∞` for unreachable pairs and always `>= 1` otherwise
/// (overlay paths are made of metric edges, so they cannot beat the direct
/// distance).
///
/// # Errors
///
/// Returns [`CoreError::ProfileSizeMismatch`] if the profile and game
/// disagree on the number of peers.
///
/// # Example
///
/// ```
/// use sp_core::{Game, StrategyProfile, stretch_matrix};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0, 2.0]).unwrap(), 1.0).unwrap();
/// // Chain topology: 0 -> 1 -> 2 and back.
/// let p = StrategyProfile::from_links(3, &[(0, 1), (1, 2), (2, 1), (1, 0)]).unwrap();
/// let s = stretch_matrix(&game, &p).unwrap();
/// assert_eq!(s[(0, 2)], 1.0); // 0->1->2 has length 2 = direct distance
/// ```
pub fn stretch_matrix(game: &Game, profile: &StrategyProfile) -> Result<DistanceMatrix, CoreError> {
    let mut session = GameSession::from_refs(game, profile)?;
    Ok(session.stretch_matrix().clone())
}

/// The largest stretch over all ordered pairs (`∞` if some peer cannot
/// reach some other peer). Theorem 4.1 proves this never exceeds `α + 1`
/// in a Nash equilibrium.
///
/// Returns `1.0` for games with fewer than two peers.
///
/// # Errors
///
/// Returns [`CoreError::ProfileSizeMismatch`] if the profile and game
/// disagree on the number of peers.
pub fn max_stretch(game: &Game, profile: &StrategyProfile) -> Result<f64, CoreError> {
    Ok(GameSession::from_refs(game, profile)?.max_stretch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    fn game3() -> Game {
        Game::from_space(&LineSpace::new(vec![0.0, 1.0, 3.0]).unwrap(), 2.0).unwrap()
    }

    #[test]
    fn topology_respects_direction_and_weights() {
        let game = game3();
        let p = StrategyProfile::from_links(3, &[(0, 2), (2, 0)]).unwrap();
        let g = topology(&game, &p).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(0, 2), Some(3.0));
        assert_eq!(g.edge_weight(2, 0), Some(3.0));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn topology_without_peer_drops_only_that_peers_links() {
        let game = game3();
        let p = StrategyProfile::from_links(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let g = topology_without_peer(&game, &p, PeerId::new(1)).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 2));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn stretch_of_complete_profile_is_all_ones() {
        let game = game3();
        let s = stretch_matrix(&game, &StrategyProfile::complete(3)).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(s[(i, j)], 1.0, "({i},{j})");
            }
        }
        assert_eq!(
            max_stretch(&game, &StrategyProfile::complete(3)).unwrap(),
            1.0
        );
    }

    #[test]
    fn stretch_detects_detours() {
        let game = game3();
        // 0 -> 1 -> 2, and 2 -> 1 -> 0: path 0..2 direct, but 2 to 0 must
        // hop through 1 (same length on a line: stretch stays 1).
        let p = StrategyProfile::from_links(3, &[(0, 1), (1, 2), (2, 1), (1, 0)]).unwrap();
        let s = stretch_matrix(&game, &p).unwrap();
        assert_eq!(s[(0, 2)], 1.0);
        // Now a genuine detour: peer 1 only links right, so 1 reaches 0
        // via 2? No path at all: 1 -> 2, 2 -> 1. Unreachable.
        let q = StrategyProfile::from_links(3, &[(0, 1), (1, 2), (2, 1)]).unwrap();
        let sq = stretch_matrix(&game, &q).unwrap();
        assert!(sq[(1, 0)].is_infinite());
        assert!(max_stretch(&game, &q).unwrap().is_infinite());
    }

    #[test]
    fn genuine_detour_has_stretch_above_one() {
        // Line 0,1,3: link 0 -> 2 missing; 0 reaches 2 via 1:
        // d_G = 1 + 2 = 3 = direct 3. On a line collinear detours cost
        // nothing, so use three points where the detour is real:
        // positions 0, 1, 1.5: 0 -> 1 -> 2 length 1 + 0.5 = 1.5 = direct.
        // Lines never create stretch; use a matrix metric instead.
        use sp_graph::DistanceMatrix;
        let m =
            DistanceMatrix::from_row_major(3, vec![0.0, 1.0, 1.2, 1.0, 0.0, 1.0, 1.2, 1.0, 0.0])
                .unwrap();
        let game = Game::new(m, 1.0).unwrap();
        let p = StrategyProfile::from_links(3, &[(0, 1), (1, 2), (2, 1), (1, 0)]).unwrap();
        let s = stretch_matrix(&game, &p).unwrap();
        assert!((s[(0, 2)] - 2.0 / 1.2).abs() < 1e-12);
        assert!(s[(0, 2)] > 1.0);
    }

    #[test]
    fn profile_size_mismatch_is_reported() {
        let game = game3();
        let p = StrategyProfile::empty(4);
        assert!(matches!(
            topology(&game, &p),
            Err(CoreError::ProfileSizeMismatch {
                expected: 3,
                actual: 4
            })
        ));
        assert!(overlay_distances(&game, &p).is_err());
        assert!(stretch_matrix(&game, &p).is_err());
        assert!(max_stretch(&game, &p).is_err());
        assert!(topology_without_peer(&game, &p, PeerId::new(0)).is_err());
    }

    #[test]
    fn empty_game_edge_cases() {
        let game = Game::new(sp_graph::DistanceMatrix::new_filled(0, 0.0), 1.0).unwrap();
        let p = StrategyProfile::empty(0);
        assert_eq!(topology(&game, &p).unwrap().node_count(), 0);
        assert_eq!(max_stretch(&game, &p).unwrap(), 1.0);
    }
}
