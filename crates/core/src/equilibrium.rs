use crate::{BestResponseMethod, CoreError, Game, GameSession, LinkSet, PeerId, StrategyProfile};

/// Configuration of a Nash-equilibrium check.
///
/// A profile is a (pure) Nash equilibrium when no peer can reduce its
/// individual cost by unilaterally changing its neighbour set. The check
/// computes a (best) response per peer and compares costs with a relative
/// tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NashTest {
    /// How candidate deviations are searched.
    pub method: BestResponseMethod,
    /// Relative improvement threshold: a deviation counts only if it
    /// improves by more than `tolerance · (1 + |current cost|)`.
    pub tolerance: f64,
}

impl NashTest {
    /// Exact verification via branch-and-bound best responses
    /// (tolerance `1e-9`). A passing report **certifies** the equilibrium.
    #[must_use]
    pub fn exact() -> Self {
        NashTest {
            method: BestResponseMethod::Exact,
            tolerance: 1e-9,
        }
    }

    /// Exact verification via subset enumeration (`n ≤ 25`); useful to
    /// cross-validate the branch-and-bound on small instances.
    #[must_use]
    pub fn exact_enumeration() -> Self {
        NashTest {
            method: BestResponseMethod::ExactEnumeration,
            tolerance: 1e-9,
        }
    }

    /// Heuristic check with local-search responses: cheap, and a *failed*
    /// check is still a proof of instability (the found deviation is real);
    /// a passing check is only "no deviation found".
    #[must_use]
    pub fn local_search() -> Self {
        NashTest {
            method: BestResponseMethod::LocalSearch,
            tolerance: 1e-9,
        }
    }

    /// Replaces the tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is negative or not finite.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(
            tol.is_finite() && tol >= 0.0,
            "tolerance must be finite non-negative"
        );
        self.tolerance = tol;
        self
    }
}

impl Default for NashTest {
    fn default() -> Self {
        NashTest::exact()
    }
}

/// A profitable unilateral deviation discovered by [`is_nash`].
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation {
    /// The deviating peer.
    pub peer: PeerId,
    /// The improving strategy.
    pub links: LinkSet,
    /// Peer's cost before deviating.
    pub old_cost: f64,
    /// Peer's cost after deviating.
    pub new_cost: f64,
}

impl Deviation {
    /// `old_cost − new_cost` (`+∞` when the deviation restores
    /// connectivity).
    #[must_use]
    pub fn improvement(&self) -> f64 {
        if self.old_cost.is_infinite() && self.new_cost.is_infinite() {
            0.0
        } else {
            self.old_cost - self.new_cost
        }
    }
}

/// The result of a Nash-equilibrium check.
#[derive(Debug, Clone, PartialEq)]
pub struct NashReport {
    /// The most profitable deviation found, if any.
    pub best_deviation: Option<Deviation>,
    /// `true` when the search method was exact, i.e. an empty
    /// `best_deviation` *certifies* the equilibrium.
    pub certified_exact: bool,
    /// Individual costs under the tested profile.
    pub peer_costs: Vec<f64>,
}

impl NashReport {
    /// Returns `true` when no profitable deviation was found.
    #[must_use]
    pub fn is_nash(&self) -> bool {
        self.best_deviation.is_none()
    }
}

/// Checks whether `profile` is a (pure) Nash equilibrium of `game`.
///
/// Scans every peer, computing a response per [`NashTest::method`]; keeps
/// the deviation with the largest improvement. Thin wrapper over
/// [`GameSession::is_nash`] building a throwaway session.
///
/// # Errors
///
/// Propagates [`CoreError`] from malformed inputs, and
/// [`CoreError::InstanceTooLarge`] when enumeration is requested on more
/// than 25 peers.
///
/// # Example
///
/// ```
/// use sp_core::{is_nash, Game, NashTest, StrategyProfile};
/// use sp_metric::LineSpace;
///
/// let game = Game::from_space(&LineSpace::new(vec![0.0, 1.0]).unwrap(), 0.5).unwrap();
/// // Complete graph on two peers: optimal for each, hence Nash.
/// let report = is_nash(&game, &StrategyProfile::complete(2), &NashTest::exact()).unwrap();
/// assert!(report.is_nash());
/// assert!(report.certified_exact);
/// ```
pub fn is_nash(
    game: &Game,
    profile: &StrategyProfile,
    test: &NashTest,
) -> Result<NashReport, CoreError> {
    GameSession::from_refs(game, profile)?.is_nash(test)
}

/// The **Nash gap**: the largest improvement any single peer can achieve
/// by deviating (0.0 for an equilibrium, `+∞` if some peer can restore
/// lost connectivity).
///
/// Useful as a convergence measure for dynamics: monotonically shrinking
/// gaps indicate approach to equilibrium.
///
/// # Errors
///
/// Same conditions as [`is_nash`].
pub fn nash_gap(
    game: &Game,
    profile: &StrategyProfile,
    method: BestResponseMethod,
) -> Result<f64, CoreError> {
    GameSession::from_refs(game, profile)?.nash_gap(method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metric::LineSpace;

    fn line_game(positions: Vec<f64>, alpha: f64) -> Game {
        Game::from_space(&LineSpace::new(positions).unwrap(), alpha).unwrap()
    }

    #[test]
    fn two_peer_complete_is_nash() {
        let game = line_game(vec![0.0, 1.0], 2.0);
        let report = is_nash(&game, &StrategyProfile::complete(2), &NashTest::exact()).unwrap();
        assert!(report.is_nash());
        assert!(report.certified_exact);
        assert_eq!(report.peer_costs.len(), 2);
    }

    #[test]
    fn empty_profile_is_never_nash_for_multiple_peers() {
        let game = line_game(vec![0.0, 1.0, 2.0], 1.0);
        let report = is_nash(&game, &StrategyProfile::empty(3), &NashTest::exact()).unwrap();
        assert!(!report.is_nash());
        let dev = report.best_deviation.unwrap();
        assert!(dev.improvement().is_infinite());
        assert!(dev.old_cost.is_infinite());
        assert!(dev.new_cost.is_finite());
    }

    #[test]
    fn nash_gap_zero_iff_nash() {
        let game = line_game(vec![0.0, 1.0], 2.0);
        let nash = StrategyProfile::complete(2);
        assert_eq!(
            nash_gap(&game, &nash, BestResponseMethod::Exact).unwrap(),
            0.0
        );
        let game3 = line_game(vec![0.0, 1.0, 2.0], 0.1);
        let not_nash = StrategyProfile::from_links(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        // With tiny alpha every peer wants direct links to everyone; the
        // chain cannot be an equilibrium unless stretches are already 1
        // (they are on a line!). Use a detour metric instead.
        let gap = nash_gap(&game3, &not_nash, BestResponseMethod::Exact).unwrap();
        // On a collinear metric the chain gives stretch 1 to everything,
        // so in fact no peer can improve: gap must be 0.
        assert_eq!(gap, 0.0);
    }

    #[test]
    fn chain_on_line_is_nash_for_moderate_alpha() {
        // Paper Theorem 4.4 uses G-tilde (the bidirectional chain) as the
        // reference: on a line it gives stretch 1 everywhere, and with
        // α >= 0 no peer benefits from extra links; dropping the chain
        // link disconnects. Hence Nash.
        let game = line_game(vec![0.0, 1.0, 3.0, 7.0], 2.5);
        let chain =
            StrategyProfile::from_links(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
                .unwrap();
        let report = is_nash(&game, &chain, &NashTest::exact()).unwrap();
        assert!(report.is_nash(), "deviation: {:?}", report.best_deviation);
    }

    #[test]
    fn exact_and_enumeration_verdicts_agree() {
        let game = line_game(vec![0.0, 2.0, 3.0, 9.0], 1.0);
        for profile in [
            StrategyProfile::complete(4),
            StrategyProfile::from_links(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap(),
            StrategyProfile::empty(4),
        ] {
            let a = is_nash(&game, &profile, &NashTest::exact()).unwrap();
            let b = is_nash(&game, &profile, &NashTest::exact_enumeration()).unwrap();
            assert_eq!(a.is_nash(), b.is_nash());
        }
    }

    #[test]
    fn local_search_rejections_are_sound() {
        // If the heuristic check says "not Nash", the deviation is real:
        // re-evaluate it exactly.
        let game = line_game(vec![0.0, 1.0, 2.0, 4.0], 0.2);
        let profile = StrategyProfile::from_links(4, &[(0, 3), (3, 0)]).unwrap();
        let report = is_nash(&game, &profile, &NashTest::local_search()).unwrap();
        assert!(!report.certified_exact);
        if let Some(dev) = report.best_deviation {
            let deviated = profile.with_strategy(dev.peer, dev.links.clone()).unwrap();
            let new_cost = crate::peer_cost(&game, &deviated, dev.peer).unwrap();
            let old_cost = crate::peer_cost(&game, &profile, dev.peer).unwrap();
            assert!(
                new_cost < old_cost || (old_cost.is_infinite() && new_cost.is_finite()),
                "heuristic deviation must be genuinely improving"
            );
        }
    }

    #[test]
    fn with_tolerance_rejects_bad_values() {
        let t = NashTest::exact().with_tolerance(0.5);
        assert_eq!(t.tolerance, 0.5);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn with_tolerance_panics_on_nan() {
        let _ = NashTest::exact().with_tolerance(f64::NAN);
    }
}
