//! Pluggable distance backends behind [`GameSession`].
//!
//! Every cost in the locality game is stretch-based, so the session's
//! real job is answering overlay-distance queries and keeping those
//! answers valid while the profile mutates. This module splits that job
//! into a trait with two implementations:
//!
//! * [`DenseBackend`] — the exact two-tier `OracleCache` (overlay rows +
//!   retained residual rows) the workspace has carried since PR 1.
//!   **Bit-identical to the pre-refactor behaviour, and the default.**
//! * [`SparseBackend`] — landmark distance
//!   sketches with certified upper/lower bounds, exact bounded-radius
//!   sweeps for near rows, and metric-window candidate pruning.
//!   `O(n · (landmarks + degree + window))` memory; never materialises
//!   an `n × n` matrix unless an explicit escape hatch is called.
//!
//! Both implementations repair their cached rows through the **same**
//! invalidation discipline — the [`sp_graph::edge_on_path`] tightness
//! predicate decides row survival after a removal, and additions fold in
//! by decrease-only relaxation — so the backends cannot drift apart.
//!
//! # Choosing a mode
//!
//! Use **dense** (the default, [`GameSession::new`]) when `n` is at most
//! a few thousand: every query is exact, equilibrium checks are
//! authoritative, and the `8n²`-byte matrix is affordable. Use
//! **sparse** ([`GameSession::new_sparse`]) for large instances driven
//! by better-response dynamics: `local_response` evaluates only moves a
//! peer could plausibly want (metric-window candidates, bounded-ball
//! evaluation, sketch estimates for far demand), while `is_nash` /
//! `nash_gap` / `best_response` remain **certified** — they fall back to
//! exact per-peer `G_{-i}` sweeps (`O(n)` memory at a time), so sparse
//! verdicts are never heuristic. Queries that inherently need the full
//! matrix (`overlay_distances`, `stretch_matrix`) materialise a
//! documented transient escape hatch and are meant for small-instance
//! debugging only.
//!
//! [`GameSession`]: crate::GameSession
//! [`GameSession::new`]: crate::GameSession::new
//! [`GameSession::new_sparse`]: crate::GameSession::new_sparse

use crate::oracle_cache::OracleCache;
use crate::sparse::SparseBackend;

/// Which evaluation backend a session runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendMode {
    /// Exact dense evaluation over the full overlay distance matrix.
    Dense,
    /// Landmark-sketch evaluation with certified bounds and exact
    /// fallbacks; `O(n)`-per-row memory.
    Sparse,
}

impl BackendMode {
    /// The wire name used by `sp-serve` (`"dense"` / `"sparse"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BackendMode::Dense => "dense",
            BackendMode::Sparse => "sparse",
        }
    }
}

/// The contract a distance backend owes [`GameSession`](crate::GameSession).
///
/// A backend owns whatever cached distance state it needs and keeps two
/// promises:
///
/// 1. **Exactness where claimed** — any row or bound it serves is either
///    exact for the current overlay or explicitly a certified bound
///    (never a silent approximation);
/// 2. **Repair over rebuild** — after a committed edge diff the backend
///    restores its invariants incrementally via the shared
///    [`sp_graph::edge_on_path`] discipline rather than discarding
///    state wholesale.
///
/// The session routes queries per [`BackendMode`]; this trait carries
/// the mode-independent surface (identification, accounting, bulk
/// invalidation).
pub trait DistanceBackend {
    /// Which mode this backend implements.
    fn mode(&self) -> BackendMode;
    /// Semantic bytes of cached distance state (deterministic across
    /// machines; the `sp-serve` registry budgets sessions with it).
    fn memory_bytes(&self) -> usize;
    /// Drops every cached row/sketch (profile replaced wholesale).
    fn invalidate(&mut self);
}

/// The exact dense backend: a thin named wrapper around the two-tier
/// `OracleCache` so the cache itself stays private to the crate.
#[derive(Debug, Clone)]
pub struct DenseBackend {
    pub(crate) cache: OracleCache,
}

impl DenseBackend {
    pub(crate) fn new(n: usize) -> Self {
        DenseBackend {
            cache: OracleCache::new(n),
        }
    }

    pub(crate) fn from_cache(cache: OracleCache) -> Self {
        DenseBackend { cache }
    }
}

impl DistanceBackend for DenseBackend {
    fn mode(&self) -> BackendMode {
        BackendMode::Dense
    }

    fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes()
    }

    fn invalidate(&mut self) {
        self.cache.invalidate_all();
    }
}

/// The backend a session actually holds: a closed enum (not a trait
/// object) so the dense hot path keeps static dispatch and the borrow
/// checker can reason field-granularly.
#[derive(Debug, Clone)]
pub(crate) enum SessionBackend {
    Dense(DenseBackend),
    Sparse(Box<SparseBackend>),
}

impl SessionBackend {
    pub(crate) fn mode(&self) -> BackendMode {
        match self {
            SessionBackend::Dense(b) => b.mode(),
            SessionBackend::Sparse(b) => b.mode(),
        }
    }

    pub(crate) fn memory_bytes(&self) -> usize {
        match self {
            SessionBackend::Dense(b) => b.memory_bytes(),
            SessionBackend::Sparse(b) => b.memory_bytes(),
        }
    }

    pub(crate) fn invalidate(&mut self) {
        match self {
            SessionBackend::Dense(b) => b.invalidate(),
            SessionBackend::Sparse(b) => b.invalidate(),
        }
    }

    pub(crate) fn is_sparse(&self) -> bool {
        matches!(self, SessionBackend::Sparse(_))
    }

    /// The dense cache; internal dense-only code paths reach it through
    /// here after mode routing has already happened.
    pub(crate) fn dense(&self) -> &OracleCache {
        match self {
            SessionBackend::Dense(b) => &b.cache,
            SessionBackend::Sparse(_) => {
                unreachable!("dense cache requested from a sparse session (routing bug)")
            }
        }
    }

    /// Mutable twin of [`SessionBackend::dense`].
    pub(crate) fn dense_mut(&mut self) -> &mut OracleCache {
        match self {
            SessionBackend::Dense(b) => &mut b.cache,
            SessionBackend::Sparse(_) => {
                unreachable!("dense cache requested from a sparse session (routing bug)")
            }
        }
    }

    /// The sparse state; same routing contract as [`SessionBackend::dense`].
    pub(crate) fn sparse(&self) -> &SparseBackend {
        match self {
            SessionBackend::Sparse(b) => b,
            SessionBackend::Dense(_) => {
                unreachable!("sparse state requested from a dense session (routing bug)")
            }
        }
    }

    /// Mutable twin of [`SessionBackend::sparse`].
    pub(crate) fn sparse_mut(&mut self) -> &mut SparseBackend {
        match self {
            SessionBackend::Sparse(b) => b,
            SessionBackend::Dense(_) => {
                unreachable!("sparse state requested from a dense session (routing bug)")
            }
        }
    }

    /// The most recently materialised exact distance row for source `u`,
    /// whichever backend holds it: the dense overlay row (must be valid)
    /// or the sparse transient row buffer (must have been computed for
    /// `u` since the last mutation).
    pub(crate) fn stored_row(&self, u: usize) -> &[f64] {
        match self {
            SessionBackend::Dense(b) => b.cache.row(u),
            SessionBackend::Sparse(b) => b.row_ref(u),
        }
    }
}
