use std::error::Error;
use std::fmt;

use sp_metric::MetricError;

/// Errors produced by game construction and game-theoretic queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// `α` must be a finite positive number.
    InvalidAlpha {
        /// The offending value.
        alpha: f64,
    },
    /// The underlying distances are not a valid metric input.
    Metric(MetricError),
    /// A peer index was at least the number of peers.
    PeerOutOfBounds {
        /// The offending index.
        peer: usize,
        /// Number of peers in the game.
        n: usize,
    },
    /// A strategy contained a self-link.
    SelfLink {
        /// The peer whose strategy self-links.
        peer: usize,
    },
    /// A strategy profile has the wrong number of strategies for the game.
    ProfileSizeMismatch {
        /// Peers in the game.
        expected: usize,
        /// Strategies in the profile.
        actual: usize,
    },
    /// An exact computation was requested on an instance too large for it.
    InstanceTooLarge {
        /// Instance size (peers).
        n: usize,
        /// The solver's limit.
        limit: usize,
    },
    /// A session snapshot is internally inconsistent (wrong row lengths,
    /// out-of-range indices) and cannot be restored.
    InvalidSnapshot {
        /// What was wrong with the snapshot.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CoreError::InvalidAlpha { alpha } => {
                write!(f, "alpha must be finite and positive, got {alpha}")
            }
            CoreError::Metric(ref e) => write!(f, "invalid metric: {e}"),
            CoreError::PeerOutOfBounds { peer, n } => {
                write!(f, "peer {peer} out of bounds for a game of {n} peers")
            }
            CoreError::SelfLink { peer } => write!(f, "peer {peer} links to itself"),
            CoreError::ProfileSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "profile has {actual} strategies for a game of {expected} peers"
                )
            }
            CoreError::InstanceTooLarge { n, limit } => {
                write!(
                    f,
                    "instance of {n} peers exceeds the exact-solver limit {limit}"
                )
            }
            CoreError::InvalidSnapshot { ref reason } => {
                write!(f, "invalid session snapshot: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Metric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MetricError> for CoreError {
    fn from(e: MetricError) -> Self {
        CoreError::Metric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_errors_wrap_with_source() {
        let e: CoreError = MetricError::NonZeroDiagonal { i: 3 }.into();
        assert!(e.to_string().contains("invalid metric"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn bounds() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
