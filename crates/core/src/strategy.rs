use std::fmt;

use crate::{CoreError, LinkSet, PeerId};

/// A full strategy profile: one [`LinkSet`] per peer.
///
/// The profile is the game state; it hashes and compares canonically (link
/// sets are kept sorted), which is what the dynamics engine's cycle
/// detection relies on.
///
/// # Example
///
/// ```
/// use sp_core::{StrategyProfile, PeerId};
///
/// let mut s = StrategyProfile::empty(3);
/// s.add_link(PeerId::new(0), PeerId::new(1)).unwrap();
/// s.add_link(PeerId::new(1), PeerId::new(2)).unwrap();
/// assert_eq!(s.link_count(), 2);
/// assert!(s.has_link(PeerId::new(0), PeerId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StrategyProfile {
    strategies: Vec<LinkSet>,
}

impl StrategyProfile {
    /// The empty profile on `n` peers (no links at all).
    #[must_use]
    pub fn empty(n: usize) -> Self {
        StrategyProfile {
            strategies: vec![LinkSet::new(); n],
        }
    }

    /// The complete profile on `n` peers: everyone links to everyone.
    #[must_use]
    pub fn complete(n: usize) -> Self {
        StrategyProfile {
            strategies: (0..n)
                .map(|i| LinkSet::all_except(n, PeerId::new(i)))
                .collect(),
        }
    }

    /// Builds a profile from explicit strategies.
    ///
    /// # Errors
    ///
    /// * [`CoreError::SelfLink`] if a strategy links to its owner;
    /// * [`CoreError::PeerOutOfBounds`] if a link target exceeds the peer
    ///   count implied by `strategies.len()`.
    pub fn from_strategies(strategies: Vec<LinkSet>) -> Result<Self, CoreError> {
        let n = strategies.len();
        for (i, s) in strategies.iter().enumerate() {
            for p in s.iter() {
                if p.index() == i {
                    return Err(CoreError::SelfLink { peer: i });
                }
                if p.index() >= n {
                    return Err(CoreError::PeerOutOfBounds { peer: p.index(), n });
                }
            }
        }
        Ok(StrategyProfile { strategies })
    }

    /// Builds a profile from `(from, to)` link pairs on `n` peers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StrategyProfile::from_strategies`].
    pub fn from_links(n: usize, links: &[(usize, usize)]) -> Result<Self, CoreError> {
        let mut strategies = vec![LinkSet::new(); n];
        for &(u, v) in links {
            if u >= n {
                return Err(CoreError::PeerOutOfBounds { peer: u, n });
            }
            if v >= n {
                return Err(CoreError::PeerOutOfBounds { peer: v, n });
            }
            if u == v {
                return Err(CoreError::SelfLink { peer: u });
            }
            strategies[u].insert(PeerId::new(v));
        }
        Ok(StrategyProfile { strategies })
    }

    /// Number of peers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.strategies.len()
    }

    /// The strategy of `peer`.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of bounds.
    #[must_use]
    pub fn strategy(&self, peer: PeerId) -> &LinkSet {
        &self.strategies[peer.index()]
    }

    /// Replaces the strategy of `peer`, returning the old one.
    ///
    /// # Errors
    ///
    /// * [`CoreError::PeerOutOfBounds`] if `peer` or a link target is out
    ///   of bounds;
    /// * [`CoreError::SelfLink`] if `links` contains `peer`.
    pub fn set_strategy(&mut self, peer: PeerId, links: LinkSet) -> Result<LinkSet, CoreError> {
        let n = self.n();
        if peer.index() >= n {
            return Err(CoreError::PeerOutOfBounds {
                peer: peer.index(),
                n,
            });
        }
        for p in links.iter() {
            if p == peer {
                return Err(CoreError::SelfLink { peer: peer.index() });
            }
            if p.index() >= n {
                return Err(CoreError::PeerOutOfBounds { peer: p.index(), n });
            }
        }
        Ok(std::mem::replace(&mut self.strategies[peer.index()], links))
    }

    /// Adds a single link; returns `true` if it was new.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StrategyProfile::set_strategy`].
    pub fn add_link(&mut self, from: PeerId, to: PeerId) -> Result<bool, CoreError> {
        let n = self.n();
        if from.index() >= n {
            return Err(CoreError::PeerOutOfBounds {
                peer: from.index(),
                n,
            });
        }
        if to.index() >= n {
            return Err(CoreError::PeerOutOfBounds {
                peer: to.index(),
                n,
            });
        }
        if from == to {
            return Err(CoreError::SelfLink { peer: from.index() });
        }
        Ok(self.strategies[from.index()].insert(to))
    }

    /// Removes a single link; returns `true` if it was present.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PeerOutOfBounds`] if `from` is out of bounds.
    pub fn remove_link(&mut self, from: PeerId, to: PeerId) -> Result<bool, CoreError> {
        let n = self.n();
        if from.index() >= n {
            return Err(CoreError::PeerOutOfBounds {
                peer: from.index(),
                n,
            });
        }
        Ok(self.strategies[from.index()].remove(to))
    }

    /// Returns `true` if the directed link `(from, to)` is present.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    #[must_use]
    pub fn has_link(&self, from: PeerId, to: PeerId) -> bool {
        self.strategies[from.index()].contains(to)
    }

    /// Total number of directed links, `|E|` in the paper's social cost.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.strategies.iter().map(LinkSet::len).sum()
    }

    /// Iterates over `(owner, strategy)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, &LinkSet)> + '_ {
        self.strategies
            .iter()
            .enumerate()
            .map(|(i, s)| (PeerId::new(i), s))
    }

    /// Iterates over all directed links as `(from, to)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (PeerId, PeerId)> + '_ {
        self.iter().flat_map(|(i, s)| s.iter().map(move |j| (i, j)))
    }

    /// Returns a copy where `peer` plays `links` instead — the unilateral
    /// deviation used throughout equilibrium analysis.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StrategyProfile::set_strategy`].
    pub fn with_strategy(&self, peer: PeerId, links: LinkSet) -> Result<Self, CoreError> {
        let mut c = self.clone();
        c.set_strategy(peer, links)?;
        Ok(c)
    }
}

impl fmt::Display for StrategyProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.strategies.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "π{i} -> {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_complete() {
        let e = StrategyProfile::empty(4);
        assert_eq!(e.link_count(), 0);
        let c = StrategyProfile::complete(4);
        assert_eq!(c.link_count(), 12);
        assert!(c.has_link(PeerId::new(0), PeerId::new(3)));
        assert!(!c.has_link(PeerId::new(0), PeerId::new(0)));
    }

    #[test]
    fn from_links_builds_and_validates() {
        let p = StrategyProfile::from_links(3, &[(0, 1), (1, 2), (0, 1)]).unwrap();
        assert_eq!(p.link_count(), 2);
        assert!(matches!(
            StrategyProfile::from_links(3, &[(0, 3)]),
            Err(CoreError::PeerOutOfBounds { peer: 3, n: 3 })
        ));
        assert!(matches!(
            StrategyProfile::from_links(3, &[(1, 1)]),
            Err(CoreError::SelfLink { peer: 1 })
        ));
    }

    #[test]
    fn from_strategies_validates() {
        let bad = vec![
            [1usize].into_iter().collect(),
            [1usize].into_iter().collect(),
        ];
        assert!(matches!(
            StrategyProfile::from_strategies(bad),
            Err(CoreError::SelfLink { peer: 1 })
        ));
    }

    #[test]
    fn set_strategy_swaps_and_validates() {
        let mut p = StrategyProfile::empty(3);
        let s: LinkSet = [1usize, 2].into_iter().collect();
        let old = p.set_strategy(PeerId::new(0), s.clone()).unwrap();
        assert!(old.is_empty());
        assert_eq!(p.strategy(PeerId::new(0)), &s);
        assert!(p
            .set_strategy(PeerId::new(0), [0usize].into_iter().collect())
            .is_err());
        assert!(p.set_strategy(PeerId::new(9), LinkSet::new()).is_err());
    }

    #[test]
    fn add_remove_links() {
        let mut p = StrategyProfile::empty(3);
        assert!(p.add_link(PeerId::new(0), PeerId::new(2)).unwrap());
        assert!(!p.add_link(PeerId::new(0), PeerId::new(2)).unwrap());
        assert!(p.remove_link(PeerId::new(0), PeerId::new(2)).unwrap());
        assert!(!p.remove_link(PeerId::new(0), PeerId::new(2)).unwrap());
        assert!(p.add_link(PeerId::new(0), PeerId::new(0)).is_err());
    }

    #[test]
    fn with_strategy_is_non_destructive() {
        let p = StrategyProfile::empty(2);
        let q = p
            .with_strategy(PeerId::new(0), [1usize].into_iter().collect())
            .unwrap();
        assert_eq!(p.link_count(), 0);
        assert_eq!(q.link_count(), 1);
    }

    #[test]
    fn links_iterator_enumerates_pairs() {
        let p = StrategyProfile::from_links(3, &[(0, 1), (2, 0)]).unwrap();
        let mut links: Vec<(usize, usize)> =
            p.links().map(|(a, b)| (a.index(), b.index())).collect();
        links.sort_unstable();
        assert_eq!(links, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn profiles_hash_canonically() {
        use std::collections::HashSet;
        let a = StrategyProfile::from_links(3, &[(0, 1), (0, 2)]).unwrap();
        let b = StrategyProfile::from_links(3, &[(0, 2), (0, 1)]).unwrap();
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn display_lists_strategies() {
        let p = StrategyProfile::from_links(2, &[(0, 1)]).unwrap();
        let s = p.to_string();
        assert!(s.contains("π0 -> {π1}"));
        assert!(s.contains("π1 -> {}"));
    }
}
